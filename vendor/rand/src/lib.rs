//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, dependency-free implementation of exactly the traits and methods
//! the repo calls: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Streams are deterministic but are **not**
//! bit-compatible with upstream `rand`; the repo's tests only rely on
//! within-repo determinism, never on upstream streams.

/// A source of randomness: the core trait every generator implements.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The per-generator seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 and builds the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from their full value range.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Types that can be sampled uniformly from a sub-range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (`high` exclusive).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]` (`high` inclusive).
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let span = (high as u128) - (low as u128);
                // Multiply-shift bounded draw (bias < 2^-64, irrelevant here).
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                low + hi as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let span = (high as u128) - (low as u128) + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                low + hi as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let span = (high as i128 - low as i128) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + hi as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires a probability");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice helpers (`shuffle`, `choose`) from `rand::seq`.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::rngs` namespace (kept tiny; only what the workspace needs).
pub mod rngs {
    /// A simple splitmix64 generator, exposed for tests that want a cheap
    /// deterministic stream without depending on `rand_chacha`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl super::SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }

    impl super::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    fn rng() -> rngs::SmallRng {
        rngs::SmallRng::seed_from_u64(7)
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&y));
            let z: u64 = r.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = rng();
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
