//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! Supports: the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header), range and
//! `any::<T>()` strategies, tuple strategies, `collection::vec`,
//! `prop_map`/`prop_flat_map`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! no shrinking (a failing case prints its values via the panic message and
//! the deterministic per-test seed reproduces it), and a fixed default case
//! count (overridable with the `PROPTEST_CASES` environment variable).

use std::fmt::Debug;

/// Default number of cases per property (upstream defaults to 256; tests in
/// this workspace run whole simulator networks per case, so we default
/// lower and let `PROPTEST_CASES` raise it).
pub const DEFAULT_CASES: u32 = 64;

/// Execution parameters for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// The deterministic RNG driving strategy generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives the cases of one property. Used by the expansion of
/// [`proptest!`]; not part of the public proptest API.
pub fn run_cases(test_name: &str, cases: u32, mut body: impl FnMut(&mut TestRng, u32)) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    // Deterministic per-test seed: same inputs every run, every machine.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    for case in 0..cases {
        let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
        body(&mut rng, case);
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategies are usable by shared reference too.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A constant strategy (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Marker for `any::<T>()` — uniform over the whole type.
    pub struct Any<T>(PhantomData<T>);

    /// Uniform strategy over all values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    lo + unit * (hi - lo)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vec-length specification.
    pub trait IntoSizeRange {
        /// Picks a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `proptest::collection::vec`: a vector of `element` values with
    /// length in `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Drop-in replacement for `proptest::prelude::*`.
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics with the case's values in
/// the message via the normal assert machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the rest of the current case when the assumption fails. (The shim
/// simply returns from the case's closure; no global rejection budget.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The `proptest!` block macro: an optional config header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; do not use directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), __config.cases, |__rng, __case| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);
                )*
                let _ = __case;
                $body
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens(max: usize) -> impl Strategy<Value = usize> {
        (0..max).prop_map(|x| 2 * x)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3usize..17, b in 0u64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(v in collection::vec((0usize..5, 0usize..5), 0..20)) {
            prop_assert!(v.len() < 20);
            for (x, y) in v {
                prop_assert!(x < 5 && y < 5);
            }
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..10).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }

        #[test]
        fn mapped_strategy(x in evens(10)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 19);
        }

        #[test]
        fn inclusive_float_covers_endpoint_range(p in 0.0f64..=1.0) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(x in 0usize..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        crate::run_cases("det", 10, |rng, _| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        crate::run_cases("det", 10, |rng, _| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}
