//! Offline shim of `parking_lot`: wraps the standard-library locks behind
//! parking_lot's non-poisoning API (a poisoned std lock just yields its
//! inner guard — panicking while holding a lock is already a bug the tests
//! would surface).

use std::sync::{self, PoisonError};

/// Non-poisoning mutex with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
