//! Offline shim of the `criterion` API surface this workspace's benches
//! use. Each benchmark runs `sample_size` timed iterations with
//! `std::time::Instant` and prints mean / min per iteration — enough to
//! compare orders of magnitude offline; swap the real criterion back in for
//! statistics when registry access exists.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Rendered id.
    fn render(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn render(self) -> String {
        self.repr
    }
}

impl IntoBenchmarkId for &str {
    fn render(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn render(self) -> String {
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.render());
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.render());
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` `sample_size` times, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("  {group}/{id}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        eprintln!(
            "  {group}/{id}: mean {mean:?}, min {min:?} ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn id_renders() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
    }
}
