//! Offline shim of `rand_chacha`: a genuine ChaCha8 block cipher run in
//! counter mode as a random number generator.
//!
//! The keystream is real ChaCha with 8 rounds (RFC 7539 quarter-round over
//! the standard "expand 32-byte k" state), so the statistical quality
//! matches upstream. Word-stream order is **not** guaranteed to be
//! bit-identical to upstream `rand_chacha` (the repo only relies on
//! within-repo determinism).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 256-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(self.state.iter()) {
            *w = w.wrapping_add(*s);
        }
        self.block = working;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // counter = 0 (words 12-13), nonce = 0 (words 14-15).
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_continues_across_blocks() {
        // 16 words per block; drawing 40 u32s crosses two refills.
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let xs: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 35, "keystream words should rarely collide");
    }

    #[test]
    fn uniformish_bits() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let ones: u32 = (0..256).map(|_| r.next_u64().count_ones()).sum();
        // 256 * 64 / 2 = 8192 expected; allow wide slack.
        assert!((7500..8900).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn gen_methods_compose() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let x: u64 = r.gen();
        let y = r.gen_range(0..10usize);
        let b = r.gen_bool(0.5);
        let _ = (x, y, b);
    }
}
