//! The fork-join thread pool behind the parallel iterators.
//!
//! One lazily-initialized global pool serves the whole process, sized from
//! [`std::thread::available_parallelism`] and overridable with the
//! `RAYON_NUM_THREADS` environment variable (read once, at first use). The
//! pool keeps `threads - 1` worker threads; the thread that enters a
//! fork-join construct acts as the remaining lane and *helps* — it executes
//! queued tasks while waiting for its own batch instead of blocking — so
//! nested parallel calls cannot deadlock.
//!
//! Scheduling is work-stealing in the classic deque shape: every worker
//! owns a deque (newest-first for itself, oldest-first for thieves) and
//! external threads push into a shared injector queue. For simplicity and
//! portability the deques live under a single pool mutex rather than being
//! lock-free; tasks here are coarse chunks of index space (see
//! [`crate::iter`]), so queue traffic is far too low for that lock to be a
//! bottleneck.
//!
//! Panics inside a task are caught at the task boundary, carried through
//! the owning [`Batch`], and re-thrown on the thread that waits on the
//! batch — the same observable behavior as a sequential panic.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// A unit of queued work, lifetime-erased (see [`erase_lifetime`]).
pub(crate) type Task = Box<dyn FnOnce() + Send>;

/// Hard cap on the configured thread count, so a typo'd environment
/// variable cannot ask for thousands of OS threads.
const MAX_THREADS: usize = 256;

/// How long a blocked fork-join waiter sleeps before re-checking for newly
/// stealable work. (Batch *completion* is signalled promptly on the batch
/// condvar; only new-work arrival is signalled elsewhere, so this bounds
/// the latency of picking up freshly forked tasks while blocked.)
const HELP_POLL: Duration = Duration::from_micros(200);

thread_local! {
    /// Which pool worker this thread is, if any (`None` on external
    /// threads such as `main` or the test harness's threads).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Locks a mutex, ignoring poisoning (the pool never panics while holding
/// a lock; user panics are caught at the task boundary).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// One fork-join scope: counts outstanding tasks and carries the first
/// panic payload captured from any of them.
pub(crate) struct Batch {
    remaining: AtomicUsize,
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    /// A batch expecting exactly `tasks` submissions.
    pub(crate) fn new(tasks: usize) -> Arc<Batch> {
        Arc::new(Batch {
            remaining: AtomicUsize::new(tasks),
            state: Mutex::new(BatchState { panic: None }),
            done: Condvar::new(),
        })
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Records one finished task (and its panic payload, if any). The
    /// release ordering of the final decrement publishes the task's writes
    /// to whoever observes completion.
    fn record(&self, result: std::thread::Result<()>) {
        if let Err(payload) = result {
            let mut state = lock(&self.state);
            if state.panic.is_none() {
                state.panic = Some(payload);
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Take the state lock so a waiter cannot check-and-sleep
            // between our decrement and our notify.
            let _state = lock(&self.state);
            self.done.notify_all();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock(&self.state).panic.take()
    }
}

/// All task queues, guarded by one pool-wide mutex. `deques[w]` belongs to
/// worker `w`; the final slot is the injector used by external threads.
struct Queues {
    deques: Vec<VecDeque<Task>>,
}

/// Pops the best available task for `me`: own deque first (newest-first,
/// for fork-join locality), then the injector, then steal from the other
/// workers (oldest-first, round-robin from `me + 1`).
fn take_task(queues: &mut Queues, me: Option<usize>) -> Option<Task> {
    let injector = queues.deques.len() - 1;
    if let Some(i) = me {
        if let Some(task) = queues.deques[i].pop_front() {
            return Some(task);
        }
    }
    if let Some(task) = queues.deques[injector].pop_front() {
        return Some(task);
    }
    let workers = injector;
    let start = me.map_or(0, |i| i + 1);
    for k in 0..workers {
        let j = (start + k) % workers;
        if Some(j) == me {
            continue;
        }
        if let Some(task) = queues.deques[j].pop_back() {
            return Some(task);
        }
    }
    None
}

struct Shared {
    queues: Mutex<Queues>,
    /// Signalled when a task is pushed; workers park here when idle.
    work: Condvar,
}

/// The global pool: `threads` parallelism lanes, `threads - 1` of them OS
/// worker threads (the caller of a fork-join construct is the last lane).
pub(crate) struct Pool {
    threads: usize,
    shared: Arc<Shared>,
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-global pool, started on first use.
pub(crate) fn global() -> &'static Pool {
    GLOBAL.get_or_init(Pool::start)
}

/// Number of parallelism lanes the global pool uses (including the calling
/// thread). `1` means all "parallel" constructs run inline, sequentially.
pub fn current_num_threads() -> usize {
    global().threads()
}

fn configured_threads() -> usize {
    let default = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("RAYON_NUM_THREADS") {
        // Like rayon, treat 0 (and garbage) as "use the default".
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(0) | Err(_) => default(),
            Ok(t) => t.min(MAX_THREADS),
        },
        Err(_) => default(),
    }
}

impl Pool {
    fn start() -> Pool {
        let threads = configured_threads();
        let workers = threads.saturating_sub(1);
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues {
                deques: (0..=workers).map(|_| VecDeque::new()).collect(),
            }),
            work: Condvar::new(),
        });
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rayon-worker-{index}"))
                .spawn(move || worker_loop(shared, index))
                .expect("failed to spawn pool worker thread");
        }
        Pool { threads, shared }
    }

    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Queues `task` on behalf of `batch`. The task is wrapped so that its
    /// panic (if any) is captured into the batch and its completion is
    /// always recorded.
    pub(crate) fn submit(&self, batch: &Arc<Batch>, task: Task) {
        let batch = Arc::clone(batch);
        let wrapped: Task = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            batch.record(result);
        });
        {
            let mut queues = lock(&self.shared.queues);
            match WORKER_INDEX.with(|w| w.get()) {
                Some(i) => queues.deques[i].push_front(wrapped),
                None => {
                    let injector = queues.deques.len() - 1;
                    queues.deques[injector].push_back(wrapped);
                }
            }
        }
        self.shared.work.notify_one();
    }

    /// Blocks until every task in `batch` has finished, executing queued
    /// tasks (from any batch) while waiting instead of going idle.
    pub(crate) fn wait(&self, batch: &Batch) {
        let me = WORKER_INDEX.with(|w| w.get());
        while !batch.is_done() {
            let task = {
                let mut queues = lock(&self.shared.queues);
                take_task(&mut queues, me)
            };
            match task {
                Some(task) => task(),
                None => {
                    let state = lock(&batch.state);
                    if batch.is_done() {
                        break;
                    }
                    let (state, _) = batch
                        .done
                        .wait_timeout(state, HELP_POLL)
                        .unwrap_or_else(|e| e.into_inner());
                    drop(state);
                }
            }
        }
    }

    /// [`Pool::wait`], then re-throw the first panic the batch captured.
    pub(crate) fn wait_and_propagate(&self, batch: &Batch) {
        self.wait(batch);
        if let Some(payload) = batch.take_panic() {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    let mut queues = lock(&shared.queues);
    loop {
        match take_task(&mut queues, Some(index)) {
            Some(task) => {
                drop(queues);
                task();
                queues = lock(&shared.queues);
            }
            None => {
                queues = shared.work.wait(queues).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Erases the lifetime of a boxed task so it can sit in the pool queues.
///
/// # Safety
///
/// The caller must guarantee that the task has finished running before any
/// borrow it captures expires. In this crate every submission is paired
/// with a [`Pool::wait`] on the same [`Batch`], reached on both the normal
/// and the panicking path, before the submitting stack frame is left.
pub(crate) unsafe fn erase_lifetime<'a>(task: Box<dyn FnOnce() + Send + 'a>) -> Task {
    std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Task>(task)
}

/// A raw pointer that may cross threads; safety is the sender's problem.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}

/// Runs `oper_a` and `oper_b`, potentially in parallel, and returns both
/// results. `oper_b` is queued on the global pool while the calling thread
/// runs `oper_a`, then the caller helps execute queued work until `oper_b`
/// is done. If either closure panics, the panic is re-thrown here (a panic
/// from `oper_a` takes precedence); both closures are always waited for,
/// so borrows captured by `oper_b` stay valid for exactly its execution.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = global();
    if pool.threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let mut slot_b: Option<RB> = None;
    let batch = Batch::new(1);
    let slot = SendPtr(&mut slot_b as *mut Option<RB>);
    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
        // Capture the whole `SendPtr` (edition 2021 would otherwise capture
        // only the raw-pointer field, which is not `Send`).
        let slot = slot;
        // SAFETY: `slot_b` outlives this task — both exits below wait on
        // `batch` first — and nothing else touches it until then. The final
        // batch decrement (release) / `is_done` (acquire) pair publishes
        // this write to the waiter.
        unsafe { *slot.0 = Some(oper_b()) };
    });
    // SAFETY: both exits below wait on `batch` before this frame is left.
    pool.submit(&batch, unsafe { erase_lifetime(task) });
    match catch_unwind(AssertUnwindSafe(oper_a)) {
        Ok(ra) => {
            pool.wait_and_propagate(&batch);
            let rb = slot_b
                .take()
                .expect("forked closure finished without storing a result");
            (ra, rb)
        }
        Err(payload) => {
            // `oper_a` panicked. Still wait for `oper_b` (it may borrow
            // this frame), then prefer `oper_a`'s panic, like rayon does.
            pool.wait(&batch);
            resume_unwind(payload);
        }
    }
}
