//! Parallel iterators: deterministic index-space chunking on the pool.
//!
//! Every source here (ranges, slices, `Vec`) knows its exact length and can
//! split itself at an index, so a parallel computation is compiled to a
//! fixed list of contiguous chunks which are executed as one fork-join
//! batch on the crate's thread pool. Two properties matter for the simulator:
//!
//! * **Stable assignment.** The chunk boundaries depend only on the input
//!   length and the `with_min_len`/`with_max_len` hints — never on the
//!   thread count or on runtime timing (see [`chunk_size`]). Item `i` is
//!   always processed inside the same chunk, in ascending index order.
//! * **Order-preserving collection.** Consumers combine per-chunk results
//!   in chunk order (`collect` concatenates, `sum`/`min`/`max` fold left to
//!   right), so the observable result is byte-identical to the sequential
//!   schedule regardless of `RAYON_NUM_THREADS`.

use crate::pool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Target number of chunks a parallel call is split into (before the
/// `with_min_len`/`with_max_len` clamps). A fixed constant — deliberately
/// *not* derived from the thread count — so the split, and therefore every
/// order-sensitive result, is identical at any `RAYON_NUM_THREADS`.
pub const TARGET_CHUNKS: usize = 64;

/// The chunk length used for an input of `len` items under the given
/// min/max hints. Exposed for tests; not part of the rayon API.
#[doc(hidden)]
pub fn chunk_size(len: usize, min_len: usize, max_len: usize) -> usize {
    let min = min_len.max(1);
    let max = max_len.max(min);
    len.div_ceil(TARGET_CHUNKS).clamp(min, max)
}

/// Splits `iter` into deterministic contiguous chunks, runs `handler` over
/// each chunk (in parallel when the pool has more than one lane), and
/// returns the per-chunk results in chunk order.
pub(crate) fn run_chunked<I, R, H>(iter: I, handler: &H) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    H: Fn(&mut dyn Iterator<Item = I::Item>) -> R + Sync,
{
    let len = iter.split_len();
    if len == 0 {
        return Vec::new();
    }
    let chunk = chunk_size(len, iter.min_len_hint(), iter.max_len_hint());
    let n_chunks = len.div_ceil(chunk);
    let pool = pool::global();
    if pool.threads() <= 1 || n_chunks <= 1 {
        // Inline sequential execution — but over the *same* chunk
        // boundaries as the parallel path, so even a consumer that is
        // sensitive to grouping sees one schedule everywhere.
        let mut out = Vec::with_capacity(n_chunks);
        let mut rest = iter;
        while rest.split_len() > chunk {
            let (head, tail) = rest.split_at(chunk);
            out.push(head.drive(|it| handler(it)));
            rest = tail;
        }
        out.push(rest.drive(|it| handler(it)));
        return out;
    }
    let mut pieces = Vec::with_capacity(n_chunks);
    let mut rest = iter;
    while rest.split_len() > chunk {
        let (head, tail) = rest.split_at(chunk);
        pieces.push(head);
        rest = tail;
    }
    pieces.push(rest);
    debug_assert_eq!(pieces.len(), n_chunks);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(n_chunks, || None);
    let batch = pool::Batch::new(n_chunks);
    for (slot, piece) in slots.iter_mut().zip(pieces) {
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            *slot = Some(piece.drive(|it| handler(it)));
        });
        // SAFETY: `wait_and_propagate` below blocks until every task has
        // run (even if some panicked), so the borrows of `slots` and
        // `handler` captured by the task outlive its execution.
        pool.submit(&batch, unsafe { pool::erase_lifetime(task) });
    }
    pool.wait_and_propagate(&batch);
    slots
        .into_iter()
        .map(|slot| slot.expect("pool dropped a chunk without running it"))
        .collect()
}

/// A splittable, exactly-sized parallel iterator.
///
/// The `split_*`/`drive` methods are the (doc-hidden) plumbing every source
/// and adapter implements; the provided methods are the user-facing rayon
/// API surface this workspace uses.
pub trait ParallelIterator: Send + Sized {
    /// The element type.
    type Item: Send;

    /// Number of *splittable* positions left (for `flat_map_iter` this is
    /// the number of base items, not produced items).
    #[doc(hidden)]
    fn split_len(&self) -> usize;

    /// Splits into `[0, mid)` and `[mid, len)`. `mid <= split_len()`.
    #[doc(hidden)]
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Runs `consume` over this piece's items as an ordinary sequential
    /// iterator, in ascending index order.
    #[doc(hidden)]
    fn drive<F, R>(self, consume: F) -> R
    where
        F: FnOnce(&mut dyn Iterator<Item = Self::Item>) -> R;

    /// Smallest chunk length this iterator wants (`with_min_len`).
    #[doc(hidden)]
    fn min_len_hint(&self) -> usize {
        1
    }

    /// Largest chunk length this iterator wants (`with_max_len`).
    #[doc(hidden)]
    fn max_len_hint(&self) -> usize {
        usize::MAX
    }

    /// Maps each item through `map_op`.
    fn map<F, U>(self, map_op: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> U + Send + Sync,
        U: Send,
    {
        Map {
            base: self,
            f: Arc::new(map_op),
        }
    }

    /// Keeps only items satisfying `predicate`.
    fn filter<P>(self, predicate: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter {
            base: self,
            p: Arc::new(predicate),
        }
    }

    /// Maps and filters in one pass.
    fn filter_map<F, U>(self, map_op: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<U> + Send + Sync,
        U: Send,
    {
        FilterMap {
            base: self,
            f: Arc::new(map_op),
        }
    }

    /// Maps each item to a *sequential* iterator and flattens. Splitting
    /// happens at base-item granularity, as in rayon.
    fn flat_map_iter<F, U>(self, map_op: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> U + Send + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        FlatMapIter {
            base: self,
            f: Arc::new(map_op),
        }
    }

    /// Sets the minimum chunk length for splitting.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Sets the maximum chunk length for splitting.
    fn with_max_len(self, max: usize) -> MaxLen<Self> {
        MaxLen { base: self, max }
    }

    /// Calls `op` on every item.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_chunked(self, &|it: &mut dyn Iterator<Item = Self::Item>| {
            it.for_each(&op)
        });
    }

    /// Collects into `C`, preserving the sequential order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Number of items.
    fn count(self) -> usize {
        run_chunked(self, &|it: &mut dyn Iterator<Item = Self::Item>| it.count())
            .into_iter()
            .sum()
    }

    /// Sums the items; per-chunk partial sums are folded in chunk order.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        run_chunked(self, &|it: &mut dyn Iterator<Item = Self::Item>| {
            it.sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Minimum item (first one on ties, like [`Iterator::min`]).
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_chunked(self, &|it: &mut dyn Iterator<Item = Self::Item>| it.min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Maximum item (last one on ties, like [`Iterator::max`]).
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_chunked(self, &|it: &mut dyn Iterator<Item = Self::Item>| it.max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Whether any item satisfies `predicate`. Chunks already running may
    /// finish early once a witness is found; the result is exact either
    /// way.
    fn any<P>(self, predicate: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Send + Sync,
    {
        let found = AtomicBool::new(false);
        run_chunked(self, &|it: &mut dyn Iterator<Item = Self::Item>| {
            for item in it {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                if predicate(item) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        found.load(Ordering::Relaxed)
    }

    /// Whether every item satisfies `predicate` (early-exiting, exact).
    fn all<P>(self, predicate: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Send + Sync,
    {
        let failed = AtomicBool::new(false);
        run_chunked(self, &|it: &mut dyn Iterator<Item = Self::Item>| {
            for item in it {
                if failed.load(Ordering::Relaxed) {
                    return;
                }
                if !predicate(item) {
                    failed.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        !failed.load(Ordering::Relaxed)
    }
}

/// Parallel iterators whose items are in one-to-one positional
/// correspondence with an index range, enabling `zip`/`enumerate`.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Pairs items positionally with `other` (lengths should match; the
    /// shorter side bounds the result, as with [`Iterator::zip`]).
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` — parallel iteration by shared reference.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a shared reference).
    type Item: Send;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` — parallel iteration by exclusive reference.
pub trait IntoParallelRefMutIterator<'a> {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (an exclusive reference).
    type Item: Send;
    /// Exclusively borrows `self` as a parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoParallelIterator,
{
    type Iter = <&'a mut C as IntoParallelIterator>::Iter;
    type Item = <&'a mut C as IntoParallelIterator>::Item;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collections buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds `Self`, preserving the sequential item order.
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Vec<T>
    where
        I: ParallelIterator<Item = T>,
    {
        let chunks = run_chunked(iter, &|it: &mut dyn Iterator<Item = T>| {
            it.collect::<Vec<T>>()
        });
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    /// Short-circuits on the first error *in sequential order* (chunks past
    /// a failing one may still have run, but their results are discarded).
    fn from_par_iter<I>(iter: I) -> Result<Vec<T>, E>
    where
        I: ParallelIterator<Item = Result<T, E>>,
    {
        let chunks = run_chunked(iter, &|it: &mut dyn Iterator<Item = Result<T, E>>| {
            it.collect::<Result<Vec<T>, E>>()
        });
        let mut out = Vec::new();
        for chunk in chunks {
            out.extend(chunk?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    end: T,
}

macro_rules! range_impl {
    ($t:ty) => {
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter {
                    start: self.start,
                    end: self.end,
                }
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn split_len(&self) -> usize {
                if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                }
            }

            fn split_at(self, mid: usize) -> (Self, Self) {
                let mid = self.start + mid as $t;
                (
                    RangeIter {
                        start: self.start,
                        end: mid,
                    },
                    RangeIter {
                        start: mid,
                        end: self.end,
                    },
                )
            }

            fn drive<F, R>(self, consume: F) -> R
            where
                F: FnOnce(&mut dyn Iterator<Item = $t>) -> R,
            {
                consume(&mut (self.start..self.end))
            }
        }

        impl IndexedParallelIterator for RangeIter<$t> {}
    };
}

range_impl!(usize);
range_impl!(u32);
range_impl!(u64);
range_impl!(i32);
range_impl!(i64);

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn split_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at(mid);
        (SliceIter { slice: left }, SliceIter { slice: right })
    }

    fn drive<F, R>(self, consume: F) -> R
    where
        F: FnOnce(&mut dyn Iterator<Item = &'a T>) -> R,
    {
        consume(&mut self.slice.iter())
    }
}

impl<'a, T: Sync + 'a> IndexedParallelIterator for SliceIter<'a, T> {}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter {
            slice: self.as_slice(),
        }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send + 'a> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;

    fn split_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at_mut(mid);
        (SliceIterMut { slice: left }, SliceIterMut { slice: right })
    }

    fn drive<F, R>(self, consume: F) -> R
    where
        F: FnOnce(&mut dyn Iterator<Item = &'a mut T>) -> R,
    {
        consume(&mut self.slice.iter_mut())
    }
}

impl<'a, T: Send + 'a> IndexedParallelIterator for SliceIterMut<'a, T> {}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut [T] {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> SliceIterMut<'a, T> {
        SliceIterMut {
            slice: self.as_mut_slice(),
        }
    }
}

/// Parallel iterator that consumes a `Vec<T>`.
pub struct VecIntoIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIntoIter<T> {
    type Item = T;

    fn split_len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.vec.split_off(mid);
        (self, VecIntoIter { vec: tail })
    }

    fn drive<F, R>(self, consume: F) -> R
    where
        F: FnOnce(&mut dyn Iterator<Item = T>) -> R,
    {
        consume(&mut self.vec.into_iter())
    }
}

impl<T: Send> IndexedParallelIterator for VecIntoIter<T> {}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIntoIter<T> {
        VecIntoIter { vec: self }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: Arc<F>,
}

impl<B, F, U> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> U + Send + Sync,
    U: Send,
{
    type Item = U;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(mid);
        (
            Map {
                base: left,
                f: Arc::clone(&self.f),
            },
            Map {
                base: right,
                f: self.f,
            },
        )
    }

    fn drive<G, R>(self, consume: G) -> R
    where
        G: FnOnce(&mut dyn Iterator<Item = U>) -> R,
    {
        let f = self.f;
        self.base.drive(move |it| consume(&mut it.map(|x| (*f)(x))))
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn max_len_hint(&self) -> usize {
        self.base.max_len_hint()
    }
}

impl<B, F, U> IndexedParallelIterator for Map<B, F>
where
    B: IndexedParallelIterator,
    F: Fn(B::Item) -> U + Send + Sync,
    U: Send,
{
}

/// See [`ParallelIterator::filter`].
pub struct Filter<B, P> {
    base: B,
    p: Arc<P>,
}

impl<B, P> ParallelIterator for Filter<B, P>
where
    B: ParallelIterator,
    P: Fn(&B::Item) -> bool + Send + Sync,
{
    type Item = B::Item;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(mid);
        (
            Filter {
                base: left,
                p: Arc::clone(&self.p),
            },
            Filter {
                base: right,
                p: self.p,
            },
        )
    }

    fn drive<G, R>(self, consume: G) -> R
    where
        G: FnOnce(&mut dyn Iterator<Item = B::Item>) -> R,
    {
        let p = self.p;
        self.base
            .drive(move |it| consume(&mut it.filter(|x| (*p)(x))))
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn max_len_hint(&self) -> usize {
        self.base.max_len_hint()
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<B, F> {
    base: B,
    f: Arc<F>,
}

impl<B, F, U> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> Option<U> + Send + Sync,
    U: Send,
{
    type Item = U;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(mid);
        (
            FilterMap {
                base: left,
                f: Arc::clone(&self.f),
            },
            FilterMap {
                base: right,
                f: self.f,
            },
        )
    }

    fn drive<G, R>(self, consume: G) -> R
    where
        G: FnOnce(&mut dyn Iterator<Item = U>) -> R,
    {
        let f = self.f;
        self.base
            .drive(move |it| consume(&mut it.filter_map(|x| (*f)(x))))
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn max_len_hint(&self) -> usize {
        self.base.max_len_hint()
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<B, F> {
    base: B,
    f: Arc<F>,
}

impl<B, F, U> ParallelIterator for FlatMapIter<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> U + Send + Sync,
    U: IntoIterator,
    U::Item: Send,
{
    type Item = U::Item;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(mid);
        (
            FlatMapIter {
                base: left,
                f: Arc::clone(&self.f),
            },
            FlatMapIter {
                base: right,
                f: self.f,
            },
        )
    }

    fn drive<G, R>(self, consume: G) -> R
    where
        G: FnOnce(&mut dyn Iterator<Item = U::Item>) -> R,
    {
        let f = self.f;
        self.base
            .drive(move |it| consume(&mut it.flat_map(|x| (*f)(x))))
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn max_len_hint(&self) -> usize {
        self.base.max_len_hint()
    }
}

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<B> {
    base: B,
    min: usize,
}

impl<B: ParallelIterator> ParallelIterator for MinLen<B> {
    type Item = B::Item;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(mid);
        (
            MinLen {
                base: left,
                min: self.min,
            },
            MinLen {
                base: right,
                min: self.min,
            },
        )
    }

    fn drive<G, R>(self, consume: G) -> R
    where
        G: FnOnce(&mut dyn Iterator<Item = B::Item>) -> R,
    {
        self.base.drive(consume)
    }

    fn min_len_hint(&self) -> usize {
        self.min.max(self.base.min_len_hint())
    }

    fn max_len_hint(&self) -> usize {
        self.base.max_len_hint()
    }
}

impl<B: IndexedParallelIterator> IndexedParallelIterator for MinLen<B> {}

/// See [`ParallelIterator::with_max_len`].
pub struct MaxLen<B> {
    base: B,
    max: usize,
}

impl<B: ParallelIterator> ParallelIterator for MaxLen<B> {
    type Item = B::Item;

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(mid);
        (
            MaxLen {
                base: left,
                max: self.max,
            },
            MaxLen {
                base: right,
                max: self.max,
            },
        )
    }

    fn drive<G, R>(self, consume: G) -> R
    where
        G: FnOnce(&mut dyn Iterator<Item = B::Item>) -> R,
    {
        self.base.drive(consume)
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn max_len_hint(&self) -> usize {
        self.max.min(self.base.max_len_hint())
    }
}

impl<B: IndexedParallelIterator> IndexedParallelIterator for MaxLen<B> {}

/// See [`IndexedParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn split_len(&self) -> usize {
        self.a.split_len().min(self.b.split_len())
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(mid);
        let (bl, br) = self.b.split_at(mid);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn drive<G, R>(self, consume: G) -> R
    where
        G: FnOnce(&mut dyn Iterator<Item = (A::Item, B::Item)>) -> R,
    {
        let Zip { a, b } = self;
        a.drive(move |ia| b.drive(move |ib| consume(&mut ia.zip(ib))))
    }

    fn min_len_hint(&self) -> usize {
        self.a.min_len_hint().max(self.b.min_len_hint())
    }

    fn max_len_hint(&self) -> usize {
        self.a.max_len_hint().min(self.b.max_len_hint())
    }
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
}

/// See [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<B> {
    base: B,
    offset: usize,
}

impl<B: IndexedParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);

    fn split_len(&self) -> usize {
        self.base.split_len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(mid);
        (
            Enumerate {
                base: left,
                offset: self.offset,
            },
            Enumerate {
                base: right,
                offset: self.offset + mid,
            },
        )
    }

    fn drive<G, R>(self, consume: G) -> R
    where
        G: FnOnce(&mut dyn Iterator<Item = (usize, B::Item)>) -> R,
    {
        let offset = self.offset;
        self.base.drive(move |it| consume(&mut (offset..).zip(it)))
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn max_len_hint(&self) -> usize {
        self.base.max_len_hint()
    }
}

impl<B: IndexedParallelIterator> IndexedParallelIterator for Enumerate<B> {}
