//! Offline, vendored implementation of the `rayon` API surface this
//! workspace uses — a real fork-join thread pool, not a sequential shim.
//!
//! The real rayon cannot be fetched in this build environment, so this
//! crate reimplements the subset the simulator needs on plain `std`:
//!
//! * a lazily-initialized global pool (the `pool` module) of OS threads with
//!   lock-based work-stealing deques, sized from
//!   [`std::thread::available_parallelism`] and overridable via the
//!   `RAYON_NUM_THREADS` environment variable (read once, at first use;
//!   `1` runs everything inline on the calling thread);
//! * chunked index-space splitting for `par_iter` / `par_iter_mut` /
//!   `into_par_iter` over slices, `Vec`s and integer ranges, plus the
//!   `map` / `filter` / `filter_map` / `flat_map_iter` / `zip` /
//!   `with_min_len` / `with_max_len` adapters and the `collect` / `sum` /
//!   `min` / `max` / `count` / `any` / `all` / `for_each` consumers;
//! * [`join`] with caller-helps scheduling and panic propagation.
//!
//! # Determinism
//!
//! The simulator's reproducibility guarantee (fixed seed ⇒ byte-identical
//! run) must survive parallel execution, so this crate promises **stable
//! assignment**: chunk boundaries are a pure function of input length and
//! the `with_min_len`/`with_max_len` hints (see [`iter::chunk_size`]) —
//! never of the thread count or of runtime timing — and every consumer
//! combines per-chunk results in chunk order. Consequently any parallel
//! expression here evaluates to exactly the value the sequential schedule
//! would produce, at any `RAYON_NUM_THREADS`.
//!
//! Panics raised inside parallel work are caught at the task boundary and
//! re-thrown on the calling thread once the whole batch has finished, so
//! unwinding never leaves a worker holding borrows into a dead stack frame.

pub mod iter;
mod pool;

pub use pool::{current_num_threads, join};

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_chain_matches_sequential() {
        let xs = vec![1u64, 2, 3, 4];
        let mut ys = vec![10u64, 20, 30, 40];
        let zs: Vec<u64> = ys
            .par_iter_mut()
            .zip(xs.par_iter())
            .map(|(y, x)| {
                *y += x;
                *y
            })
            .collect();
        assert_eq!(zs, vec![11, 22, 33, 44]);
        assert_eq!(ys, vec![11, 22, 33, 44]);
    }

    #[test]
    fn into_par_iter_on_range() {
        let total: usize = (0..10usize).into_par_iter().flat_map_iter(|v| 0..v).count();
        assert_eq!(total, 45);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn large_collect_preserves_order() {
        let n = 10_000usize;
        let out: Vec<usize> = (0..n).into_par_iter().map(|i| i * 3).collect();
        let expect: Vec<usize> = (0..n).map(|i| i * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        let collected: Vec<u32> = empty.into_par_iter().collect();
        assert!(collected.is_empty());
        assert_eq!((0..0usize).into_par_iter().sum::<usize>(), 0);
        assert_eq!((0..0usize).into_par_iter().count(), 0);
        assert_eq!((0..0usize).into_par_iter().min(), None);
        assert!(!(0..0usize).into_par_iter().any(|_| true));
        assert!((0..0usize).into_par_iter().all(|_| false));
        let nothing: Vec<String> = Vec::<String>::new().par_iter().map(String::clone).collect();
        assert!(nothing.is_empty());
    }

    #[test]
    fn panic_propagates_from_parallel_work() {
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            (0..1000usize).into_par_iter().for_each(|i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 617 {
                    panic!("worker panic for test");
                }
            });
        }));
        let payload = result.expect_err("panic must cross the parallel boundary");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("worker panic"), "unexpected payload: {msg}");
        assert!(ran.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn panic_propagates_from_join() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            super::join(|| 1u32, || -> u32 { panic!("join arm panic") })
        }));
        assert!(result.is_err());
        // The pool must stay usable after a panic.
        let sum: u64 = (0..100u64).into_par_iter().sum();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn nested_par_iter() {
        let grids: Vec<u64> = (0..16u64)
            .into_par_iter()
            .map(|row| (0..1000u64).into_par_iter().map(|c| c * row).sum::<u64>())
            .collect();
        for (row, &total) in grids.iter().enumerate() {
            assert_eq!(total, (0..1000u64).sum::<u64>() * row as u64);
        }
    }

    #[test]
    fn with_min_len_controls_chunking() {
        use crate::iter::{chunk_size, TARGET_CHUNKS};
        // The default split targets TARGET_CHUNKS chunks...
        assert_eq!(chunk_size(6400, 1, usize::MAX), 6400 / TARGET_CHUNKS);
        // ...a min-len hint coarsens it...
        assert_eq!(chunk_size(6400, 500, usize::MAX), 500);
        // ...a max-len hint refines it...
        assert_eq!(chunk_size(6400, 1, 10), 10);
        // ...and short inputs never split below one item per chunk.
        assert_eq!(chunk_size(5, 1, usize::MAX), 1);
        // Results are identical whatever the hints (stable assignment).
        let base: Vec<u32> = (0..507u32).into_par_iter().map(|x| x ^ 7).collect();
        let coarse: Vec<u32> = (0..507u32)
            .into_par_iter()
            .with_min_len(100)
            .map(|x| x ^ 7)
            .collect();
        let fine: Vec<u32> = (0..507u32)
            .into_par_iter()
            .with_max_len(3)
            .map(|x| x ^ 7)
            .collect();
        assert_eq!(base, coarse);
        assert_eq!(base, fine);
    }

    #[test]
    fn filter_map_min_match_sequential_semantics() {
        let vals = [5usize, 3, 9, 3, 7];
        let par = vals
            .par_iter()
            .filter_map(|&v| if v > 2 { Some(v) } else { None })
            .min();
        assert_eq!(par, Some(3));
        let odd_sum: usize = (0..100usize).into_par_iter().filter(|v| v % 2 == 1).sum();
        assert_eq!(odd_sum, 2500);
        assert!((0..100usize).into_par_iter().any(|v| v == 99));
        assert!(!(0..100usize).into_par_iter().any(|v| v > 99));
    }

    #[test]
    fn collect_into_result_short_circuits_in_order() {
        let ok: Result<Vec<usize>, String> = (0..50usize)
            .into_par_iter()
            .map(Ok::<usize, String>)
            .collect();
        assert_eq!(ok.unwrap(), (0..50).collect::<Vec<_>>());
        let err: Result<Vec<usize>, usize> = (0..50usize)
            .into_par_iter()
            .map(|v| if v % 10 == 7 { Err(v) } else { Ok(v) })
            .collect();
        assert_eq!(err.unwrap_err(), 7, "first sequential error wins");
    }

    #[test]
    fn enumerate_offsets_survive_splitting() {
        let pairs: Vec<(usize, u8)> = vec![7u8; 300].into_par_iter().enumerate().collect();
        for (i, &(idx, v)) in pairs.iter().enumerate() {
            assert_eq!((idx, v), (i, 7));
        }
    }
}
