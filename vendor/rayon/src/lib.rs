//! Offline shim of the `rayon` API surface this workspace uses.
//!
//! The real rayon cannot be fetched in this build environment, so the
//! workspace vendors a **sequential** drop-in: `par_iter`, `par_iter_mut`
//! and `into_par_iter` simply return the corresponding standard iterators,
//! and rayon-only combinators (`flat_map_iter`, `with_min_len`) are provided
//! as extension methods on ordinary iterators. Node steps in the simulator
//! are pure per-node functions, so the sequential schedule is
//! observationally identical (and deterministic by construction); swap the
//! real rayon back in for wall-clock parallelism when registry access
//! exists.

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.

    /// `into_par_iter()` for owned collections — sequential fallback.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the standard sequential iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` for collections iterable by shared reference.
    pub trait IntoParallelRefIterator<'a> {
        /// The sequential iterator type.
        type Iter: Iterator;
        /// Returns the standard sequential iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }
    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` for collections iterable by exclusive reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The sequential iterator type.
        type Iter: Iterator;
        /// Returns the standard sequential iterator.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }
    impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Rayon-only combinators, re-expressed over standard iterators.
    pub trait ParallelIteratorShim: Iterator + Sized {
        /// rayon's `flat_map_iter` == sequential `flat_map`.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        /// Work-splitting hint; meaningless sequentially.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// Work-splitting hint; meaningless sequentially.
        fn with_max_len(self, _max: usize) -> Self {
            self
        }
    }
    impl<I: Iterator> ParallelIteratorShim for I {}
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chain_matches_sequential() {
        let xs = vec![1u64, 2, 3, 4];
        let mut ys = vec![10u64, 20, 30, 40];
        let zs: Vec<u64> = ys
            .par_iter_mut()
            .zip(xs.par_iter())
            .map(|(y, x)| {
                *y += x;
                *y
            })
            .collect();
        assert_eq!(zs, vec![11, 22, 33, 44]);
    }

    #[test]
    fn into_par_iter_on_range() {
        let total: usize = (0..10usize).into_par_iter().flat_map_iter(|v| 0..v).count();
        assert_eq!(total, 45);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
