//! # distributed-subgraph-detection
//!
//! A full reproduction of *"Possibilities and Impossibilities for
//! Distributed Subgraph Detection"* (Fischer, Gonen, Kuhn, Oshman —
//! SPAA 2018) as a Rust workspace:
//!
//! * [`graphlib`] — graph substrate (CSR graphs, generators, subgraph
//!   isomorphism, cliques, cycles, Turán machinery, decompositions);
//! * [`congest`] — instrumented CONGEST + congested-clique simulators with
//!   exact per-edge bit accounting;
//! * [`commlb`] — two-party communication complexity and the §3.3
//!   simulation argument;
//! * [`infotheory`] — entropy / mutual-information estimators for §5;
//! * [`detection`] (crate `subgraph-detection`) — the paper's algorithms:
//!   sublinear even-cycle detection (Theorem 1.1), triangle/clique/tree
//!   detection, generic LOCAL and gather baselines;
//! * [`lowerbounds`] — the executable impossibility constructions
//!   (Theorems 1.2, 4.1, 5.1, Lemma 1.3).
//!
//! ## Quickstart
//!
//! ```
//! use distributed_subgraph_detection::prelude::*;
//! use rand::SeedableRng;
//!
//! // Plant a 4-cycle in a sparse random tree and detect it in sublinear
//! // rounds with the Theorem 1.1 algorithm.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let base = graphlib::generators::random_tree(64, &mut rng);
//! let (g, _) = graphlib::generators::plant_cycle(&base, 4, &mut rng);
//!
//! let cfg = detection::EvenCycleConfig::new(2).repetitions(2000).seed(1);
//! let report = detection::detect_even_cycle(&g, cfg).unwrap();
//! assert!(report.detected);
//! ```

pub use commlb;
pub use congest;
pub use graphlib;
pub use infotheory;
pub use lowerbounds;
/// The paper's detection algorithms (crate `subgraph-detection`).
pub use subgraph_detection as detection;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use commlb::{self, DisjointnessInstance, Party};
    pub use congest::{self, Bandwidth, Decision, Outcome, SimError, Simulation};
    pub use graphlib::{self, Graph, GraphBuilder};
    pub use infotheory;
    pub use lowerbounds::{self, FamilyLayout, HkGraph};
    pub use subgraph_detection as detection;
}
