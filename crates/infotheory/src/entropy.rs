//! Shannon entropy over discrete distributions (bits, i.e. log base 2).

/// Binary entropy `H(p) = -p log p - (1-p) log (1-p)` in bits.
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let term = |x: f64| if x <= 0.0 { 0.0 } else { -x * x.log2() };
    term(p) + term(1.0 - p)
}

/// Shannon entropy of a probability vector (entries must be non-negative
/// and sum to ~1; zero entries contribute nothing).
pub fn entropy(probs: &[f64]) -> f64 {
    let sum: f64 = probs.iter().sum();
    debug_assert!(
        (sum - 1.0).abs() < 1e-6,
        "probabilities must sum to 1 (got {sum})"
    );
    probs
        .iter()
        .map(|&p| if p <= 0.0 { 0.0 } else { -p * p.log2() })
        .sum()
}

/// Entropy of an empirical distribution given by counts.
pub fn entropy_from_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            -p * p.log2()
        })
        .sum()
}

/// KL divergence `D(p || q)` in bits; `inf` if `p` puts mass where `q` does
/// not.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else if qi <= 0.0 {
                f64::INFINITY
            } else {
                pi * (pi / qi).log2()
            }
        })
        .sum()
}

/// Fano's inequality rearranged: a lower bound on the error probability of
/// guessing a uniform `X` over `k` values from side information `Y`, given
/// `I(X;Y) <= info` bits: `P_err >= (H(X) - info - 1) / log2(k)`.
pub fn fano_error_lower_bound(k: usize, info: f64) -> f64 {
    if k <= 1 {
        return 0.0;
    }
    let hk = (k as f64).log2();
    ((hk - info - 1.0) / hk).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn binary_entropy_values() {
        assert!(close(binary_entropy(0.5), 1.0));
        assert!(close(binary_entropy(0.0), 0.0));
        assert!(close(binary_entropy(1.0), 0.0));
        assert!(binary_entropy(0.11) < 0.51);
        assert!(binary_entropy(0.11) > 0.49);
    }

    #[test]
    fn uniform_entropy() {
        assert!(close(entropy(&[0.25; 4]), 2.0));
        assert!(close(entropy(&[1.0]), 0.0));
    }

    #[test]
    fn counts_entropy() {
        assert!(close(entropy_from_counts(&[1, 1, 1, 1]), 2.0));
        assert!(close(entropy_from_counts(&[5, 0, 0]), 0.0));
        assert!(close(entropy_from_counts(&[]), 0.0));
    }

    #[test]
    fn kl_properties() {
        let p = [0.5, 0.5];
        let q = [0.9, 0.1];
        assert!(close(kl_divergence(&p, &p), 0.0));
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_eq!(kl_divergence(&[1.0, 0.0], &[0.0, 1.0]), f64::INFINITY);
    }

    #[test]
    fn fano_bound_sane() {
        // No information about a uniform bit over 1024 values: error ~ 1.
        assert!(fano_error_lower_bound(1024, 0.0) > 0.85);
        // Full information: bound collapses to 0.
        assert_eq!(fano_error_lower_bound(1024, 10.0), 0.0);
        assert_eq!(fano_error_lower_bound(1, 0.0), 0.0);
    }
}
