//! # infotheory — entropy and mutual-information toolkit
//!
//! §5 of the paper proves its one-round triangle-detection bound with
//! mutual-information arguments (Lemmas 5.3/5.4). This crate provides the
//! measurement side: exact entropy formulas and plug-in estimators of
//! (conditional) mutual information over empirical joint distributions,
//! used by experiment E4 to measure how much information one-round messages
//! carry about the hidden triangle edge.

#![warn(missing_docs)]

pub mod entropy;
pub mod mutual;

pub use entropy::{binary_entropy, entropy, entropy_from_counts, fano_error_lower_bound};
pub use mutual::{Joint2, Joint3};
