//! Plug-in (empirical) mutual-information estimators.
//!
//! §5 of the paper bounds `I(X_bc; M_ba, M_ca | N_a, X_ab = 1, X_ac = 1)`.
//! Experiment E4 estimates such quantities from samples: accumulate joint
//! observations into [`Joint2`] / [`Joint3`] tables and read off the
//! plug-in estimate. Symbols are arbitrary `u64` codes (hash or pack your
//! variables into codes before accumulating).

use std::collections::HashMap;

/// Empirical joint distribution of a pair `(X, Y)`.
#[derive(Debug, Clone, Default)]
pub struct Joint2 {
    counts: HashMap<(u64, u64), u64>,
    total: u64,
}

impl Joint2 {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn add(&mut self, x: u64, y: u64) {
        *self.counts.entry((x, y)).or_default() += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Plug-in estimate of `I(X; Y)` in bits.
    pub fn mutual_information(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let t = self.total as f64;
        let mut px: HashMap<u64, u64> = HashMap::new();
        let mut py: HashMap<u64, u64> = HashMap::new();
        for (&(x, y), &c) in &self.counts {
            *px.entry(x).or_default() += c;
            *py.entry(y).or_default() += c;
        }
        let mut info = 0.0;
        for (&(x, y), &c) in &self.counts {
            let pxy = c as f64 / t;
            let pxm = px[&x] as f64 / t;
            let pym = py[&y] as f64 / t;
            info += pxy * (pxy / (pxm * pym)).log2();
        }
        info.max(0.0)
    }

    /// Plug-in estimate of `H(X)` in bits.
    pub fn entropy_x(&self) -> f64 {
        let mut px: HashMap<u64, u64> = HashMap::new();
        for (&(x, _), &c) in &self.counts {
            *px.entry(x).or_default() += c;
        }
        let counts: Vec<u64> = px.values().copied().collect();
        crate::entropy::entropy_from_counts(&counts)
    }
}

/// Empirical joint distribution of a triple `(X, Y, Z)`, supporting the
/// conditional mutual information `I(X; Y | Z)`.
#[derive(Debug, Clone, Default)]
pub struct Joint3 {
    counts: HashMap<(u64, u64, u64), u64>,
    total: u64,
}

impl Joint3 {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn add(&mut self, x: u64, y: u64, z: u64) {
        *self.counts.entry((x, y, z)).or_default() += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Plug-in estimate of `I(X; Y | Z) = E_z[ I(X; Y | Z = z) ]` in bits.
    pub fn conditional_mutual_information(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        // Group observations by z and average the per-slice estimates.
        let mut slices: HashMap<u64, Joint2> = HashMap::new();
        for (&(x, y, z), &c) in &self.counts {
            let slice = slices.entry(z).or_default();
            // Re-add with multiplicity.
            *slice.counts.entry((x, y)).or_default() += c;
            slice.total += c;
        }
        let t = self.total as f64;
        slices
            .values()
            .map(|s| (s.total as f64 / t) * s.mutual_information())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_variables_have_full_information() {
        let mut j = Joint2::new();
        for x in 0..4u64 {
            for _ in 0..100 {
                j.add(x, x);
            }
        }
        let i = j.mutual_information();
        assert!((i - 2.0).abs() < 1e-9, "I={i}");
        assert!((j.entropy_x() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn independent_variables_have_zero_information() {
        let mut j = Joint2::new();
        for x in 0..4u64 {
            for y in 0..4u64 {
                for _ in 0..25 {
                    j.add(x, y);
                }
            }
        }
        assert!(j.mutual_information().abs() < 1e-9);
    }

    #[test]
    fn noisy_channel_information_between_extremes() {
        // Y = X with prob 0.9, flipped with prob 0.1 — built deterministically.
        let mut j = Joint2::new();
        for x in 0..2u64 {
            for _ in 0..90 {
                j.add(x, x);
            }
            for _ in 0..10 {
                j.add(x, 1 - x);
            }
        }
        let i = j.mutual_information();
        let expected = 1.0 - crate::entropy::binary_entropy(0.1);
        assert!((i - expected).abs() < 1e-9, "I={i} expected={expected}");
    }

    #[test]
    fn empty_tables_are_zero() {
        assert_eq!(Joint2::new().mutual_information(), 0.0);
        assert_eq!(Joint3::new().conditional_mutual_information(), 0.0);
    }

    #[test]
    fn conditioning_removes_shared_dependence() {
        // X = Z, Y = Z: I(X;Y) = 1 but I(X;Y|Z) = 0.
        let mut j3 = Joint3::new();
        let mut j2 = Joint2::new();
        for z in 0..2u64 {
            for _ in 0..100 {
                j3.add(z, z, z);
                j2.add(z, z);
            }
        }
        assert!(j2.mutual_information() > 0.99);
        assert!(j3.conditional_mutual_information().abs() < 1e-9);
    }

    #[test]
    fn conditioning_can_reveal_dependence() {
        // X, Y iid uniform bits; Z = X xor Y. I(X;Y) = 0, I(X;Y|Z) = 1.
        let mut j3 = Joint3::new();
        for x in 0..2u64 {
            for y in 0..2u64 {
                for _ in 0..100 {
                    j3.add(x, y, x ^ y);
                }
            }
        }
        assert!((j3.conditional_mutual_information() - 1.0).abs() < 1e-9);
    }
}
