//! Property-based tests: information-theoretic sanity laws the estimators
//! must obey on every input.

use infotheory::{binary_entropy, entropy_from_counts, Joint2, Joint3};
use proptest::prelude::*;

proptest! {
    #[test]
    fn binary_entropy_bounds(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        // Symmetry.
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    }

    #[test]
    fn entropy_bounded_by_log_support(counts in proptest::collection::vec(0u64..50, 1..20)) {
        let h = entropy_from_counts(&counts);
        let support = counts.iter().filter(|&&c| c > 0).count().max(1);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (support as f64).log2() + 1e-9);
    }

    #[test]
    fn mutual_information_bounds(obs in proptest::collection::vec((0u64..4, 0u64..4), 1..200)) {
        let mut j = Joint2::new();
        let mut xs = Joint2::new();
        let mut ys = Joint2::new();
        for &(x, y) in &obs {
            j.add(x, y);
            xs.add(x, 0);
            ys.add(y, 0);
        }
        let i = j.mutual_information();
        prop_assert!(i >= -1e-12, "MI is non-negative");
        prop_assert!(i <= xs.entropy_x() + 1e-9, "MI <= H(X)");
        prop_assert!(i <= ys.entropy_x() + 1e-9, "MI <= H(Y)");
    }

    #[test]
    fn deterministic_function_gives_full_information(obs in proptest::collection::vec(0u64..8, 1..200)) {
        // Y = X: I(X;Y) = H(X).
        let mut j = Joint2::new();
        for &x in &obs {
            j.add(x, x);
        }
        prop_assert!((j.mutual_information() - j.entropy_x()).abs() < 1e-9);
    }

    #[test]
    fn conditional_mi_nonnegative(obs in proptest::collection::vec((0u64..3, 0u64..3, 0u64..3), 1..200)) {
        let mut j = Joint3::new();
        for &(x, y, z) in &obs {
            j.add(x, y, z);
        }
        prop_assert!(j.conditional_mutual_information() >= -1e-12);
    }

    #[test]
    fn constant_y_carries_no_information(obs in proptest::collection::vec(0u64..6, 1..100)) {
        let mut j = Joint2::new();
        for &x in &obs {
            j.add(x, 42);
        }
        prop_assert!(j.mutual_information().abs() < 1e-12);
    }
}
