//! Connected components via union-find.

use crate::graph::Graph;

/// Result of a connected-components computation.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component label per vertex, in `0..count`.
    pub label: Vec<usize>,
    /// Number of components.
    pub count: usize,
}

/// Disjoint-set union with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Labels every vertex with its connected component.
pub fn connected_components(g: &Graph) -> Components {
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u as usize, v as usize);
    }
    let mut label = vec![usize::MAX; g.n()];
    let mut next = 0;
    for v in 0..g.n() {
        let r = uf.find(v);
        if label[r] == usize::MAX {
            label[r] = next;
            next += 1;
        }
        label[v] = label[r];
    }
    Components { label, count: next }
}

/// Whether the graph is connected (vacuously true for `n <= 1`).
pub fn is_connected(g: &Graph) -> bool {
    g.n() <= 1 || connected_components(g).count == 1
}

/// Two-colors the graph if it is bipartite, returning the side of each
/// vertex, or `None` if an odd cycle exists.
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    let mut color: Vec<Option<bool>> = vec![None; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..g.n() {
        if color[start].is_some() {
            continue;
        }
        color[start] = Some(false);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let cu = color[u].unwrap();
            for &v in g.neighbors(u) {
                let v = v as usize;
                match color[v] {
                    None => {
                        color[v] = Some(!cu);
                        queue.push_back(v);
                    }
                    Some(cv) if cv == cu => return None,
                    _ => {}
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c.unwrap()).collect())
}

/// Whether the graph is bipartite.
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_component() {
        let g = generators::cycle(5);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn multiple_components() {
        let g = generators::disjoint_copies(&generators::cycle(3), 3);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert!(!is_connected(&g));
        assert_eq!(c.label[0], c.label[1]);
        assert_ne!(c.label[0], c.label[3]);
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::empty(4);
        assert_eq!(connected_components(&g).count, 4);
    }

    #[test]
    fn bipartite_checks() {
        assert!(is_bipartite(&generators::cycle(6)));
        assert!(!is_bipartite(&generators::cycle(5)));
        assert!(is_bipartite(&generators::complete_bipartite(3, 4)));
        assert!(!is_bipartite(&generators::clique(3)));
        assert!(is_bipartite(&Graph::empty(4)));
        let side = bipartition(&generators::path(4)).unwrap();
        assert_eq!(side, vec![false, true, false, true]);
    }

    #[test]
    fn union_find_counts() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert_eq!(uf.set_count(), 4);
    }
}
