//! Ullmann's subgraph-isomorphism algorithm (J. ACM 1976) — reference \[24\]
//! of the paper, implemented as an independent cross-check for the VF2
//! matcher in [`crate::iso`].
//!
//! The algorithm maintains, for every pattern vertex, a bitset of candidate
//! target vertices, and interleaves backtracking with Ullmann's
//! *refinement*: a candidate `t` for pattern vertex `u` survives only if
//! every pattern-neighbor of `u` still has a candidate among the target
//! neighbors of `t`. Candidate sets are stored as packed `u64` words, so
//! refinement is a handful of AND/OR word operations per check.

use crate::graph::Graph;

/// Packed bitset over target vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BitRow {
    words: Vec<u64>,
}

impl BitRow {
    fn zeros(n: usize) -> Self {
        BitRow {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn intersects(&self, other: &BitRow) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn iter_ones<'a>(&'a self) -> impl Iterator<Item = usize> + 'a {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

struct Ullmann<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    /// Adjacency bitsets of the target.
    target_adj: Vec<BitRow>,
    used: BitRow,
    assignment: Vec<usize>,
    found: Option<Vec<u32>>,
}

impl<'a> Ullmann<'a> {
    fn new(pattern: &'a Graph, target: &'a Graph) -> Self {
        let target_adj = (0..target.n())
            .map(|t| {
                let mut row = BitRow::zeros(target.n());
                for &w in target.neighbors(t) {
                    row.set(w as usize);
                }
                row
            })
            .collect();
        Ullmann {
            pattern,
            target,
            target_adj,
            used: BitRow::zeros(target.n()),
            assignment: vec![usize::MAX; pattern.n()],
            found: None,
        }
    }

    /// Initial candidate rows from the degree condition.
    fn initial_candidates(&self) -> Option<Vec<BitRow>> {
        let mut rows = Vec::with_capacity(self.pattern.n());
        for u in 0..self.pattern.n() {
            let mut row = BitRow::zeros(self.target.n());
            let du = self.pattern.degree(u);
            for t in 0..self.target.n() {
                if self.target.degree(t) >= du {
                    row.set(t);
                }
            }
            if row.is_empty() {
                return None;
            }
            rows.push(row);
        }
        Some(rows)
    }

    /// Ullmann refinement to a fixed point. Returns false if some pattern
    /// vertex lost all candidates.
    fn refine(&self, rows: &mut [BitRow]) -> bool {
        loop {
            let mut changed = false;
            for u in 0..self.pattern.n() {
                let candidates: Vec<usize> = rows[u].iter_ones().collect();
                for t in candidates {
                    // Every pattern neighbor of u must have a candidate in
                    // N(t).
                    let ok = self
                        .pattern
                        .neighbors(u)
                        .iter()
                        .all(|&v| rows[v as usize].intersects(&self.target_adj[t]));
                    if !ok {
                        rows[u].clear(t);
                        changed = true;
                    }
                }
                if rows[u].is_empty() {
                    return false;
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn search(&mut self, rows: &[BitRow], depth_order: &[usize], pos: usize) -> bool {
        if self.found.is_some() {
            return true;
        }
        if pos == depth_order.len() {
            self.found = Some(self.assignment.iter().map(|&a| a as u32).collect());
            return true;
        }
        let u = depth_order[pos];
        let candidates: Vec<usize> = rows[u].iter_ones().collect();
        for t in candidates {
            if self.used.get(t) {
                continue;
            }
            // Consistency with already-assigned pattern neighbors.
            let ok = self.pattern.neighbors(u).iter().all(|&v| {
                let a = self.assignment[v as usize];
                a == usize::MAX || self.target_adj[t].get(a)
            });
            if !ok {
                continue;
            }
            // Fix u -> t, restrict, refine, recurse.
            let mut next: Vec<BitRow> = rows.to_vec();
            next[u] = BitRow::zeros(self.target.n());
            next[u].set(t);
            for (v, row) in next.iter_mut().enumerate() {
                if v != u && self.assignment[v] == usize::MAX {
                    row.clear(t);
                }
            }
            if self.refine(&mut next) {
                self.assignment[u] = t;
                self.used.set(t);
                if self.search(&next, depth_order, pos + 1) {
                    return true;
                }
                self.used.clear(t);
                self.assignment[u] = usize::MAX;
            }
        }
        false
    }
}

/// Finds one embedding of `pattern` into `target` with Ullmann's algorithm,
/// as a pattern→target vertex map.
pub fn find_subgraph_ullmann(pattern: &Graph, target: &Graph) -> Option<Vec<u32>> {
    if pattern.n() == 0 {
        return Some(Vec::new());
    }
    if pattern.n() > target.n() || pattern.m() > target.m() {
        return None;
    }
    let mut state = Ullmann::new(pattern, target);
    let mut rows = state.initial_candidates()?;
    if !state.refine(&mut rows) {
        return None;
    }
    // Most-constrained-first search order.
    let mut order: Vec<usize> = (0..pattern.n()).collect();
    order.sort_by_key(|&u| rows[u].count());
    state.search(&rows, &order, 0);
    state.found
}

/// Whether `target` contains `pattern` (Ullmann variant of
/// [`crate::iso::contains_subgraph`]).
pub fn contains_subgraph_ullmann(pattern: &Graph, target: &Graph) -> bool {
    find_subgraph_ullmann(pattern, target).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::iso;

    #[test]
    fn agrees_with_vf2_on_basics() {
        let cases = [
            (generators::cycle(3), generators::clique(5), true),
            (
                generators::cycle(3),
                generators::complete_bipartite(4, 4),
                false,
            ),
            (
                generators::cycle(4),
                generators::complete_bipartite(2, 2),
                true,
            ),
            (generators::cycle(5), generators::cycle(6), false),
            (generators::path(4), generators::cycle(6), true),
            (generators::clique(5), generators::clique(4), false),
        ];
        for (pat, tgt, expect) in cases {
            assert_eq!(contains_subgraph_ullmann(&pat, &tgt), expect);
            assert_eq!(iso::contains_subgraph(&pat, &tgt), expect);
        }
    }

    #[test]
    fn witness_is_valid() {
        let pat = generators::cycle(4);
        let tgt = generators::clique(6);
        let phi = find_subgraph_ullmann(&pat, &tgt).unwrap();
        assert!(iso::verify_embedding(&pat, &tgt, &phi));
    }

    #[test]
    fn agrees_with_vf2_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        for trial in 0..10 {
            let pat = generators::gnp(5, 0.5, &mut rng);
            let tgt = generators::gnp(12, 0.3, &mut rng);
            assert_eq!(
                contains_subgraph_ullmann(&pat, &tgt),
                iso::contains_subgraph(&pat, &tgt),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn refinement_prunes_impossible_candidates() {
        // A star center needs a degree-3 image: no candidate in a path.
        let pat = generators::star(3);
        let tgt = generators::path(6);
        assert!(!contains_subgraph_ullmann(&pat, &tgt));
    }

    #[test]
    fn empty_and_oversized_patterns() {
        let g = generators::cycle(4);
        assert!(contains_subgraph_ullmann(
            &crate::graph::Graph::empty(0),
            &g
        ));
        assert!(!contains_subgraph_ullmann(&generators::clique(6), &g));
    }

    #[test]
    fn bitrow_operations() {
        let mut r = BitRow::zeros(130);
        r.set(0);
        r.set(64);
        r.set(129);
        assert!(r.get(64) && !r.get(65));
        assert_eq!(r.count(), 3);
        assert_eq!(r.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        r.clear(64);
        assert_eq!(r.count(), 2);
        assert!(!r.is_empty());
    }
}
