//! Breadth-first search primitives: distance vectors, balls, and parents.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Distance `usize::MAX` marks an unreachable vertex.
pub const UNREACHABLE: usize = usize::MAX;

/// Single-source BFS distances from `src`.
pub fn distances(g: &Graph, src: usize) -> Vec<usize> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS distances and parent pointers (parent of the source is itself).
pub fn distances_with_parents(g: &Graph, src: usize) -> (Vec<usize>, Vec<usize>) {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut parent = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    parent[src] = src;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// The vertices within distance `radius` of `src` (the closed ball),
/// in BFS order.
pub fn ball(g: &Graph, src: usize, radius: usize) -> Vec<usize> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    let mut out = vec![src];
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        if du == radius {
            continue;
        }
        for &v in g.neighbors(u) {
            let v = v as usize;
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                out.push(v);
                queue.push_back(v);
            }
        }
    }
    out
}

/// Eccentricity of `src`: the maximum distance to any *reachable* vertex.
pub fn eccentricity(g: &Graph, src: usize) -> usize {
    distances(g, src)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_distances() {
        let g = generators::path(5);
        let d = distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn parents_form_tree() {
        let g = generators::cycle(6);
        let (dist, parent) = distances_with_parents(&g, 0);
        for v in 1..6 {
            assert_eq!(dist[parent[v]] + 1, dist[v]);
        }
        assert_eq!(parent[0], 0);
    }

    #[test]
    fn ball_radius() {
        let g = generators::path(10);
        let b = ball(&g, 5, 2);
        let mut sorted = b.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn cycle_eccentricity() {
        let g = generators::cycle(8);
        assert_eq!(eccentricity(&g, 0), 4);
    }
}
