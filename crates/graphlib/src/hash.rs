//! Fx-style fast hashing (implemented in-repo to stay within the allowed
//! dependency list; see the perf-book guidance on alternative hashers).
//!
//! This is the FxHash algorithm used by rustc: a multiply-and-rotate mix per
//! machine word. It is not HashDoS-resistant, which is fine for simulator
//! internals keyed by small integers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher (rustc's FxHash).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn byte_tail_handling() {
        // Writes that are not multiples of 8 bytes must still hash all bytes.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(&[1, 2, 3]);
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
