//! Combinatorial helpers: binomial coefficients and k-subset (un)ranking.
//!
//! §3.2 of the paper encodes each index `i in [n]` as a distinct k-subset
//! `Q_i` of `[m]` with `m = k * ceil(n^{1/k})` (possible because
//! `C(m, k) >= n`). We implement the standard combinatorial number system
//! (colex order) to make that encoding concrete and invertible.

/// Binomial coefficient `C(n, k)`, saturating at `u64::MAX`.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut r: u64 = 1;
    for i in 0..k {
        // r * (n - i) / (i + 1) stays integral at every step.
        match r.checked_mul(n - i) {
            Some(x) => r = x / (i + 1),
            None => return u64::MAX,
        }
    }
    r
}

/// The `rank`-th k-subset of `{0, 1, 2, ...}` in colexicographic order,
/// returned as a strictly increasing vector of length `k`.
///
/// Colex rank of `{c_1 < c_2 < ... < c_k}` is `sum_i C(c_i, i)`.
pub fn unrank_ksubset(mut rank: u64, k: usize) -> Vec<u64> {
    let mut out = vec![0u64; k];
    for i in (1..=k).rev() {
        // Largest c with C(c, i) <= rank.
        let mut c = i as u64 - 1; // C(i-1, i) = 0 <= rank always
        loop {
            let next = binomial(c + 1, i as u64);
            if next <= rank {
                c += 1;
            } else {
                break;
            }
        }
        out[i - 1] = c;
        rank -= binomial(c, i as u64);
    }
    out
}

/// Colex rank of a strictly increasing k-subset.
pub fn rank_ksubset(subset: &[u64]) -> u64 {
    subset
        .iter()
        .enumerate()
        .map(|(i, &c)| binomial(c, i as u64 + 1))
        .sum()
}

/// `ceil(n^{1/k})` computed exactly with integer arithmetic.
pub fn ceil_root(n: u64, k: u32) -> u64 {
    if n <= 1 {
        return n;
    }
    let mut lo = 1u64;
    let mut hi = n;
    // Smallest r with r^k >= n.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pow_at_least(mid, k, n) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Whether `base^exp >= target`, without overflow.
fn pow_at_least(base: u64, exp: u32, target: u64) -> bool {
    let mut acc: u64 = 1;
    for _ in 0..exp {
        acc = match acc.checked_mul(base) {
            Some(x) => x,
            None => return true,
        };
        if acc >= target {
            return true;
        }
    }
    acc >= target
}

/// The universe size `m = k * ceil(n^{1/k})` of §3.2, guaranteeing
/// `C(m, k) >= n` distinct k-subset encodings.
pub fn subset_universe(n: usize, k: usize) -> usize {
    k * ceil_root(n as u64, k as u32) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_table() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(60, 30), 118264581564861424);
    }

    #[test]
    fn unrank_enumerates_all_subsets_in_order() {
        let k = 3;
        let total = binomial(6, 3);
        let mut seen = std::collections::HashSet::new();
        for r in 0..total {
            let s = unrank_ksubset(r, k);
            assert_eq!(s.len(), k);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
            assert!(*s.last().unwrap() < 6, "within universe for this count");
            assert_eq!(rank_ksubset(&s), r, "rank roundtrip");
            assert!(seen.insert(s));
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn unrank_first_and_step() {
        assert_eq!(unrank_ksubset(0, 3), vec![0, 1, 2]);
        assert_eq!(unrank_ksubset(1, 3), vec![0, 1, 3]);
    }

    #[test]
    fn ceil_root_values() {
        assert_eq!(ceil_root(8, 3), 2);
        assert_eq!(ceil_root(9, 3), 3); // 2^3 = 8 < 9
        assert_eq!(ceil_root(27, 3), 3);
        assert_eq!(ceil_root(1, 5), 1);
        assert_eq!(ceil_root(100, 2), 10);
        assert_eq!(ceil_root(101, 2), 11);
    }

    #[test]
    fn universe_admits_n_encodings() {
        for k in 2..5usize {
            for n in [1usize, 10, 100, 1000] {
                let m = subset_universe(n, k);
                assert!(binomial(m as u64, k as u64) >= n as u64, "C({m},{k}) < {n}");
            }
        }
    }

    #[test]
    fn encodings_are_distinct_within_universe() {
        let n = 50;
        let k = 3;
        let m = subset_universe(n, k) as u64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n as u64 {
            let s = unrank_ksubset(i, k);
            assert!(s.iter().all(|&x| x < m), "subset fits universe");
            assert!(seen.insert(s));
        }
    }
}
