//! The atlas of small connected graphs, and subgraph censuses over it.
//!
//! Subgraph detection is parameterized by a fixed small `H`; downstream
//! users often want "detect/count *every* small shape". This module
//! enumerates all connected graphs up to isomorphism (5 vertices and
//! below: 1, 1, 2, 6, 21 graphs) and counts the copies of each in a host
//! graph — the centralized census the distributed detectors are compared
//! against.

use crate::graph::Graph;
use crate::iso;
use rayon::prelude::*;

/// An atlas entry: a connected graph plus its automorphism count (cached
/// because censuses divide by it).
#[derive(Debug, Clone)]
pub struct AtlasEntry {
    /// The graph, with vertices `0..n`.
    pub graph: Graph,
    /// `|Aut(graph)|`.
    pub automorphisms: usize,
    /// A short human-readable name (`n-m-index` form).
    pub name: String,
}

/// Enumerates all connected graphs on exactly `n` vertices (`1 <= n <= 6`),
/// up to isomorphism, ordered by edge count.
pub fn connected_graphs(n: usize) -> Vec<AtlasEntry> {
    assert!((1..=6).contains(&n), "atlas supports 1..=6 vertices");
    let pairs: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
        .collect();
    let mut found: Vec<Graph> = Vec::new();
    for mask in 0u32..(1 << pairs.len()) {
        let edges: Vec<(u32, u32)> = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        let g = Graph::from_edges(n, &edges);
        if !crate::components::is_connected(&g) {
            continue;
        }
        // Dedup up to isomorphism: same n and m plus mutual containment.
        let duplicate = found
            .iter()
            .any(|h| h.m() == g.m() && iso::contains_subgraph(&g, h));
        if !duplicate {
            found.push(g);
        }
    }
    found.sort_by_key(|g| g.m());
    found
        .into_iter()
        .enumerate()
        .map(|(i, graph)| {
            let automorphisms = iso::automorphism_count(&graph).max(1);
            let name = format!("G{}_{}m_{}", n, graph.m(), i);
            AtlasEntry {
                graph,
                automorphisms,
                name,
            }
        })
        .collect()
}

/// All connected graphs with between 1 and `max_n` vertices.
pub fn atlas_up_to(max_n: usize) -> Vec<AtlasEntry> {
    (1..=max_n).flat_map(connected_graphs).collect()
}

/// One census row: an atlas entry and its copy count in the host.
#[derive(Debug, Clone)]
pub struct CensusRow {
    /// The pattern.
    pub entry: AtlasEntry,
    /// Number of copies in the host (`None` if counting hit the cap).
    pub copies: Option<usize>,
}

/// Counts the copies of every connected graph on up to `max_n` vertices in
/// `host`. `cap` bounds the embedding count per pattern (to keep dense
/// hosts tractable); patterns that exceed it report `None`.
pub fn census(host: &Graph, max_n: usize, cap: usize) -> Vec<CensusRow> {
    let entries = atlas_up_to(max_n);
    entries
        .into_par_iter()
        .map(|entry| {
            let copies = iso::count_embeddings(&entry.graph, host, cap);
            let copies = if copies >= cap {
                None
            } else {
                Some(copies / entry.automorphisms)
            };
            CensusRow { entry, copies }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn connected_graph_counts_match_oeis() {
        // OEIS A001349: connected graphs on n nodes: 1, 1, 2, 6, 21, 112.
        assert_eq!(connected_graphs(1).len(), 1);
        assert_eq!(connected_graphs(2).len(), 1);
        assert_eq!(connected_graphs(3).len(), 2);
        assert_eq!(connected_graphs(4).len(), 6);
        assert_eq!(connected_graphs(5).len(), 21);
    }

    #[test]
    fn entries_are_pairwise_non_isomorphic() {
        for n in 1..=4 {
            let entries = connected_graphs(n);
            for i in 0..entries.len() {
                for j in (i + 1)..entries.len() {
                    let (a, b) = (&entries[i].graph, &entries[j].graph);
                    let isomorphic = a.n() == b.n()
                        && a.m() == b.m()
                        && iso::contains_subgraph(a, b)
                        && iso::contains_subgraph(b, a);
                    assert!(!isomorphic, "n={n}: entries {i} and {j} coincide");
                }
            }
        }
    }

    #[test]
    fn size_three_atlas_is_path_and_triangle() {
        let entries = connected_graphs(3);
        assert_eq!(entries[0].graph.m(), 2); // path
        assert_eq!(entries[1].graph.m(), 3); // triangle
        assert_eq!(entries[0].automorphisms, 2);
        assert_eq!(entries[1].automorphisms, 6);
    }

    #[test]
    fn census_of_k4() {
        let host = generators::clique(4);
        let rows = census(&host, 3, usize::MAX);
        // Patterns: K1, K2, P3, K3.
        let by_name: Vec<(usize, usize, usize)> = rows
            .iter()
            .map(|r| (r.entry.graph.n(), r.entry.graph.m(), r.copies.unwrap()))
            .collect();
        assert_eq!(by_name[0], (1, 0, 4)); // vertices
        assert_eq!(by_name[1], (2, 1, 6)); // edges
        assert_eq!(by_name[2], (3, 2, 12)); // paths of 3: 4 * C(3,2) = 12
        assert_eq!(by_name[3], (3, 3, 4)); // triangles
    }

    #[test]
    fn census_matches_dedicated_counters() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let host = generators::gnp(12, 0.35, &mut rng);
        let rows = census(&host, 4, usize::MAX);
        for r in &rows {
            let g = &r.entry.graph;
            if g.n() == 3 && g.m() == 3 {
                assert_eq!(
                    r.copies.unwrap() as u64,
                    crate::cliques::count_triangles(&host)
                );
            }
            if g.n() == 4 && g.m() == 6 {
                assert_eq!(
                    r.copies.unwrap() as u64,
                    crate::cliques::count_ksub(&host, 4)
                );
            }
            if g.n() == 4 && g.m() == 4 && g.max_degree() == 2 {
                assert_eq!(
                    r.copies.unwrap() as u64,
                    crate::cycles::count_cycles(&host, 4)
                );
            }
        }
    }

    #[test]
    fn census_cap_reports_none() {
        let host = generators::clique(9);
        let rows = census(&host, 3, 10);
        // Edge count of K9 is 36 > 10 embeddings-cap.
        assert!(rows.iter().any(|r| r.copies.is_none()));
    }
}
