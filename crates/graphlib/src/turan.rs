//! Turán-number machinery for even cycles.
//!
//! The even-cycle algorithm (§6) relies on the Bondy–Simonovits bound
//! `ex(n, C_2k) <= c_k * n^{1+1/k}`: any graph on `n` vertices with more
//! edges must contain a `C_2k`. We expose the bound `M(n, k)` used by the
//! algorithm, plus generators of dense even-cycle-free graphs used to
//! stress the bound empirically (experiment E7).

use crate::graph::{Graph, GraphBuilder};

/// The constant `c_k` in `ex(n, C_2k) <= c_k * n^{1+1/k}`.
///
/// Bondy–Simonovits prove `ex(n, C_2k) <= 100 k n^{1+1/k}`; later work
/// (Bukh–Jiang, cited by the paper) improved the constant. We use the
/// conservative classical `8k` form (sufficient for all graphs our
/// experiments build, and checked empirically in E7): the *algorithm* only
/// needs *some* valid upper bound, and a larger constant only increases the
/// round budget by a constant factor.
pub fn turan_constant(k: usize) -> f64 {
    8.0 * k as f64
}

/// The edge bound `M = M(n, k) >= ex(n, C_2k)` used by the even-cycle
/// algorithm: `ceil(c_k * n^{1+1/k})`.
pub fn even_cycle_edge_bound(n: usize, k: usize) -> usize {
    assert!(k >= 2);
    let nf = n as f64;
    (turan_constant(k) * nf.powf(1.0 + 1.0 / k as f64)).ceil() as usize
}

/// A `C_4`-free graph with `Θ(n^{3/2})` edges: the point–line incidence
/// bipartite graph of the projective-plane-like grid construction. For a
/// prime `q`, vertices are `q^2` points and `q^2` lines `y = ax + b` over
/// `F_q`; a point is joined to the lines through it. Two distinct
/// non-vertical lines share at most one point, so the graph is `C_4`-free,
/// with `q^3 = n^{3/2} / ...` edges on `n = 2 q^2` vertices.
pub fn c4_free_incidence_graph(q: usize) -> Graph {
    assert!(is_prime(q), "q must be prime");
    let points = q * q;
    let n = 2 * points;
    let mut b = GraphBuilder::new(n);
    // Point (x, y) has index x*q + y; line (a, b) has index points + a*q + b.
    for a in 0..q {
        for c in 0..q {
            let line = points + a * q + c;
            for x in 0..q {
                let y = (a * x + c) % q;
                b.add_edge(x * q + y, line);
            }
        }
    }
    b.build()
}

/// Simple primality test (trial division) — inputs here are tiny.
pub fn is_prime(q: usize) -> bool {
    if q < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= q {
        if q.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// The largest prime `<= x` (panics if `x < 2`).
pub fn prime_below(x: usize) -> usize {
    let mut q = x;
    while !is_prime(q) {
        q -= 1;
    }
    q
}

/// Greedily extracts a `C_{2k}`-free subgraph of `g`: inserts edges one by
/// one, skipping any edge that would close an even cycle of length exactly
/// `2k`. Used to generate hard (dense even-cycle-free) instances.
pub fn greedy_c2k_free_subgraph(g: &Graph, k: usize) -> Graph {
    let mut b = GraphBuilder::new(g.n());
    let mut current = b.build();
    for (u, v) in g.edges() {
        let mut trial = GraphBuilder::new(g.n());
        for (a, c) in current.edges() {
            trial.add_edge(a as usize, c as usize);
        }
        trial.add_edge(u as usize, v as usize);
        let candidate = trial.build();
        if !crate::cycles::has_cycle(&candidate, 2 * k) {
            current = candidate;
        }
        b = trial; // reuse allocation pattern; rebuilt next iteration anyway
    }
    let _ = b;
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles;
    use crate::generators;

    #[test]
    fn bound_grows_superlinearly() {
        let k = 2;
        let m100 = even_cycle_edge_bound(100, k);
        let m400 = even_cycle_edge_bound(400, k);
        // n^{3/2}: quadrupling n multiplies the bound by 8.
        let ratio = m400 as f64 / m100 as f64;
        assert!((7.0..9.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn bound_dominates_known_c4_free_graphs() {
        for q in [3usize, 5, 7] {
            let g = c4_free_incidence_graph(q);
            assert!(
                g.m() <= even_cycle_edge_bound(g.n(), 2),
                "q={q}: m={} bound={}",
                g.m(),
                even_cycle_edge_bound(g.n(), 2)
            );
        }
    }

    #[test]
    fn incidence_graph_is_c4_free() {
        for q in [2usize, 3, 5] {
            let g = c4_free_incidence_graph(q);
            assert!(!cycles::has_cycle(&g, 4), "q={q}");
            assert_eq!(g.m(), q * q * q);
        }
    }

    #[test]
    fn incidence_graph_is_dense() {
        let q = 7;
        let g = c4_free_incidence_graph(q);
        // m = q^3, n = 2q^2, so m ~ (n/2)^{3/2} — check superlinearity.
        assert!(g.m() > 2 * g.n());
    }

    #[test]
    fn primes() {
        assert!(is_prime(2) && is_prime(3) && is_prime(7) && is_prime(13));
        assert!(!is_prime(1) && !is_prime(9) && !is_prime(15));
        assert_eq!(prime_below(10), 7);
        assert_eq!(prime_below(13), 13);
    }

    #[test]
    fn greedy_subgraph_is_c2k_free() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let g = generators::gnp(24, 0.3, &mut rng);
        let h = greedy_c2k_free_subgraph(&g, 2);
        assert!(!cycles::has_cycle(&h, 4));
        assert!(h.m() <= g.m());
    }
}
