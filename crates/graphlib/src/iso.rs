//! Subgraph isomorphism (monomorphism) in the sense of the paper's
//! Definition 1: `H` is contained in `G` if there is an injective map
//! `V(H) -> V(G)` carrying every edge of `H` to an edge of `G`
//! (non-induced — extra edges in `G` are allowed).
//!
//! The search is a VF2-style backtracking with:
//! * a connectivity-driven vertex ordering of the pattern (each vertex is
//!   matched after at least one neighbor, when the pattern is connected),
//! * degree pruning (`deg_H(u) <= deg_G(phi(u))`),
//! * candidate generation from already-mapped neighbors instead of scanning
//!   all of `G`.

use crate::graph::Graph;

const UNMAPPED: u32 = u32::MAX;

/// Partitions pattern vertices into *twin classes*: maximal groups that are
/// pairwise interchangeable (all pairs adjacent with equal closed
/// neighborhoods — "true twins", e.g. the interior of a clique — or all
/// pairs non-adjacent with equal neighborhoods — "false twins"). Permuting
/// a class is an automorphism of the pattern, so an existence search may
/// insist on ascending images within each class; this collapses the
/// factorial blowup on patterns with large cliques (such as the paper's
/// `H_k` anchors).
#[allow(clippy::needless_range_loop)] // `v` indexes two parallel arrays
fn twin_classes(pattern: &Graph) -> Vec<Vec<usize>> {
    let n = pattern.n();
    let nbrs: Vec<Vec<u32>> = (0..n).map(|v| pattern.neighbors(v).to_vec()).collect();
    let twins = |u: usize, v: usize| -> bool {
        let strip = |list: &[u32], x: usize| -> Vec<u32> {
            list.iter().copied().filter(|&w| w as usize != x).collect()
        };
        strip(&nbrs[u], v) == strip(&nbrs[v], u)
    };
    let mut assigned = vec![false; n];
    let mut classes = Vec::new();
    for u in 0..n {
        if assigned[u] {
            continue;
        }
        let mut class = vec![u];
        let u_adj: std::collections::HashSet<u32> = nbrs[u].iter().copied().collect();
        for v in (u + 1)..n {
            if assigned[v] || !twins(u, v) {
                continue;
            }
            // Same adjacency type with *all* current members.
            let v_ok = class.iter().all(|&w| {
                let adj_uv = u_adj.contains(&(v as u32));
                let adj_wv = pattern.has_edge(w, v);
                adj_uv == adj_wv && twins(w, v)
            });
            if v_ok {
                class.push(v);
            }
        }
        for &v in &class {
            assigned[v] = true;
        }
        if class.len() > 1 {
            classes.push(class);
        }
    }
    classes
}

/// Search state for one subgraph-isomorphism query.
struct Matcher<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    /// Pattern vertices in matching order.
    order: Vec<usize>,
    /// For order position i: (pattern vertex, Some(mapped-neighbor position))
    /// — a previously-matched pattern neighbor used to generate candidates.
    anchor: Vec<Option<usize>>,
    /// phi: pattern -> target (UNMAPPED if not set).
    phi: Vec<u32>,
    /// used[t] = target vertex t is already an image.
    used: Vec<bool>,
    /// Count embeddings up to this cap (1 for existence queries).
    limit: usize,
    found: usize,
    witness: Option<Vec<u32>>,
    /// For each pattern vertex: `(classmate, must_precede)` constraints —
    /// if `must_precede`, the classmate's image (when mapped) must be below
    /// ours; otherwise above. Only populated for existence queries.
    twin_order: Vec<Vec<(usize, bool)>>,
}

impl<'a> Matcher<'a> {
    fn new(pattern: &'a Graph, target: &'a Graph, limit: usize) -> Self {
        let (order, anchor) = matching_order(pattern);
        let mut twin_order = vec![Vec::new(); pattern.n()];
        if limit == 1 {
            // Symmetry breaking is only sound for existence queries
            // (counting must see every map).
            for class in twin_classes(pattern) {
                for (i, &u) in class.iter().enumerate() {
                    for &v in &class[..i] {
                        twin_order[u].push((v, true));
                        twin_order[v].push((u, false));
                    }
                }
            }
        }
        Matcher {
            pattern,
            target,
            order,
            anchor,
            phi: vec![UNMAPPED; pattern.n()],
            used: vec![false; target.n()],
            limit,
            found: 0,
            witness: None,
            twin_order,
        }
    }

    fn run(&mut self) {
        self.extend(0);
    }

    fn extend(&mut self, pos: usize) {
        if self.found >= self.limit {
            return;
        }
        if pos == self.order.len() {
            self.found += 1;
            if self.witness.is_none() {
                self.witness = Some(self.phi.clone());
            }
            return;
        }
        let u = self.order[pos];
        let du = self.pattern.degree(u);

        match self.anchor[pos] {
            Some(w) => {
                // Candidates: unmapped target neighbors of phi(w).
                let tw = self.phi[w] as usize;
                let cands: Vec<u32> = self.target.neighbors(tw).to_vec();
                for t in cands {
                    self.try_assign(pos, u, du, t as usize);
                    if self.found >= self.limit {
                        return;
                    }
                }
            }
            None => {
                // Pattern component root: any target vertex is a candidate.
                for t in 0..self.target.n() {
                    self.try_assign(pos, u, du, t);
                    if self.found >= self.limit {
                        return;
                    }
                }
            }
        }
    }

    fn try_assign(&mut self, pos: usize, u: usize, du: usize, t: usize) {
        if self.used[t] || self.target.degree(t) < du {
            return;
        }
        // Twin symmetry breaking: ascending images within each twin class.
        for &(v, must_precede) in &self.twin_order[u] {
            let img = self.phi[v];
            if img != UNMAPPED {
                let ok = if must_precede {
                    (img as usize) < t
                } else {
                    t < img as usize
                };
                if !ok {
                    return;
                }
            }
        }
        // Every already-mapped pattern neighbor of u must be adjacent to t.
        for &pu in self.pattern.neighbors(u) {
            let img = self.phi[pu as usize];
            if img != UNMAPPED && !self.target.has_edge(img as usize, t) {
                return;
            }
        }
        self.phi[u] = t as u32;
        self.used[t] = true;
        self.extend(pos + 1);
        self.phi[u] = UNMAPPED;
        self.used[t] = false;
    }
}

/// Computes a connectivity-driven matching order: vertices sorted so that
/// each (after the first of its component) has an already-ordered neighbor;
/// ties broken by descending degree. Returns `(order, anchor)` where
/// `anchor[i]` is an already-ordered pattern neighbor of `order[i]`, if any.
fn matching_order(pattern: &Graph) -> (Vec<usize>, Vec<Option<usize>>) {
    let n = pattern.n();
    let mut order = Vec::with_capacity(n);
    let mut anchor = Vec::with_capacity(n);
    let mut placed = vec![false; n];

    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(pattern.degree(v)));

    while order.len() < n {
        // Start a new component at the highest-degree unplaced vertex.
        let root = *by_degree.iter().find(|&&v| !placed[v]).unwrap();
        placed[root] = true;
        order.push(root);
        anchor.push(None);
        // Greedy: repeatedly add the unplaced vertex with the most placed
        // neighbors (most-constrained-first), restricted to this component.
        loop {
            let mut best: Option<(usize, usize, usize)> = None; // (v, placed_nbrs, deg)
            for &v in &by_degree {
                if placed[v] {
                    continue;
                }
                let pn = pattern
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| placed[w as usize])
                    .count();
                if pn == 0 {
                    continue;
                }
                let deg = pattern.degree(v);
                if best.is_none_or(|(_, bpn, bdeg)| (pn, deg) > (bpn, bdeg)) {
                    best = Some((v, pn, deg));
                }
            }
            match best {
                Some((v, _, _)) => {
                    placed[v] = true;
                    let a = pattern
                        .neighbors(v)
                        .iter()
                        .map(|&w| w as usize)
                        .find(|&w| placed[w] && order.contains(&w))
                        .expect("anchored vertex must have a placed neighbor");
                    order.push(v);
                    anchor.push(Some(a));
                }
                None => break, // component exhausted
            }
        }
    }
    (order, anchor)
}

/// Whether `target` contains `pattern` as a (not necessarily induced)
/// subgraph.
pub fn contains_subgraph(pattern: &Graph, target: &Graph) -> bool {
    find_subgraph(pattern, target).is_some()
}

/// Finds one embedding of `pattern` into `target`, as a map from pattern
/// vertex to target vertex.
pub fn find_subgraph(pattern: &Graph, target: &Graph) -> Option<Vec<u32>> {
    if pattern.n() == 0 {
        return Some(Vec::new());
    }
    if pattern.n() > target.n() || pattern.m() > target.m() {
        return None;
    }
    let mut m = Matcher::new(pattern, target, 1);
    m.run();
    m.witness
}

/// Counts embeddings of `pattern` into `target` (as vertex maps, i.e. each
/// subgraph copy is counted `|Aut(pattern)|` times), up to `cap`.
pub fn count_embeddings(pattern: &Graph, target: &Graph, cap: usize) -> usize {
    if pattern.n() == 0 {
        return 1.min(cap);
    }
    if pattern.n() > target.n() {
        return 0;
    }
    let mut m = Matcher::new(pattern, target, cap);
    m.run();
    m.found
}

/// Number of automorphisms of `g` (embeddings of `g` into itself).
pub fn automorphism_count(g: &Graph) -> usize {
    count_embeddings(g, g, usize::MAX)
}

/// Counts distinct *copies* of `pattern` in `target` (vertex-set +
/// edge-set copies): embeddings divided by the pattern's automorphism
/// count. Returns `None` if the embedding count hit `cap` (the quotient
/// would be a lower bound only).
pub fn count_copies(pattern: &Graph, target: &Graph, cap: usize) -> Option<usize> {
    let embeddings = count_embeddings(pattern, target, cap);
    if embeddings >= cap {
        return None;
    }
    let aut = automorphism_count(pattern).max(1);
    debug_assert_eq!(embeddings % aut, 0, "embeddings divide by |Aut|");
    Some(embeddings / aut)
}

/// Validates that `phi` is an embedding of `pattern` into `target`.
pub fn verify_embedding(pattern: &Graph, target: &Graph, phi: &[u32]) -> bool {
    if phi.len() != pattern.n() {
        return false;
    }
    let mut seen = vec![false; target.n()];
    for &t in phi {
        let t = t as usize;
        if t >= target.n() || seen[t] {
            return false;
        }
        seen[t] = true;
    }
    pattern
        .edges()
        .all(|(u, v)| target.has_edge(phi[u as usize] as usize, phi[v as usize] as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_in_clique() {
        let t = generators::cycle(3);
        let k = generators::clique(5);
        let phi = find_subgraph(&t, &k).expect("triangle must embed in K5");
        assert!(verify_embedding(&t, &k, &phi));
    }

    #[test]
    fn triangle_not_in_bipartite() {
        let t = generators::cycle(3);
        let b = generators::complete_bipartite(4, 4);
        assert!(!contains_subgraph(&t, &b));
    }

    #[test]
    fn c4_in_bipartite() {
        let c4 = generators::cycle(4);
        let b = generators::complete_bipartite(2, 2);
        assert!(contains_subgraph(&c4, &b));
    }

    #[test]
    fn c5_not_in_c6() {
        // Subgraph (non-induced) containment: C6 has no 5-cycle.
        assert!(!contains_subgraph(
            &generators::cycle(5),
            &generators::cycle(6)
        ));
    }

    #[test]
    fn path_in_cycle() {
        assert!(contains_subgraph(
            &generators::path(4),
            &generators::cycle(6)
        ));
    }

    #[test]
    fn larger_pattern_rejected_fast() {
        assert!(!contains_subgraph(
            &generators::clique(5),
            &generators::clique(4)
        ));
    }

    #[test]
    fn count_triangles_in_k4() {
        // K4 has 4 triangles, each counted 3! = 6 times as a map.
        let t = generators::cycle(3);
        let k4 = generators::clique(4);
        assert_eq!(count_embeddings(&t, &k4, usize::MAX), 24);
    }

    #[test]
    fn count_respects_cap() {
        let t = generators::cycle(3);
        let k = generators::clique(6);
        assert_eq!(count_embeddings(&t, &k, 5), 5);
    }

    #[test]
    fn disconnected_pattern() {
        // Two disjoint edges embed in a path of 4 vertices.
        let p = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let target = generators::path(4);
        assert!(contains_subgraph(&p, &target));
        // ... but not in a single edge plus isolated vertices.
        let tiny = Graph::from_edges(4, &[(0, 1)]);
        assert!(!contains_subgraph(&p, &tiny));
    }

    #[test]
    fn empty_pattern_always_embeds() {
        assert!(contains_subgraph(&Graph::empty(0), &generators::cycle(3)));
    }

    #[test]
    fn clique_in_dense_gnp() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let g = generators::gnp(40, 0.8, &mut rng);
        // K4 almost surely present at p=0.8, n=40.
        assert!(contains_subgraph(&generators::clique(4), &g));
    }

    #[test]
    fn automorphism_counts() {
        assert_eq!(automorphism_count(&generators::cycle(4)), 8); // dihedral
        assert_eq!(automorphism_count(&generators::clique(4)), 24);
        assert_eq!(automorphism_count(&generators::path(3)), 2);
        assert_eq!(automorphism_count(&generators::star(3)), 6);
    }

    #[test]
    fn copy_counts_match_dedicated_counters() {
        let k5 = generators::clique(5);
        // Triangles in K5: C(5,3) = 10.
        assert_eq!(
            count_copies(&generators::cycle(3), &k5, usize::MAX),
            Some(10)
        );
        // C4 copies in K4: 3.
        assert_eq!(
            count_copies(&generators::cycle(4), &generators::clique(4), usize::MAX),
            Some(3)
        );
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let g = generators::gnp(14, 0.35, &mut rng);
        assert_eq!(
            count_copies(&generators::cycle(3), &g, usize::MAX).unwrap() as u64,
            crate::cliques::count_triangles(&g)
        );
        assert_eq!(
            count_copies(&generators::cycle(5), &g, usize::MAX).unwrap() as u64,
            crate::cycles::count_cycles(&g, 5)
        );
    }

    #[test]
    fn twin_classes_of_clique_and_star() {
        // In K5 all vertices are mutually true twins: one class of 5.
        let classes = twin_classes(&generators::clique(5));
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 5);
        // In a star the leaves are false twins.
        let classes = twin_classes(&generators::star(4));
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0], vec![1, 2, 3, 4]);
        // A path of 4 has no twin pair... except none: endpoints have
        // different neighborhoods.
        assert!(twin_classes(&generators::path(4)).is_empty());
    }

    #[test]
    fn symmetry_breaking_preserves_existence() {
        // Clique-heavy pattern into a larger host: existence must agree
        // with counting (which does not use symmetry breaking).
        let pattern = generators::clique(4).disjoint_union(&generators::star(3));
        let mut host = generators::clique(6).disjoint_union(&generators::star(5));
        assert!(contains_subgraph(&pattern, &host));
        assert!(count_embeddings(&pattern, &host, 1) >= 1);
        host = generators::clique(3).disjoint_union(&generators::star(5));
        assert!(!contains_subgraph(&pattern, &host));
    }

    #[test]
    fn embedding_verifier_rejects_bad_maps() {
        let t = generators::cycle(3);
        let k = generators::clique(4);
        assert!(!verify_embedding(&t, &k, &[0, 0, 1])); // not injective
        assert!(!verify_embedding(&t, &k, &[0, 1])); // wrong length
        let b = generators::complete_bipartite(2, 2);
        assert!(!verify_embedding(&t, &b, &[0, 1, 2])); // non-edge 0-1
    }
}
