//! Exact cycle detection and counting (centralized ground truth for the
//! distributed detectors).

use crate::graph::Graph;
use rayon::prelude::*;

/// Whether `g` contains a simple cycle of length exactly `k` as a subgraph.
///
/// Enumerates simple paths rooted at their minimal vertex (canonical form),
/// so the work is `O(n * Δ^{k-1})` — intended for ground-truth checks on
/// experiment-sized graphs, not as the distributed algorithm.
pub fn has_cycle(g: &Graph, k: usize) -> bool {
    assert!(k >= 3, "cycles have length >= 3");
    (0..g.n())
        .into_par_iter()
        .any(|root| has_cycle_rooted(g, k, root))
}

fn has_cycle_rooted(g: &Graph, k: usize, root: usize) -> bool {
    // Path state kept on an explicit stack of (vertex, neighbor cursor).
    let mut path = vec![root];
    let mut on_path = vec![false; g.n()];
    on_path[root] = true;
    let mut cursors = vec![0usize];
    while let Some(&v) = path.last() {
        let cur = cursors.last_mut().unwrap();
        let nbrs = g.neighbors(v);
        if *cur >= nbrs.len() {
            path.pop();
            cursors.pop();
            on_path[v] = false;
            continue;
        }
        let w = nbrs[*cur] as usize;
        *cur += 1;
        if path.len() == k {
            // Path has k vertices; close the cycle back to the root.
            if w == root {
                return true;
            }
            continue;
        }
        // Canonical: all non-root vertices exceed the root; no revisits.
        if w <= root || on_path[w] {
            continue;
        }
        path.push(w);
        on_path[w] = true;
        cursors.push(0);
    }
    false
}

/// Counts simple cycles of length exactly `k` (each counted once as a
/// vertex set with its cyclic structure; i.e. `C_k` subgraph copies).
pub fn count_cycles(g: &Graph, k: usize) -> u64 {
    assert!(k >= 3);
    let total: u64 = (0..g.n())
        .into_par_iter()
        .map(|root| count_cycles_rooted(g, k, root))
        .sum();
    // Each cycle is rooted at its minimal vertex but traversed in both
    // directions.
    total / 2
}

fn count_cycles_rooted(g: &Graph, k: usize, root: usize) -> u64 {
    let mut count = 0u64;
    let mut path = vec![root];
    let mut on_path = vec![false; g.n()];
    on_path[root] = true;
    let mut cursors = vec![0usize];
    while let Some(&v) = path.last() {
        let cur = cursors.last_mut().unwrap();
        let nbrs = g.neighbors(v);
        if *cur >= nbrs.len() {
            path.pop();
            cursors.pop();
            on_path[v] = false;
            continue;
        }
        let w = nbrs[*cur] as usize;
        *cur += 1;
        if path.len() == k {
            if w == root {
                count += 1;
            }
            continue;
        }
        if w <= root || on_path[w] {
            continue;
        }
        path.push(w);
        on_path[w] = true;
        cursors.push(0);
    }
    count
}

/// Girth (length of a shortest cycle), or `None` for a forest.
///
/// Standard BFS-from-every-vertex bound; exact for the shortest cycle
/// through each vertex.
pub fn girth(g: &Graph) -> Option<usize> {
    (0..g.n())
        .into_par_iter()
        .filter_map(|src| girth_from(g, src))
        .min()
}

fn girth_from(g: &Graph, src: usize) -> Option<usize> {
    use std::collections::VecDeque;
    let mut dist = vec![usize::MAX; g.n()];
    let mut parent = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    let mut best: Option<usize> = None;
    while let Some(u) = queue.pop_front() {
        for &w in g.neighbors(u) {
            let w = w as usize;
            if dist[w] == usize::MAX {
                dist[w] = dist[u] + 1;
                parent[w] = u;
                queue.push_back(w);
            } else if parent[u] != w {
                // Non-tree edge closes a cycle through src of length
                // dist[u] + dist[w] + 1 (an upper bound that is tight for
                // some source, which suffices for the global minimum).
                let len = dist[u] + dist[w] + 1;
                if best.is_none_or(|b| len < b) {
                    best = Some(len);
                }
            }
        }
    }
    best
}

/// Whether `g` contains *any* even cycle `C_{2k}` for `2k <= max_len`.
pub fn has_even_cycle_up_to(g: &Graph, max_len: usize) -> bool {
    (4..=max_len).step_by(2).any(|k| has_cycle(g, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycle_contains_itself_only() {
        let g = generators::cycle(7);
        assert!(has_cycle(&g, 7));
        for k in 3..7 {
            assert!(!has_cycle(&g, k), "C7 has no C{k}");
        }
    }

    #[test]
    fn clique_cycle_spectrum() {
        let g = generators::clique(5);
        for k in 3..=5 {
            assert!(has_cycle(&g, k));
        }
        assert!(!has_cycle(&g, 6));
    }

    #[test]
    fn counting_known_values() {
        // K4: 3 four-cycles, 4 triangles.
        let k4 = generators::clique(4);
        assert_eq!(count_cycles(&k4, 3), 4);
        assert_eq!(count_cycles(&k4, 4), 3);
        // K_{2,3}: C4 count = C(2,2)*C(3,2) = 3.
        let b = generators::complete_bipartite(2, 3);
        assert_eq!(count_cycles(&b, 4), 3);
        assert_eq!(count_cycles(&b, 3), 0);
    }

    #[test]
    fn counting_matches_vf2() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let g = generators::gnp(16, 0.3, &mut rng);
        for k in 3..6 {
            let via_vf2 = crate::iso::count_embeddings(&generators::cycle(k), &g, usize::MAX);
            // Each C_k subgraph has 2k automorphisms as a map.
            assert_eq!(
                count_cycles(&g, k),
                via_vf2 as u64 / (2 * k as u64),
                "k={k}"
            );
        }
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&generators::cycle(9)), Some(9));
        assert_eq!(girth(&generators::clique(4)), Some(3));
        assert_eq!(girth(&generators::path(5)), None);
        assert_eq!(girth(&generators::complete_bipartite(3, 3)), Some(4));
        assert_eq!(girth(&generators::random_tree(10, &mut seeded())), None);
    }

    fn seeded() -> rand_chacha::ChaCha8Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn even_cycle_scan() {
        let g = generators::cycle(6);
        assert!(has_even_cycle_up_to(&g, 6));
        assert!(!has_even_cycle_up_to(&generators::cycle(5), 8));
    }

    #[test]
    fn planted_cycle_is_found() {
        let mut rng = seeded();
        let base = generators::gnp(40, 0.02, &mut rng);
        let (g, _) = generators::plant_cycle(&base, 6, &mut rng);
        assert!(has_cycle(&g, 6));
    }
}
