//! Graph generators for workloads and experiments.
//!
//! All randomized generators take an explicit [`Rng`] so that every
//! experiment in this workspace is reproducible from its seed.

use crate::graph::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// The cycle `C_n` on `n >= 3` vertices (`0-1-2-...-(n-1)-0`).
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n);
    }
    b.build()
}

/// The path `P_n` on `n` vertices (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// The star `K_{1,n}`: center 0 joined to leaves `1..=n`.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new(leaves + 1);
    for v in 1..=leaves {
        b.add_edge(0, v);
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`; side A is `0..a`, side B is `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            g.add_edge(u, v);
        }
    }
    g.build()
}

/// The complete multipartite graph with the given part sizes.
pub fn complete_multipartite(parts: &[usize]) -> Graph {
    let n: usize = parts.iter().sum();
    let mut b = GraphBuilder::new(n);
    let mut starts = Vec::with_capacity(parts.len() + 1);
    let mut acc = 0;
    for &p in parts {
        starts.push(acc);
        acc += p;
    }
    starts.push(acc);
    for i in 0..parts.len() {
        for j in (i + 1)..parts.len() {
            for u in starts[i]..starts[i + 1] {
                for v in starts[j]..starts[j + 1] {
                    b.add_edge(u, v);
                }
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each of the `C(n,2)` edges appears independently
/// with probability `p`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if p >= 1.0 {
        return clique(n);
    }
    if p > 0.0 {
        // Skip-sampling (geometric jumps) keeps this O(n + m) rather than O(n^2).
        let log1p = (1.0 - p).ln();
        let mut u = 1usize;
        let mut v: i64 = -1;
        while u < n {
            let r: f64 = rng.gen_range(0.0..1.0f64);
            let skip = ((1.0 - r).ln() / log1p).floor() as i64;
            v += 1 + skip.max(0);
            while v >= u as i64 && u < n {
                v -= u as i64;
                u += 1;
            }
            if u < n {
                b.add_edge(u, v as usize);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly.
///
/// # Panics
/// Panics if `m > C(n,2)`.
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n * (n.saturating_sub(1)) / 2;
    assert!(m <= max, "too many edges requested");
    let mut b = GraphBuilder::new(n);
    let mut chosen = crate::hash::FxHashSet::default();
    while chosen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Random bipartite graph: sides `0..a` and `a..a+b`, each cross edge with
/// probability `p`.
pub fn random_bipartite<R: Rng>(a: usize, b: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g.build()
}

/// Uniform random labeled tree on `n` vertices (Prüfer sequence decode).
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(n);
    if n <= 1 {
        return b.build();
    }
    if n == 2 {
        b.add_edge(0, 1);
        return b.build();
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    // Standard Prüfer decoding with a pointer + leaf variable.
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &v in &prufer {
        b.add_edge(leaf, v);
        degree[v] -= 1;
        if degree[v] == 1 && v < ptr {
            leaf = v;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    b.add_edge(leaf, n - 1);
    b.build()
}

/// Barabási–Albert-style preferential attachment: starts from a clique on
/// `m0 = attach` vertices, then each new vertex attaches to `attach` existing
/// vertices sampled proportionally to degree. Produces heavy-tailed degrees
/// (a "social network"-shaped workload).
pub fn preferential_attachment<R: Rng>(n: usize, attach: usize, rng: &mut R) -> Graph {
    assert!(attach >= 1 && n > attach);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is degree-biased.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n * attach);
    for u in 0..attach {
        for v in (u + 1)..attach.max(2) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in attach.max(2)..n {
        let mut targets = crate::hash::FxHashSet::default();
        while targets.len() < attach.min(v) {
            let t = if endpoints.is_empty() || rng.gen_bool(0.1) {
                rng.gen_range(0..v)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            targets.insert(t);
        }
        for &t in &targets {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Plants a (vertex-disjoint-from-nothing) copy of `C_len` on `len` random
/// distinct vertices of `g`, returning the new graph and the planted cycle's
/// vertices in cycle order.
pub fn plant_cycle<R: Rng>(g: &Graph, len: usize, rng: &mut R) -> (Graph, Vec<usize>) {
    assert!(len >= 3 && len <= g.n(), "cycle length out of range");
    let mut verts: Vec<usize> = (0..g.n()).collect();
    verts.shuffle(rng);
    verts.truncate(len);
    let mut b = GraphBuilder::new(g.n());
    for (u, v) in g.edges() {
        b.add_edge(u as usize, v as usize);
    }
    for i in 0..len {
        b.add_edge(verts[i], verts[(i + 1) % len]);
    }
    (b.build(), verts)
}

/// A graph made of `copies` disjoint copies of `g`.
pub fn disjoint_copies(g: &Graph, copies: usize) -> Graph {
    let mut out = Graph::empty(0);
    for _ in 0..copies {
        out = out.disjoint_union(g);
    }
    out
}

/// A random `d`-regular-ish graph via the configuration model (multi-edges
/// and loops dropped, so degrees are at most `d`).
pub fn configuration_model<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]);
        }
    }
    b.build()
}

/// Streaming bounded-degree random graph at n = 10^5..10^6 scale.
///
/// Overlays `d / 2` independent random Hamiltonian-ring passes, so every
/// vertex ends with degree at most `d` (duplicate edges across passes are
/// merged, so degrees can be slightly lower). The CSR arrays are built
/// directly by replaying the same RNG stream twice — a counting pass on a
/// clone of `rng` sizes every row, then the fill pass writes neighbors in
/// place — so no intermediate `Vec<(usize, usize)>` edge list is ever
/// materialized and peak memory stays O(n · d).
pub fn bounded_degree<R: Rng + Clone>(n: usize, d: usize, rng: &mut R) -> Graph {
    streaming_ring_graph(n, d, &[], rng)
}

/// Streaming planted-C_{2k} instance at bounded degree: a [`bounded_degree`]
/// background graph with a 2k-cycle planted on 2k random distinct vertices,
/// returned in cycle order. Peak memory stays O(n · d); see
/// [`bounded_degree`] for the two-pass CSR construction.
pub fn planted_c2k<R: Rng + Clone>(n: usize, d: usize, k: usize, rng: &mut R) -> (Graph, Vec<u32>) {
    assert!(k >= 2, "C_{{2k}} needs k >= 2 to be a simple cycle");
    let len = 2 * k;
    assert!(len <= n, "cannot plant a {len}-cycle in {n} vertices");
    // Partial Fisher–Yates: 2k distinct vertices, uniform over subsets.
    let mut pool: Vec<u32> = (0..n as u32).collect();
    for i in 0..len {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    let verts: Vec<u32> = pool[..len].to_vec();
    drop(pool);
    let planted: Vec<(u32, u32)> = (0..len).map(|i| (verts[i], verts[(i + 1) % len])).collect();
    (streaming_ring_graph(n, d, &planted, rng), verts)
}

/// Shared two-pass CSR construction for the streaming generators: `planted`
/// edges plus `d / 2` random ring passes, counted on a cloned RNG stream and
/// then filled from the original, per-row sorted/deduped/compacted, handed to
/// [`Graph::from_csr`] without ever holding an edge tuple list.
fn streaming_ring_graph<R: Rng + Clone>(
    n: usize,
    d: usize,
    planted: &[(u32, u32)],
    rng: &mut R,
) -> Graph {
    let rounds = if n >= 2 { d / 2 } else { 0 };
    let mut deg = vec![0u32; n];
    for &(u, v) in planted {
        assert!(u != v, "planted self-loop");
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let mut perm: Vec<u32> = (0..n as u32).collect();
    {
        // Counting pass: replays the exact shuffle sequence the fill pass
        // will draw from `rng`, so the row sizes match stub-for-stub.
        let mut counter = rng.clone();
        for _ in 0..rounds {
            perm.shuffle(&mut counter);
            for i in 0..n {
                deg[perm[i] as usize] += 1;
                deg[perm[(i + 1) % n] as usize] += 1;
            }
        }
    }
    let total: u64 = deg.iter().map(|&x| u64::from(x)).sum();
    assert!(
        total <= u64::from(u32::MAX),
        "graph too large for the u32 CSR index: {total} directed edges"
    );
    let mut offsets = vec![0u32; n + 1];
    let mut acc = 0u32;
    for v in 0..n {
        offsets[v] = acc;
        acc += deg[v];
    }
    offsets[n] = acc;
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut neighbors = vec![0u32; total as usize];
    let stub = |u: u32, v: u32, neighbors: &mut [u32], cursor: &mut [u32]| {
        neighbors[cursor[u as usize] as usize] = v;
        cursor[u as usize] += 1;
        neighbors[cursor[v as usize] as usize] = u;
        cursor[v as usize] += 1;
    };
    for &(u, v) in planted {
        stub(u, v, &mut neighbors, &mut cursor);
    }
    perm.clear();
    perm.extend(0..n as u32);
    for _ in 0..rounds {
        perm.shuffle(rng);
        for i in 0..n {
            stub(perm[i], perm[(i + 1) % n], &mut neighbors, &mut cursor);
        }
    }
    // Per-row sort + dedup + in-place compaction. Duplicates are symmetric
    // (both endpoints carry the same multiplicity), so dropping repeats on
    // each side independently keeps the adjacency symmetric.
    let mut final_offsets = vec![0u32; n + 1];
    let mut out = 0usize;
    for v in 0..n {
        let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
        neighbors[start..end].sort_unstable();
        final_offsets[v] = out as u32;
        let mut prev = u32::MAX;
        for i in start..end {
            let w = neighbors[i];
            if w != prev {
                neighbors[out] = w;
                out += 1;
                prev = w;
            }
        }
    }
    final_offsets[n] = out as u32;
    neighbors.truncate(out);
    Graph::from_csr(final_offsets, neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn clique_edge_count() {
        let g = clique(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.min_degree(), 5);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.m(), 7);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn multipartite_matches_bipartite() {
        let a = complete_multipartite(&[3, 4]);
        let b = complete_bipartite(3, 4);
        assert_eq!(a.m(), b.m());
        assert_eq!(a.degree_sequence(), b.degree_sequence());
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng();
        assert_eq!(gnp(10, 0.0, &mut r).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut r).m(), 45);
    }

    #[test]
    fn gnp_density_is_plausible() {
        let mut r = rng();
        let g = gnp(200, 0.1, &mut r);
        let expected = 0.1 * (200.0 * 199.0 / 2.0);
        let m = g.m() as f64;
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "m={m} expected~{expected}"
        );
    }

    #[test]
    fn gnm_exact_count() {
        let mut r = rng();
        let g = gnm(50, 100, &mut r);
        assert_eq!(g.m(), 100);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut r = rng();
        for n in [1usize, 2, 3, 10, 57] {
            let t = random_tree(n, &mut r);
            assert_eq!(t.m(), n.saturating_sub(1), "n={n}");
            if n > 0 {
                assert_eq!(crate::components::connected_components(&t).count, 1);
            }
        }
    }

    #[test]
    fn preferential_attachment_degrees() {
        let mut r = rng();
        let g = preferential_attachment(300, 3, &mut r);
        assert_eq!(g.n(), 300);
        assert!(g.max_degree() > 10, "expected a hub to emerge");
    }

    #[test]
    fn plant_cycle_plants() {
        let mut r = rng();
        let base = Graph::empty(20);
        let (g, verts) = plant_cycle(&base, 6, &mut r);
        assert_eq!(g.m(), 6);
        for i in 0..6 {
            assert!(g.has_edge(verts[i], verts[(i + 1) % 6]));
        }
    }

    #[test]
    fn disjoint_copies_count() {
        let g = disjoint_copies(&cycle(3), 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 12);
    }

    #[test]
    fn configuration_model_bounded_degree() {
        let mut r = rng();
        let g = configuration_model(100, 4, &mut r);
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn bounded_degree_respects_cap_and_is_deterministic() {
        let g = bounded_degree(500, 6, &mut rng());
        assert_eq!(g.n(), 500);
        assert!(g.max_degree() <= 6, "max degree {}", g.max_degree());
        // Every ring pass gives each vertex two distinct neighbors, so
        // dedup never drops a vertex below degree 2.
        assert!(g.min_degree() >= 2, "min degree {}", g.min_degree());
        assert_eq!(g, bounded_degree(500, 6, &mut rng()));
    }

    #[test]
    fn bounded_degree_small_and_degenerate_inputs() {
        assert_eq!(bounded_degree(0, 4, &mut rng()).n(), 0);
        assert_eq!(bounded_degree(1, 4, &mut rng()).m(), 0);
        let pair = bounded_degree(2, 4, &mut rng());
        assert_eq!(pair.m(), 1);
        let g = bounded_degree(3, 0, &mut rng());
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn planted_c2k_contains_the_cycle() {
        let mut r = rng();
        let (g, verts) = planted_c2k(400, 4, 3, &mut r);
        assert_eq!(verts.len(), 6);
        let mut sorted = verts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "planted vertices must be distinct");
        for i in 0..6 {
            assert!(g.has_edge(verts[i] as usize, verts[(i + 1) % 6] as usize));
        }
        // Background cap plus at most two planted-cycle edges per vertex.
        assert!(g.max_degree() <= 4 + 2, "max degree {}", g.max_degree());
    }

    #[test]
    fn streaming_generators_match_at_moderate_scale() {
        // Large enough to exercise the compaction path with real duplicate
        // collisions, small enough for a unit test.
        let (g, verts) = planted_c2k(20_000, 4, 2, &mut rng());
        assert_eq!(g.n(), 20_000);
        assert!(g.m() >= 20_000, "two ring passes should survive dedup");
        for i in 0..4 {
            assert!(g.has_edge(verts[i] as usize, verts[(i + 1) % 4] as usize));
        }
    }
}
