//! Graph generators for workloads and experiments.
//!
//! All randomized generators take an explicit [`Rng`] so that every
//! experiment in this workspace is reproducible from its seed.

use crate::graph::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// The cycle `C_n` on `n >= 3` vertices (`0-1-2-...-(n-1)-0`).
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n);
    }
    b.build()
}

/// The path `P_n` on `n` vertices (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// The star `K_{1,n}`: center 0 joined to leaves `1..=n`.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new(leaves + 1);
    for v in 1..=leaves {
        b.add_edge(0, v);
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`; side A is `0..a`, side B is `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            g.add_edge(u, v);
        }
    }
    g.build()
}

/// The complete multipartite graph with the given part sizes.
pub fn complete_multipartite(parts: &[usize]) -> Graph {
    let n: usize = parts.iter().sum();
    let mut b = GraphBuilder::new(n);
    let mut starts = Vec::with_capacity(parts.len() + 1);
    let mut acc = 0;
    for &p in parts {
        starts.push(acc);
        acc += p;
    }
    starts.push(acc);
    for i in 0..parts.len() {
        for j in (i + 1)..parts.len() {
            for u in starts[i]..starts[i + 1] {
                for v in starts[j]..starts[j + 1] {
                    b.add_edge(u, v);
                }
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each of the `C(n,2)` edges appears independently
/// with probability `p`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if p >= 1.0 {
        return clique(n);
    }
    if p > 0.0 {
        // Skip-sampling (geometric jumps) keeps this O(n + m) rather than O(n^2).
        let log1p = (1.0 - p).ln();
        let mut u = 1usize;
        let mut v: i64 = -1;
        while u < n {
            let r: f64 = rng.gen_range(0.0..1.0f64);
            let skip = ((1.0 - r).ln() / log1p).floor() as i64;
            v += 1 + skip.max(0);
            while v >= u as i64 && u < n {
                v -= u as i64;
                u += 1;
            }
            if u < n {
                b.add_edge(u, v as usize);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly.
///
/// # Panics
/// Panics if `m > C(n,2)`.
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n * (n.saturating_sub(1)) / 2;
    assert!(m <= max, "too many edges requested");
    let mut b = GraphBuilder::new(n);
    let mut chosen = crate::hash::FxHashSet::default();
    while chosen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Random bipartite graph: sides `0..a` and `a..a+b`, each cross edge with
/// probability `p`.
pub fn random_bipartite<R: Rng>(a: usize, b: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g.build()
}

/// Uniform random labeled tree on `n` vertices (Prüfer sequence decode).
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(n);
    if n <= 1 {
        return b.build();
    }
    if n == 2 {
        b.add_edge(0, 1);
        return b.build();
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    // Standard Prüfer decoding with a pointer + leaf variable.
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &v in &prufer {
        b.add_edge(leaf, v);
        degree[v] -= 1;
        if degree[v] == 1 && v < ptr {
            leaf = v;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    b.add_edge(leaf, n - 1);
    b.build()
}

/// Barabási–Albert-style preferential attachment: starts from a clique on
/// `m0 = attach` vertices, then each new vertex attaches to `attach` existing
/// vertices sampled proportionally to degree. Produces heavy-tailed degrees
/// (a "social network"-shaped workload).
pub fn preferential_attachment<R: Rng>(n: usize, attach: usize, rng: &mut R) -> Graph {
    assert!(attach >= 1 && n > attach);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is degree-biased.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n * attach);
    for u in 0..attach {
        for v in (u + 1)..attach.max(2) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in attach.max(2)..n {
        let mut targets = crate::hash::FxHashSet::default();
        while targets.len() < attach.min(v) {
            let t = if endpoints.is_empty() || rng.gen_bool(0.1) {
                rng.gen_range(0..v)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            targets.insert(t);
        }
        for &t in &targets {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Plants a (vertex-disjoint-from-nothing) copy of `C_len` on `len` random
/// distinct vertices of `g`, returning the new graph and the planted cycle's
/// vertices in cycle order.
pub fn plant_cycle<R: Rng>(g: &Graph, len: usize, rng: &mut R) -> (Graph, Vec<usize>) {
    assert!(len >= 3 && len <= g.n(), "cycle length out of range");
    let mut verts: Vec<usize> = (0..g.n()).collect();
    verts.shuffle(rng);
    verts.truncate(len);
    let mut b = GraphBuilder::new(g.n());
    for (u, v) in g.edges() {
        b.add_edge(u as usize, v as usize);
    }
    for i in 0..len {
        b.add_edge(verts[i], verts[(i + 1) % len]);
    }
    (b.build(), verts)
}

/// A graph made of `copies` disjoint copies of `g`.
pub fn disjoint_copies(g: &Graph, copies: usize) -> Graph {
    let mut out = Graph::empty(0);
    for _ in 0..copies {
        out = out.disjoint_union(g);
    }
    out
}

/// A random `d`-regular-ish graph via the configuration model (multi-edges
/// and loops dropped, so degrees are at most `d`).
pub fn configuration_model<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn clique_edge_count() {
        let g = clique(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.min_degree(), 5);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.m(), 7);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn multipartite_matches_bipartite() {
        let a = complete_multipartite(&[3, 4]);
        let b = complete_bipartite(3, 4);
        assert_eq!(a.m(), b.m());
        assert_eq!(a.degree_sequence(), b.degree_sequence());
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng();
        assert_eq!(gnp(10, 0.0, &mut r).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut r).m(), 45);
    }

    #[test]
    fn gnp_density_is_plausible() {
        let mut r = rng();
        let g = gnp(200, 0.1, &mut r);
        let expected = 0.1 * (200.0 * 199.0 / 2.0);
        let m = g.m() as f64;
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "m={m} expected~{expected}"
        );
    }

    #[test]
    fn gnm_exact_count() {
        let mut r = rng();
        let g = gnm(50, 100, &mut r);
        assert_eq!(g.m(), 100);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut r = rng();
        for n in [1usize, 2, 3, 10, 57] {
            let t = random_tree(n, &mut r);
            assert_eq!(t.m(), n.saturating_sub(1), "n={n}");
            if n > 0 {
                assert_eq!(crate::components::connected_components(&t).count, 1);
            }
        }
    }

    #[test]
    fn preferential_attachment_degrees() {
        let mut r = rng();
        let g = preferential_attachment(300, 3, &mut r);
        assert_eq!(g.n(), 300);
        assert!(g.max_degree() > 10, "expected a hub to emerge");
    }

    #[test]
    fn plant_cycle_plants() {
        let mut r = rng();
        let base = Graph::empty(20);
        let (g, verts) = plant_cycle(&base, 6, &mut r);
        assert_eq!(g.m(), 6);
        for i in 0..6 {
            assert!(g.has_edge(verts[i], verts[(i + 1) % 6]));
        }
    }

    #[test]
    fn disjoint_copies_count() {
        let g = disjoint_copies(&cycle(3), 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 12);
    }

    #[test]
    fn configuration_model_bounded_degree() {
        let mut r = rng();
        let g = configuration_model(100, 4, &mut r);
        assert!(g.max_degree() <= 4);
    }
}
