//! Clique enumeration and counting.
//!
//! `K_s` copies are enumerated over a degeneracy ordering: each clique is
//! produced exactly once, rooted at its ordering-minimal vertex whose later
//! neighborhood contains the rest. This is the machinery behind the
//! Lemma 1.3 experiments (`#K_s <= O(m^{s/2})`).

use crate::bitset::{self, AdjacencyBitset};
use crate::graph::Graph;

/// Degeneracy ordering: repeatedly removes a minimum-degree vertex.
/// Returns `(order, degeneracy)`.
pub fn degeneracy_ordering(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let maxd = g.max_degree();
    // Bucket queue over current degrees.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); maxd + 1];
    for v in 0..n {
        buckets[deg[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket with a live vertex.
        cursor = cursor.min(maxd);
        let v = loop {
            // Entries can be stale (vertex removed or degree changed); skip them.
            if let Some(&cand) = buckets[cursor].last() {
                if removed[cand] || deg[cand] != cursor {
                    buckets[cursor].pop();
                    continue;
                }
                buckets[cursor].pop();
                break cand;
            }
            cursor += 1;
        };
        removed[v] = true;
        degeneracy = degeneracy.max(cursor);
        order.push(v);
        for &w in g.neighbors(v) {
            let w = w as usize;
            if !removed[w] {
                deg[w] -= 1;
                buckets[deg[w]].push(w);
                if deg[w] < cursor {
                    cursor = deg[w];
                }
            }
        }
    }
    (order, degeneracy)
}

/// Counts copies of `K_s` (unordered vertex sets forming a clique).
///
/// Runs in `O(m * d^{s-2})` where `d` is the degeneracy.
pub fn count_ksub(g: &Graph, s: usize) -> u64 {
    if s == 0 {
        return 1;
    }
    if s == 1 {
        return g.n() as u64;
    }
    if s == 2 {
        return g.m() as u64;
    }
    let (order, _) = degeneracy_ordering(g);
    let mut rank = vec![0usize; g.n()];
    for (i, &v) in order.iter().enumerate() {
        rank[v] = i;
    }
    let mut total = 0u64;
    let mut later: Vec<u32> = Vec::new();
    let packed = g.packed_adjacency();
    let mut scratch = packed_scratch(packed, s);
    for &v in &order {
        later.clear();
        later.extend(
            g.neighbors(v)
                .iter()
                .copied()
                .filter(|&w| rank[w as usize] > rank[v]),
        );
        if let Some(b) = packed {
            let (root, rest) = scratch.split_first_mut().unwrap();
            root.fill(0);
            bitset::pack_into(root, &later);
            total += count_cliques_within_packed(b, root, s - 1, rest);
        } else {
            total += count_cliques_within(g, &later, s - 1);
        }
    }
    total
}

/// Per-depth word buffers for the packed clique recursion: one row for the
/// root candidate set plus one per recursion level.
fn packed_scratch(packed: Option<&AdjacencyBitset>, s: usize) -> Vec<Vec<u64>> {
    match packed {
        Some(b) => vec![vec![0u64; b.words_per_row()]; s + 1],
        None => Vec::new(),
    }
}

/// Packed twin of [`count_cliques_within`]: candidate sets are adjacency-row
///-width bitsets and the inner filter is `cands ∧ adj(v) ∧ {w > v}`, one AND
/// per word. Visit order (ascending) and pruning mirror the sparse path
/// exactly, so both produce identical counts.
fn count_cliques_within_packed(
    b: &AdjacencyBitset,
    cands: &[u64],
    s: usize,
    scratch: &mut [Vec<u64>],
) -> u64 {
    if s == 0 {
        return 1;
    }
    if s == 1 {
        return bitset::count_ones(cands) as u64;
    }
    let (cur, rest) = scratch.split_first_mut().unwrap();
    let mut total = 0u64;
    for v in bitset::ones(cands) {
        bitset::and_above_into(cur, cands, b.row(v), v);
        if bitset::count_ones(cur) + 1 >= s {
            total += count_cliques_within_packed(b, cur, s - 1, rest);
        }
    }
    total
}

/// Counts cliques of size `s` inside the candidate set `cands`
/// (all of which are assumed adjacent to an implicit root).
fn count_cliques_within(g: &Graph, cands: &[u32], s: usize) -> u64 {
    if s == 0 {
        return 1;
    }
    if s == 1 {
        return cands.len() as u64;
    }
    let mut total = 0u64;
    for (i, &v) in cands.iter().enumerate() {
        let rest: Vec<u32> = cands[i + 1..]
            .iter()
            .copied()
            .filter(|&w| g.has_edge(v as usize, w as usize))
            .collect();
        if rest.len() + 1 >= s {
            total += count_cliques_within(g, &rest, s - 1);
        }
    }
    total
}

/// Lists all copies of `K_s`, each as a sorted vertex set, up to `cap` copies.
pub fn list_ksub(g: &Graph, s: usize, cap: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    if s == 0 || cap == 0 {
        return out;
    }
    if s == 1 {
        for v in 0..g.n().min(cap) {
            out.push(vec![v as u32]);
        }
        return out;
    }
    let (order, _) = degeneracy_ordering(g);
    let mut rank = vec![0usize; g.n()];
    for (i, &v) in order.iter().enumerate() {
        rank[v] = i;
    }
    let mut prefix = Vec::with_capacity(s);
    let packed = g.packed_adjacency();
    let mut scratch = packed_scratch(packed, s);
    let mut later: Vec<u32> = Vec::new();
    for &v in &order {
        later.clear();
        later.extend(
            g.neighbors(v)
                .iter()
                .copied()
                .filter(|&w| rank[w as usize] > rank[v]),
        );
        prefix.clear();
        prefix.push(v as u32);
        if let Some(b) = packed {
            let (root, rest) = scratch.split_first_mut().unwrap();
            root.fill(0);
            bitset::pack_into(root, &later);
            list_rec_packed(b, root, s - 1, &mut prefix, &mut out, cap, rest);
        } else {
            list_rec(g, &later, s - 1, &mut prefix, &mut out, cap);
        }
        if out.len() >= cap {
            break;
        }
    }
    out
}

fn list_rec(
    g: &Graph,
    cands: &[u32],
    s: usize,
    prefix: &mut Vec<u32>,
    out: &mut Vec<Vec<u32>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    if s == 0 {
        let mut clique = prefix.clone();
        clique.sort_unstable();
        out.push(clique);
        return;
    }
    for (i, &v) in cands.iter().enumerate() {
        if cands.len() - i < s {
            break;
        }
        let rest: Vec<u32> = cands[i + 1..]
            .iter()
            .copied()
            .filter(|&w| g.has_edge(v as usize, w as usize))
            .collect();
        prefix.push(v);
        list_rec(g, &rest, s - 1, prefix, out, cap);
        prefix.pop();
        if out.len() >= cap {
            return;
        }
    }
}

/// Packed twin of [`list_rec`]. Candidates are visited in ascending order
/// (bit order == sorted slice order) and the `remaining < s` cutoff matches
/// the sparse `cands.len() - i < s` break, so the listing — including cap
/// truncation — is element-for-element identical to the sparse path.
#[allow(clippy::too_many_arguments)]
fn list_rec_packed(
    b: &AdjacencyBitset,
    cands: &[u64],
    s: usize,
    prefix: &mut Vec<u32>,
    out: &mut Vec<Vec<u32>>,
    cap: usize,
    scratch: &mut [Vec<u64>],
) {
    if out.len() >= cap {
        return;
    }
    if s == 0 {
        let mut clique = prefix.clone();
        clique.sort_unstable();
        out.push(clique);
        return;
    }
    let mut remaining = bitset::count_ones(cands);
    let (cur, rest) = scratch.split_first_mut().unwrap();
    for v in bitset::ones(cands) {
        if remaining < s {
            break;
        }
        remaining -= 1;
        bitset::and_above_into(cur, cands, b.row(v), v);
        prefix.push(v as u32);
        list_rec_packed(b, cur, s - 1, prefix, out, cap, rest);
        prefix.pop();
        if out.len() >= cap {
            return;
        }
    }
}

/// Counts triangles (`K_3`) — a fast special case used everywhere.
pub fn count_triangles(g: &Graph) -> u64 {
    count_ksub(g, 3)
}

/// The maximum clique size (clique number), by trying sizes upward.
pub fn clique_number(g: &Graph) -> usize {
    let (_, d) = degeneracy_ordering(g);
    let mut best = if g.n() == 0 { 0 } else { 1 };
    // Clique number is at most degeneracy + 1.
    for s in 2..=(d + 1) {
        if count_ksub_exists(g, s) {
            best = s;
        } else {
            break;
        }
    }
    best
}

fn count_ksub_exists(g: &Graph, s: usize) -> bool {
    !list_ksub(g, s, 1).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// n choose k as u64.
    fn binom(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn triangles_in_cliques() {
        for n in 3..8 {
            let g = generators::clique(n);
            assert_eq!(count_triangles(&g), binom(n as u64, 3), "n={n}");
        }
    }

    #[test]
    fn k4_counts() {
        assert_eq!(count_ksub(&generators::clique(6), 4), binom(6, 4));
        assert_eq!(count_ksub(&generators::cycle(6), 4), 0);
    }

    #[test]
    fn trivial_sizes() {
        let g = generators::cycle(5);
        assert_eq!(count_ksub(&g, 0), 1);
        assert_eq!(count_ksub(&g, 1), 5);
        assert_eq!(count_ksub(&g, 2), 5);
    }

    #[test]
    fn bipartite_is_triangle_free() {
        let g = generators::complete_bipartite(5, 5);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn listing_matches_counting() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let g = generators::gnp(30, 0.4, &mut rng);
        for s in 3..6 {
            let listed = list_ksub(&g, s, usize::MAX);
            assert_eq!(listed.len() as u64, count_ksub(&g, s), "s={s}");
            // Each listed set is a genuine clique, and all are distinct.
            let mut seen = std::collections::HashSet::new();
            for c in &listed {
                assert_eq!(c.len(), s);
                for i in 0..s {
                    for j in (i + 1)..s {
                        assert!(g.has_edge(c[i] as usize, c[j] as usize));
                    }
                }
                assert!(seen.insert(c.clone()), "duplicate clique listed");
            }
        }
    }

    #[test]
    fn packed_path_matches_sparse_on_dense_graph() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let g = generators::gnp(64, 0.5, &mut rng);
        assert!(
            g.packed_adjacency().is_some(),
            "test graph must take the packed path"
        );
        let (order, _) = degeneracy_ordering(&g);
        let mut rank = vec![0usize; g.n()];
        for (i, &v) in order.iter().enumerate() {
            rank[v] = i;
        }
        for s in 3..6 {
            // Sparse referee: drive the slice-based recursion directly so
            // the comparison does not depend on the dispatch in
            // count_ksub/list_ksub.
            let mut expected_count = 0u64;
            let mut expected_list = Vec::new();
            let mut prefix = Vec::new();
            for &v in &order {
                let later: Vec<u32> = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| rank[w as usize] > rank[v])
                    .collect();
                expected_count += count_cliques_within(&g, &later, s - 1);
                prefix.clear();
                prefix.push(v as u32);
                list_rec(
                    &g,
                    &later,
                    s - 1,
                    &mut prefix,
                    &mut expected_list,
                    usize::MAX,
                );
            }
            assert_eq!(count_ksub(&g, s), expected_count, "s={s}");
            // Exact element-for-element order, not just the multiset.
            assert_eq!(list_ksub(&g, s, usize::MAX), expected_list, "s={s}");
            // Cap truncation must cut at the same point.
            let cap = (expected_list.len() / 2).max(1);
            expected_list.truncate(cap);
            assert_eq!(list_ksub(&g, s, cap), expected_list, "s={s} capped");
        }
    }

    #[test]
    fn listing_cap() {
        let g = generators::clique(10);
        assert_eq!(list_ksub(&g, 3, 7).len(), 7);
    }

    #[test]
    fn degeneracy_values() {
        assert_eq!(degeneracy_ordering(&generators::clique(5)).1, 4);
        assert_eq!(degeneracy_ordering(&generators::cycle(9)).1, 2);
        assert_eq!(degeneracy_ordering(&generators::path(9)).1, 1);
        assert_eq!(degeneracy_ordering(&generators::star(5)).1, 1);
    }

    #[test]
    fn clique_number_values() {
        assert_eq!(clique_number(&generators::clique(6)), 6);
        assert_eq!(clique_number(&generators::cycle(5)), 2);
        assert_eq!(clique_number(&generators::complete_bipartite(3, 3)), 2);
        assert_eq!(clique_number(&Graph::empty(3)), 1);
        assert_eq!(clique_number(&Graph::empty(0)), 0);
    }

    use crate::graph::Graph;
}
