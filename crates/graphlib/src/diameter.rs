//! Exact diameter (all-pairs via repeated BFS, rayon-parallel).

use crate::bfs;
use crate::graph::Graph;
use rayon::prelude::*;

/// Exact diameter of a *connected* graph: the maximum eccentricity.
///
/// Returns `None` when the graph is disconnected or empty (the diameter is
/// then conventionally infinite / undefined).
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.n() == 0 {
        return None;
    }
    let eccs: Vec<Option<usize>> = (0..g.n())
        .into_par_iter()
        .map(|v| {
            let d = bfs::distances(g, v);
            if d.contains(&bfs::UNREACHABLE) {
                None
            } else {
                d.into_iter().max()
            }
        })
        .collect();
    eccs.into_iter()
        .collect::<Option<Vec<_>>>()?
        .into_iter()
        .max()
}

/// Radius of a connected graph: the minimum eccentricity. `None` if
/// disconnected or empty.
pub fn radius(g: &Graph) -> Option<usize> {
    if g.n() == 0 {
        return None;
    }
    let eccs: Vec<Option<usize>> = (0..g.n())
        .into_par_iter()
        .map(|v| {
            let d = bfs::distances(g, v);
            if d.contains(&bfs::UNREACHABLE) {
                None
            } else {
                d.into_iter().max()
            }
        })
        .collect();
    eccs.into_iter()
        .collect::<Option<Vec<_>>>()?
        .into_iter()
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_diameter() {
        assert_eq!(diameter(&generators::path(6)), Some(5));
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::cycle(9)), Some(4));
    }

    #[test]
    fn clique_diameter() {
        assert_eq!(diameter(&generators::clique(5)), Some(1));
        assert_eq!(radius(&generators::clique(5)), Some(1));
    }

    #[test]
    fn disconnected_is_none() {
        let g = generators::disjoint_copies(&generators::cycle(3), 2);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn star_radius() {
        let g = generators::star(6);
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(radius(&g), Some(1));
    }
}
