//! # graphlib — graph substrate for the SPAA'18 subgraph-detection reproduction
//!
//! Centralized (non-distributed) graph machinery that everything else builds
//! on: a compact CSR [`graph::Graph`], generators, BFS/diameter, subgraph
//! isomorphism ([`iso`]), clique enumeration ([`cliques`]), exact cycle
//! detection ([`cycles`]), the even-cycle Turán bound ([`turan`]), the
//! Phase-II layer decomposition ([`decomposition`]), and the k-subset
//! encoding of §3.2 ([`combinatorics`]).

#![warn(missing_docs)]

pub mod atlas;
pub mod bfs;
pub mod bitset;
pub mod cliques;
pub mod combinatorics;
pub mod components;
pub mod cycles;
pub mod decomposition;
pub mod diameter;
pub mod generators;
pub mod graph;
pub mod hash;
pub mod io;
pub mod iso;
pub mod turan;
pub mod ullmann;

pub use graph::{Graph, GraphBuilder, VertexId};
pub use hash::{FxHashMap, FxHashSet};
