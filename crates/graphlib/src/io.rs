//! Plain-text graph I/O.
//!
//! The format is the common whitespace edge-list: an optional header line
//! `n <vertices>`, then one `u v` pair per line; `#`-prefixed lines are
//! comments. Round-trips exactly through [`to_edge_list`] /
//! [`from_edge_list`].

use crate::graph::{Graph, GraphBuilder};
use std::fmt;

/// Errors from parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not contain exactly two integers (or a valid header).
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// An endpoint was at least the declared vertex count.
    VertexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending vertex.
        vertex: usize,
        /// The declared vertex count.
        n: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: cannot parse '{content}'")
            }
            ParseError::VertexOutOfRange { line, vertex, n } => {
                write!(f, "line {line}: vertex {vertex} out of range (n = {n})")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses an edge-list document. Without an `n` header, the vertex count
/// is `1 + max endpoint` (or 0 for an empty document).
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(usize, usize, usize)> = Vec::new(); // (u, v, line)
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let t = raw.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let first = parts.next().unwrap();
        if first == "n" {
            let n =
                parts
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| ParseError::BadLine {
                        line,
                        content: t.to_string(),
                    })?;
            declared_n = Some(n);
            continue;
        }
        let u: usize = first.parse().map_err(|_| ParseError::BadLine {
            line,
            content: t.to_string(),
        })?;
        let v: usize =
            parts
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| ParseError::BadLine {
                    line,
                    content: t.to_string(),
                })?;
        if parts.next().is_some() {
            return Err(ParseError::BadLine {
                line,
                content: t.to_string(),
            });
        }
        edges.push((u, v, line));
    }
    let n = declared_n.unwrap_or_else(|| {
        edges
            .iter()
            .map(|&(u, v, _)| u.max(v) + 1)
            .max()
            .unwrap_or(0)
    });
    let mut b = GraphBuilder::new(n);
    for (u, v, line) in edges {
        for x in [u, v] {
            if x >= n {
                return Err(ParseError::VertexOutOfRange { line, vertex: x, n });
            }
        }
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Serializes a graph as an edge list with an `n` header.
pub fn to_edge_list(g: &Graph) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(16 + 8 * g.m());
    let _ = writeln!(out, "n {}", g.n());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip() {
        let g = generators::complete_bipartite(3, 4);
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn header_preserves_isolated_vertices() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        let back = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(back.m(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = from_edge_list("# a triangle\n\n0 1\n1 2\n2 0\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn infers_vertex_count() {
        let g = from_edge_list("0 7\n").unwrap();
        assert_eq!(g.n(), 8);
    }

    #[test]
    fn bad_lines_rejected() {
        assert!(matches!(
            from_edge_list("0 1 2\n"),
            Err(ParseError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            from_edge_list("zero one\n"),
            Err(ParseError::BadLine { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            from_edge_list("n 3\n0 5\n"),
            Err(ParseError::VertexOutOfRange {
                vertex: 5,
                n: 3,
                ..
            })
        ));
    }

    #[test]
    fn empty_document() {
        let g = from_edge_list("").unwrap();
        assert_eq!(g.n(), 0);
    }
}
