//! Compact undirected graph in CSR (compressed sparse row) form.
//!
//! Vertices are dense indices `0..n`. The representation is immutable once
//! built; use [`GraphBuilder`] to construct a graph incrementally. Neighbor
//! lists are sorted, so adjacency queries are `O(log deg)` and neighborhood
//! intersections are linear merges.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::bitset::{self, AdjacencyBitset};

/// A vertex index. Graphs in this workspace are bounded well below `u32::MAX`.
pub type VertexId = u32;

/// An immutable undirected simple graph in CSR form.
///
/// Self-loops and parallel edges are removed at construction time.
///
/// The CSR index is `u32` end to end — offsets included — and the offset
/// table is shared behind an `Arc`, so simulator layers that need the
/// directed-edge slot map (one slot per `(node, port)` pair) borrow it
/// instead of rebuilding an `n + 1`-entry table per run. Both halve the
/// index footprint at the `n = 10^5..10^6` scales the sharded engine
/// targets. Construction is guarded: node counts and directed-edge counts
/// beyond `u32::MAX` are rejected up front (see [`GraphBuilder::try_new`]),
/// never silently truncated.
///
/// Dense graphs additionally carry a lazily-built packed adjacency matrix
/// (see [`crate::bitset`]) that accelerates membership tests and
/// neighborhood intersections; sparse graphs never build it.
pub struct Graph {
    offsets: Arc<[u32]>,
    neighbors: Vec<VertexId>,
    m: usize,
    /// `None` inside = graph judged too sparse; unset = not decided yet.
    packed: OnceLock<Option<Arc<AdjacencyBitset>>>,
}

/// A graph was too large for the `u32` CSR index (node count above
/// `u32::MAX`, or more than `u32::MAX` directed edge slots).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphTooLarge {
    /// What overflowed: `"vertices"` or `"directed edges"`.
    pub what: &'static str,
    /// The offending count.
    pub count: usize,
}

impl fmt::Display for GraphTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph too large for the u32 CSR index: {} {} (max {})",
            self.count,
            self.what,
            u32::MAX
        )
    }
}

impl std::error::Error for GraphTooLarge {}

impl Clone for Graph {
    fn clone(&self) -> Self {
        Graph {
            offsets: self.offsets.clone(),
            neighbors: self.neighbors.clone(),
            m: self.m,
            // Cloning shares the (immutable) packed matrix via `Arc`.
            packed: self.packed.clone(),
        }
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // The packed cache is derived state; equality is structural.
        self.m == other.m && self.offsets == other.offsets && self.neighbors == other.neighbors
    }
}

impl Eq for Graph {}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. Duplicate edges,
    /// reversed duplicates, and self-loops are dropped.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u as usize, v as usize);
        }
        b.build()
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 range");
        Graph {
            offsets: vec![0u32; n + 1].into(),
            neighbors: Vec::new(),
            m: 0,
            packed: OnceLock::new(),
        }
    }

    /// Builds a graph directly from a CSR index: `offsets` has `n + 1`
    /// entries and `neighbors[offsets[v]..offsets[v+1]]` is the sorted,
    /// duplicate-free neighbor list of `v`. This is the streaming
    /// construction path — generators that know their degrees up front
    /// (see [`crate::generators::bounded_degree`]) fill the CSR in place
    /// and never materialize an intermediate edge list.
    ///
    /// # Panics
    /// Panics if the index is malformed (non-monotone offsets, length
    /// mismatch, endpoints out of range). Row sortedness, dedup, self-loop
    /// absence, and adjacency symmetry are checked under
    /// `debug_assertions` only — release builds trust the generator.
    pub fn from_csr(offsets: Vec<u32>, neighbors: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n + 1 entries");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            neighbors.len(),
            "last offset must equal the neighbor array length"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(neighbors.len() % 2, 0, "directed edge count must be even");
        let n = offsets.len() - 1;
        #[cfg(debug_assertions)]
        {
            for v in 0..n {
                let row = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
                debug_assert!(
                    row.windows(2).all(|w| w[0] < w[1]),
                    "row {v} must be sorted and duplicate-free"
                );
                for &u in row {
                    debug_assert!((u as usize) < n, "endpoint {u} out of range");
                    debug_assert!(u as usize != v, "self-loop at {v}");
                    let back =
                        &neighbors[offsets[u as usize] as usize..offsets[u as usize + 1] as usize];
                    debug_assert!(
                        back.binary_search(&(v as u32)).is_ok(),
                        "adjacency must be symmetric ({v} -> {u})"
                    );
                }
            }
        }
        let _ = n;
        Graph {
            m: neighbors.len() / 2,
            offsets: offsets.into(),
            neighbors,
            packed: OnceLock::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[VertexId] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The CSR offset table (`n + 1` entries; `offsets[v]` is the first
    /// directed-edge slot of `v`), shared without copying. Simulator
    /// accounting layers key per-`(node, port)` state off these slots.
    #[inline]
    pub fn offsets_shared(&self) -> Arc<[u32]> {
        Arc::clone(&self.offsets)
    }

    /// The CSR offset table as a slice (see [`Self::offsets_shared`]).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Whether the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.n() || v >= self.n() {
            return false;
        }
        // O(1) bit probe when the packed matrix already exists; a plain
        // membership test never *triggers* the build.
        if let Some(Some(b)) = self.packed.get() {
            return b.contains(u, v);
        }
        // Search the shorter list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&(b as VertexId)).is_ok()
    }

    /// The packed adjacency matrix, built on first call if the graph is
    /// dense enough (see [`bitset::dense_enough`]); `None` for sparse
    /// graphs. Subsequent calls return the cached matrix.
    pub fn packed_adjacency(&self) -> Option<&AdjacencyBitset> {
        self.packed
            .get_or_init(|| {
                bitset::dense_enough(self.n(), self.m).then(|| {
                    Arc::new(AdjacencyBitset::with_rows(self.n(), |v, row| {
                        bitset::pack_into(row, self.neighbors(v))
                    }))
                })
            })
            .as_deref()
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u as u32, v))
        })
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m/n` (0 if there are no vertices).
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m as f64 / self.n() as f64
        }
    }

    /// Number of common neighbors of `u` and `v` (popcount intersection on
    /// dense graphs, linear merge otherwise).
    pub fn common_neighbors(&self, u: usize, v: usize) -> usize {
        if let Some(b) = self.packed_adjacency() {
            return b.common_count(u, v);
        }
        let (mut i, mut j) = (0, 0);
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let mut count = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// The subgraph induced by `keep[v] == true`, together with the map from
    /// old vertex ids to new ones (`None` for dropped vertices).
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<Option<u32>>) {
        assert_eq!(keep.len(), self.n());
        let mut map = vec![None; self.n()];
        let mut next = 0u32;
        for v in 0..self.n() {
            if keep[v] {
                map[v] = Some(next);
                next += 1;
            }
        }
        let mut b = GraphBuilder::new(next as usize);
        for (u, v) in self.edges() {
            if let (Some(nu), Some(nv)) = (map[u as usize], map[v as usize]) {
                b.add_edge(nu as usize, nv as usize);
            }
        }
        (b.build(), map)
    }

    /// Disjoint union of two graphs; vertices of `other` are shifted by
    /// `self.n()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.n() as u32;
        let mut b = GraphBuilder::new(self.n() + other.n());
        for (u, v) in self.edges() {
            b.add_edge(u as usize, v as usize);
        }
        for (u, v) in other.edges() {
            b.add_edge((u + shift) as usize, (v + shift) as usize);
        }
        b.build()
    }

    /// Degree sequence sorted descending.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = (0..self.n()).map(|v| self.degree(v)).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

/// Incremental builder for [`Graph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    ///
    /// # Panics
    /// Panics if `n` exceeds the `u32` vertex range; fallible callers
    /// (anything taking an externally supplied size) should use
    /// [`Self::try_new`].
    pub fn new(n: usize) -> Self {
        match Self::try_new(n) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: rejects vertex counts the `u32` CSR index
    /// cannot address *before* allocating anything.
    pub fn try_new(n: usize) -> Result<Self, GraphTooLarge> {
        if n >= u32::MAX as usize {
            return Err(GraphTooLarge {
                what: "vertices",
                count: n,
            });
        }
        Ok(GraphBuilder {
            n,
            edges: Vec::new(),
        })
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if `u >= n` or `v >= n`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        if u != v {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push((a as u32, b as u32));
        }
        self
    }

    /// Adds a new vertex and returns its index.
    pub fn add_vertex(&mut self) -> usize {
        self.n += 1;
        self.n - 1
    }

    /// Current number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Finalizes into an immutable [`Graph`], deduplicating edges.
    ///
    /// # Panics
    /// Panics if the deduplicated graph has more than `u32::MAX` directed
    /// edge slots (the `u32` CSR offset range).
    pub fn build(&self) -> Graph {
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        edges.dedup();
        let m = edges.len();
        let slots: usize = 2 * m;
        let _slots_u32: u32 = slots.try_into().unwrap_or_else(|_| {
            panic!(
                "{}",
                GraphTooLarge {
                    what: "directed edges",
                    count: slots,
                }
            )
        });

        let mut degree = vec![0u32; self.n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; slots];
        for &(u, v) in &edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..self.n {
            neighbors[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Graph {
            offsets: offsets.into(),
            neighbors,
            m,
            packed: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.common_neighbors(0, 1), 1);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = Graph::from_edges(4, &[(3, 1), (2, 0), (1, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let keep = vec![true, false, true, true];
        let (h, map) = g.induced_subgraph(&keep);
        assert_eq!(h.n(), 3);
        assert_eq!(h.m(), 2); // edges {2,3} and {3,0} survive
        assert_eq!(map[1], None);
        let (n0, n2, n3) = (map[0].unwrap(), map[2].unwrap(), map[3].unwrap());
        assert!(h.has_edge(n2 as usize, n3 as usize));
        assert!(h.has_edge(n3 as usize, n0 as usize));
        assert!(!h.has_edge(n0 as usize, n2 as usize));
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = Graph::from_edges(2, &[(0, 1)]);
        let b = Graph::from_edges(3, &[(0, 2)]);
        let u = a.disjoint_union(&b);
        assert_eq!(u.n(), 5);
        assert_eq!(u.m(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 4));
    }

    #[test]
    fn degree_sequence_sorted() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree_sequence(), vec![3, 1, 1, 1]);
    }

    #[test]
    fn packed_adjacency_matches_csr() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let g = crate::generators::gnp(80, 0.5, &mut rng);
        let b = g.packed_adjacency().expect("gnp(80, 0.5) is dense");
        for u in 0..g.n() {
            for v in 0..g.n() {
                // Referee against the raw sorted neighbor list, not
                // has_edge (which now answers from the packed matrix).
                let merge = g.neighbors(u).binary_search(&(v as u32)).is_ok();
                assert_eq!(b.contains(u, v), merge, "({u},{v})");
                assert_eq!(g.has_edge(u, v), merge, "({u},{v})");
            }
        }
        for u in 0..g.n() {
            for v in 0..g.n() {
                let merge = g
                    .neighbors(u)
                    .iter()
                    .filter(|w| g.neighbors(v).binary_search(w).is_ok())
                    .count();
                assert_eq!(g.common_neighbors(u, v), merge, "({u},{v})");
            }
        }
    }

    #[test]
    fn sparse_graph_skips_packing() {
        let g = Graph::from_edges(100, &[(0, 1), (1, 2), (2, 3)]);
        assert!(g.packed_adjacency().is_none());
        assert!(g.has_edge(1, 2) && !g.has_edge(0, 3));
        assert_eq!(g.common_neighbors(0, 2), 1);
    }

    #[test]
    fn equality_ignores_packed_cache() {
        let edges: Vec<(u32, u32)> = (0..40u32)
            .flat_map(|u| ((u + 1)..40).map(move |v| (u, v)))
            .collect();
        let a = Graph::from_edges(40, &edges);
        let b = Graph::from_edges(40, &edges);
        let _ = a.packed_adjacency(); // build cache on one side only
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(c.common_neighbors(0, 1), 38);
    }

    #[test]
    fn try_new_rejects_oversized_vertex_counts() {
        assert!(GraphBuilder::try_new(1024).is_ok());
        let err = GraphBuilder::try_new(u32::MAX as usize)
            .expect_err("u32::MAX vertices must not fit the u32 offset index");
        assert_eq!(err.what, "vertices");
        assert!(err.to_string().contains("too large"));
        #[cfg(target_pointer_width = "64")]
        assert!(GraphBuilder::try_new(u32::MAX as usize + 1).is_err());
    }

    #[test]
    fn from_csr_matches_builder() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let raw = Graph::from_csr(vec![0, 2, 4, 6, 8], vec![1, 3, 0, 2, 1, 3, 0, 2]);
        assert_eq!(g, raw);
        assert_eq!(raw.degree(0), 2);
        assert!(raw.has_edge(3, 0));
        assert_eq!(raw.m(), 4);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_csr_rejects_broken_offsets() {
        let _ = Graph::from_csr(vec![0, 2, 1, 4], vec![1, 2, 0, 0]);
    }

    #[test]
    fn offsets_are_shared_not_copied() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let a = g.offsets_shared();
        let b = g.offsets_shared();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&a[..], &[0, 1, 3, 4]);
        assert_eq!(g.offsets(), &a[..]);
    }

    #[test]
    fn builder_add_vertex() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_vertex();
        b.add_edge(0, v);
        let g = b.build();
        assert_eq!(g.n(), 2);
        assert!(g.has_edge(0, 1));
    }
}
