//! The layer decomposition used by Phase II of the even-cycle algorithm
//! (§6 of the paper; in the style of Barenboim–Elkin's Nash-Williams
//! forest decomposition).
//!
//! Given a degree threshold `d`, repeatedly peel off all vertices whose
//! degree in the *remaining* graph is at most `d`; vertices peeled in step
//! `ell` form layer `ell`. If the graph is sparse everywhere (as a
//! `C_2k`-free graph is, by the Turán bound), all vertices are assigned
//! within `ceil(log2 n)` layers; a vertex left unassigned certifies that the
//! graph is denser than the threshold allows — and hence contains a cycle.

use crate::graph::Graph;

/// Outcome of the peeling decomposition.
#[derive(Debug, Clone)]
pub struct LayerDecomposition {
    /// `layer[v]` is the peeling step (0-based) at which `v` was removed,
    /// or `None` if `v` survived all `max_layers` steps.
    pub layer: Vec<Option<usize>>,
    /// Number of layers actually used.
    pub layers_used: usize,
    /// The threshold the decomposition was run with.
    pub threshold: usize,
}

impl LayerDecomposition {
    /// Whether every vertex received a layer.
    pub fn complete(&self) -> bool {
        self.layer.iter().all(|l| l.is_some())
    }

    /// Up-degree of `v`: number of neighbors in an equal-or-higher layer.
    /// Unassigned vertices count as highest.
    pub fn up_degree(&self, g: &Graph, v: usize) -> usize {
        let lv = self.layer[v];
        g.neighbors(v)
            .iter()
            .filter(|&&w| {
                let lw = self.layer[w as usize];
                match (lv, lw) {
                    (Some(a), Some(b)) => b >= a,
                    (Some(_), None) => true,
                    (None, _) => false,
                }
            })
            .count()
    }
}

/// Runs the peeling decomposition with degree threshold `d` for at most
/// `max_layers` rounds.
pub fn peel_layers(g: &Graph, d: usize, max_layers: usize) -> LayerDecomposition {
    let n = g.n();
    let mut layer: Vec<Option<usize>> = vec![None; n];
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut remaining = n;
    let mut layers_used = 0;

    for step in 0..max_layers {
        if remaining == 0 {
            break;
        }
        let peel: Vec<usize> = (0..n).filter(|&v| alive[v] && deg[v] <= d).collect();
        if peel.is_empty() {
            // Nothing below threshold: the remaining graph is too dense;
            // leave survivors unassigned.
            break;
        }
        layers_used = step + 1;
        for &v in &peel {
            layer[v] = Some(step);
            alive[v] = false;
            remaining -= 1;
        }
        for &v in &peel {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if alive[w] {
                    deg[w] -= 1;
                }
            }
        }
    }
    LayerDecomposition {
        layer,
        layers_used,
        threshold: d,
    }
}

/// The guarantee behind Claim 6.4(a): with threshold `d >= 2 * ceil(2m/n)`
/// relative to every subgraph's density, each peel removes at least half the
/// remaining vertices, so `ceil(log2 n) + 1` layers suffice. This helper
/// computes that layer budget.
pub fn layer_budget(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_peels_in_one_layer() {
        let g = generators::path(10);
        let d = peel_layers(&g, 2, 4);
        assert!(d.complete());
        assert_eq!(d.layers_used, 1);
    }

    #[test]
    fn path_threshold_one_needs_many_layers() {
        let g = generators::path(8);
        let d = peel_layers(&g, 1, 10);
        assert!(d.complete());
        // Endpoints peel first, then the path shrinks inward.
        assert!(d.layers_used >= 3);
    }

    #[test]
    fn clique_survives_low_threshold() {
        let g = generators::clique(8);
        let d = peel_layers(&g, 2, 10);
        assert!(!d.complete());
        assert!(d.layer.iter().all(|l| l.is_none()));
    }

    #[test]
    fn up_degree_bounded_by_threshold() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let g = generators::gnp(60, 0.08, &mut rng);
        let thr = 2 * (2 * g.m() / g.n().max(1)).max(1);
        let d = peel_layers(&g, thr, layer_budget(g.n()));
        for v in 0..g.n() {
            if d.layer[v].is_some() {
                assert!(
                    d.up_degree(&g, v) <= thr,
                    "v={v} up-degree exceeds threshold"
                );
            }
        }
    }

    #[test]
    fn sparse_graph_completes_within_budget() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        // Average degree ~3; threshold 2*avg removes >= half each step.
        let g = generators::gnm(200, 300, &mut rng);
        let thr = 2 * (2 * g.m() / g.n()).max(1);
        let d = peel_layers(&g, thr, layer_budget(g.n()));
        assert!(d.complete());
        assert!(d.layers_used <= layer_budget(g.n()));
    }

    #[test]
    fn layer_budget_monotone() {
        assert_eq!(layer_budget(1), 1);
        assert!(layer_budget(2) >= 1);
        assert!(layer_budget(1024) >= 10);
        for n in 2..100 {
            assert!(layer_budget(n + 1) >= layer_budget(n));
        }
    }
}
