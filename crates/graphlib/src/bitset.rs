//! Word-packed adjacency bitsets for dense intersection kernels.
//!
//! The CSR representation in [`crate::graph`] keeps neighbor lists sorted,
//! which is ideal for sparse graphs: membership is a binary search and
//! intersection is a linear merge. Subgraph workloads (triangle checks,
//! `K_s` enumeration, Turán-style counting) are intersection-dominated,
//! and once the graph is dense enough a packed representation wins: each
//! adjacency row becomes `ceil(n/64)` machine words, intersection is a
//! word-wise AND + popcount, and membership is a single shift/mask.
//!
//! [`AdjacencyBitset`] stores all rows in one flat `Vec<u64>` (row-major),
//! so the whole structure is cache-friendly and cheap to build. It is built
//! lazily by [`crate::Graph::packed_adjacency`] when [`dense_enough`] holds;
//! sparse graphs never pay for it.
//!
//! All iteration helpers yield vertices in ascending order, matching the
//! sorted CSR neighbor lists — callers that switch between the two paths
//! observe identical visit orders, which keeps enumeration output (and
//! therefore run traces) byte-identical.

/// Number of `u64` words needed for a row over `n` vertices.
#[inline]
pub fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// Whether a graph on `n` vertices with `m` edges is dense enough that the
/// packed representation pays for itself.
///
/// The threshold is average degree >= n/16 (i.e. `2m/n >= n/16`, rearranged
/// to avoid division), with guards: tiny graphs fit in cache either way, and
/// very large `n` would make each row unreasonably wide.
#[inline]
pub fn dense_enough(n: usize, m: usize) -> bool {
    (32..=16_384).contains(&n) && 32 * m >= n * n
}

/// Packed adjacency matrix: one bitset row per vertex, row-major in a flat
/// word arena.
#[derive(Clone, PartialEq, Eq)]
pub struct AdjacencyBitset {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl AdjacencyBitset {
    /// Builds from a row-filling callback: `fill(v, row)` must set the bits
    /// of vertex `v`'s adjacency row.
    pub fn with_rows(n: usize, fill: impl Fn(usize, &mut [u64])) -> Self {
        let wpr = words_for(n);
        let mut words = vec![0u64; n * wpr];
        for (v, row) in words.chunks_exact_mut(wpr.max(1)).enumerate().take(n) {
            fill(v, row);
        }
        AdjacencyBitset {
            n,
            words_per_row: wpr,
            words,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per adjacency row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed adjacency row of `v`.
    #[inline]
    pub fn row(&self, v: usize) -> &[u64] {
        &self.words[v * self.words_per_row..(v + 1) * self.words_per_row]
    }

    /// Whether the edge `{u, v}` is present.
    #[inline]
    pub fn contains(&self, u: usize, v: usize) -> bool {
        self.words[u * self.words_per_row + v / 64] >> (v % 64) & 1 != 0
    }

    /// `|N(u) ∩ N(v)|` via word-wise AND + popcount.
    pub fn common_count(&self, u: usize, v: usize) -> usize {
        self.row(u)
            .iter()
            .zip(self.row(v))
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

/// Sets bit `v` in a packed row.
#[inline]
pub fn set_bit(row: &mut [u64], v: usize) {
    row[v / 64] |= 1u64 << (v % 64);
}

/// Packs a sorted id slice into `dst` (which must be zeroed and wide enough).
pub fn pack_into(dst: &mut [u64], ids: &[u32]) {
    for &v in ids {
        set_bit(dst, v as usize);
    }
}

/// Total population count of a packed set.
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Writes `a ∧ b` into `dst` (all three the same width).
#[inline]
pub fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x & y;
    }
}

/// Writes `cands ∧ adj ∧ { w : w > v }` into `dst`: the candidates after `v`
/// (in ascending order) that are adjacent to `v`. This is the inner step of
/// clique recursion — equivalent to filtering `cands[i+1..]` by adjacency.
pub fn and_above_into(dst: &mut [u64], cands: &[u64], adj: &[u64], v: usize) {
    let cut = v / 64;
    for w in dst.iter_mut().take(cut) {
        *w = 0;
    }
    // Mask off bits <= v in the boundary word. Shifting in two steps keeps
    // the `v % 64 == 63` case defined (a single shift by 64 would be UB).
    let mask = (!0u64 << (v % 64)) << 1;
    if cut < dst.len() {
        dst[cut] = cands[cut] & adj[cut] & mask;
        for i in (cut + 1)..dst.len() {
            dst[i] = cands[i] & adj[i];
        }
    }
}

/// Iterator over the set bits of a packed set, in ascending order.
pub struct Ones<'a> {
    words: &'a [u64],
    idx: usize,
    cur: u64,
}

/// Iterates the set bits of `words` ascending.
pub fn ones(words: &[u64]) -> Ones<'_> {
    Ones {
        words,
        idx: 0,
        cur: words.first().copied().unwrap_or(0),
    }
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.cur == 0 {
            self.idx += 1;
            if self.idx >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.idx];
        }
        let bit = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        Some(self.idx * 64 + bit)
    }
}

/// A packed membership set over sparse `u64` ids, used for O(1) membership
/// tests when the id universe is small enough to bound by its max element.
///
/// Falls back to `None` (caller keeps its hash set) when the max id is too
/// large for packing to be worthwhile.
pub struct IdSet {
    words: Vec<u64>,
}

impl IdSet {
    /// Max id (exclusive) we are willing to allocate a word table for.
    const CAP: u64 = 1 << 14;

    /// Packs `ids` if their maximum is below the cap; `None` otherwise.
    pub fn from_ids(ids: &[u64]) -> Option<IdSet> {
        let max = ids.iter().copied().max().unwrap_or(0);
        if max >= Self::CAP {
            return None;
        }
        let mut words = vec![0u64; words_for(max as usize + 1)];
        for &id in ids {
            words[(id / 64) as usize] |= 1u64 << (id % 64);
        }
        Some(IdSet { words })
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        let w = (id / 64) as usize;
        w < self.words.len() && self.words[w] >> (id % 64) & 1 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn packed(g: &Graph) -> AdjacencyBitset {
        AdjacencyBitset::with_rows(g.n(), |v, row| pack_into(row, g.neighbors(v)))
    }

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
    }

    #[test]
    fn density_threshold() {
        assert!(!dense_enough(8, 28)); // tiny, even if complete
        assert!(dense_enough(64, 64 * 64 / 32)); // avg degree n/16 exactly
        assert!(!dense_enough(64, 63)); // sparse
        assert!(!dense_enough(20_000, 20_000 * 20_000)); // too wide
    }

    #[test]
    fn contains_matches_graph() {
        let g = Graph::from_edges(70, &[(0, 1), (0, 69), (63, 64), (5, 64)]);
        let b = packed(&g);
        for u in 0..70 {
            for v in 0..70 {
                assert_eq!(b.contains(u, v), g.has_edge(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn common_count_matches_merge() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let g = crate::generators::gnp(90, 0.3, &mut rng);
        let b = packed(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(b.common_count(u, v), g.common_neighbors(u, v));
            }
        }
    }

    #[test]
    fn ones_ascending() {
        let mut row = vec![0u64; 2];
        pack_into(&mut row, &[0, 3, 63, 64, 100]);
        let got: Vec<usize> = ones(&row).collect();
        assert_eq!(got, vec![0, 3, 63, 64, 100]);
        assert_eq!(count_ones(&row), 5);
        assert_eq!(ones(&[]).count(), 0);
        assert_eq!(ones(&[0, 0]).count(), 0);
    }

    #[test]
    fn and_above_filters_strictly_greater() {
        // cands = {1, 5, 63, 64, 70}, adj = {5, 63, 64}; above v=5 we keep
        // exactly {63, 64}. Boundary cases v=63 (mask shift wrap) and v=64.
        let mut cands = vec![0u64; 2];
        pack_into(&mut cands, &[1, 5, 63, 64, 70]);
        let mut adj = vec![0u64; 2];
        pack_into(&mut adj, &[5, 63, 64]);
        let mut dst = vec![0u64; 2];
        and_above_into(&mut dst, &cands, &adj, 5);
        assert_eq!(ones(&dst).collect::<Vec<_>>(), vec![63, 64]);
        and_above_into(&mut dst, &cands, &adj, 63);
        assert_eq!(ones(&dst).collect::<Vec<_>>(), vec![64]);
        and_above_into(&mut dst, &cands, &adj, 64);
        assert_eq!(ones(&dst).collect::<Vec<_>>(), Vec::<usize>::new());
    }

    #[test]
    fn and_into_intersects() {
        let mut a = vec![0u64; 2];
        pack_into(&mut a, &[0, 64, 65]);
        let mut b = vec![0u64; 2];
        pack_into(&mut b, &[0, 65, 100]);
        let mut dst = vec![0u64; 2];
        and_into(&mut dst, &a, &b);
        assert_eq!(ones(&dst).collect::<Vec<_>>(), vec![0, 65]);
    }

    #[test]
    fn idset_membership_and_cap() {
        let s = IdSet::from_ids(&[0, 17, 8191]).unwrap();
        assert!(s.contains(0) && s.contains(17) && s.contains(8191));
        assert!(!s.contains(1) && !s.contains(10_000));
        assert!(IdSet::from_ids(&[1 << 20]).is_none());
        let empty = IdSet::from_ids(&[]).unwrap();
        assert!(!empty.contains(0));
    }
}
