//! Property-based tests of the graph substrate's core invariants.

use graphlib::combinatorics::{ceil_root, rank_ksubset, unrank_ksubset};
use graphlib::{cliques, components, cycles, decomposition, generators, graph::Graph, iso};
use proptest::prelude::*;

/// An arbitrary graph as (n, edge list with endpoints folded into range).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #[test]
    fn degree_sum_is_twice_edges(g in arb_graph(24, 80)) {
        let sum: usize = (0..g.n()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.m());
    }

    #[test]
    fn neighbor_lists_sorted_dedup(g in arb_graph(24, 80)) {
        for v in 0..g.n() {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!nb.contains(&(v as u32)), "no self-loops");
        }
    }

    #[test]
    fn adjacency_is_symmetric(g in arb_graph(20, 60)) {
        for u in 0..g.n() {
            for v in 0..g.n() {
                prop_assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn edges_iterator_matches_has_edge(g in arb_graph(18, 50)) {
        let listed: std::collections::HashSet<(u32, u32)> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.m());
        for &(u, v) in &listed {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u as usize, v as usize));
        }
    }

    #[test]
    fn induced_subgraph_keeps_only_kept(g in arb_graph(16, 40), mask in proptest::collection::vec(any::<bool>(), 16)) {
        let keep: Vec<bool> = (0..g.n()).map(|v| mask[v % mask.len()]).collect();
        let (h, map) = g.induced_subgraph(&keep);
        // Every edge of h pulls back to an edge of g between kept vertices.
        let back: Vec<usize> = {
            let mut b = vec![usize::MAX; h.n()];
            for (old, m) in map.iter().enumerate() {
                if let Some(new) = m {
                    b[*new as usize] = old;
                }
            }
            b
        };
        for (u, v) in h.edges() {
            prop_assert!(g.has_edge(back[u as usize], back[v as usize]));
        }
        prop_assert!(h.m() <= g.m());
    }

    #[test]
    fn components_partition_vertices(g in arb_graph(20, 40)) {
        let c = components::connected_components(&g);
        prop_assert_eq!(c.label.len(), g.n());
        prop_assert!(c.count >= 1 || g.n() == 0);
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u as usize], c.label[v as usize]);
        }
        let used: std::collections::HashSet<usize> = c.label.iter().copied().collect();
        prop_assert_eq!(used.len(), c.count);
    }

    #[test]
    fn bfs_distances_are_lipschitz_on_edges(g in arb_graph(20, 50)) {
        let d = graphlib::bfs::distances(&g, 0);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != graphlib::bfs::UNREACHABLE && dv != graphlib::bfs::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv, "edge endpoints share reachability");
            }
        }
    }

    #[test]
    fn unrank_rank_roundtrip(rank in 0u64..5000, k in 1usize..5) {
        let s = unrank_ksubset(rank, k);
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(rank_ksubset(&s), rank);
    }

    #[test]
    fn ceil_root_is_exact(n in 1u64..1_000_000, k in 1u32..6) {
        let r = ceil_root(n, k);
        prop_assert!(r.checked_pow(k).is_none_or(|p| p >= n));
        if r > 1 {
            prop_assert!((r - 1).checked_pow(k).is_some_and(|p| p < n));
        }
    }

    #[test]
    fn girth_consistent_with_cycle_search(g in arb_graph(14, 26)) {
        match cycles::girth(&g) {
            None => {
                // Forest: no cycle of any length.
                for k in 3..=g.n().max(3) {
                    prop_assert!(!cycles::has_cycle(&g, k));
                }
            }
            Some(girth) => {
                prop_assert!(cycles::has_cycle(&g, girth), "girth cycle exists");
                for k in 3..girth {
                    prop_assert!(!cycles::has_cycle(&g, k), "nothing shorter");
                }
            }
        }
    }

    #[test]
    fn clique_count_matches_listing(g in arb_graph(14, 40), s in 3usize..5) {
        let listed = cliques::list_ksub(&g, s, usize::MAX);
        prop_assert_eq!(listed.len() as u64, cliques::count_ksub(&g, s));
    }

    #[test]
    fn clique_count_monotone_under_edge_addition(g in arb_graph(12, 24)) {
        // Add one edge: K_s count never decreases.
        let before = cliques::count_ksub(&g, 3);
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        // Find a non-edge.
        'outer: for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                if !g.has_edge(u, v) {
                    edges.push((u as u32, v as u32));
                    break 'outer;
                }
            }
        }
        let g2 = Graph::from_edges(g.n(), &edges);
        prop_assert!(cliques::count_ksub(&g2, 3) >= before);
    }

    #[test]
    fn pattern_embeds_in_itself(g in arb_graph(12, 24)) {
        prop_assert!(iso::contains_subgraph(&g, &g));
    }

    #[test]
    fn embedding_survives_supergraph(g in arb_graph(10, 18)) {
        // g embeds into g + extra isolated vertices + extra edges.
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        let n2 = g.n() + 3;
        edges.push((g.n() as u32, (g.n() + 1) as u32));
        let big = Graph::from_edges(n2, &edges);
        prop_assert!(iso::contains_subgraph(&g, &big));
        if let Some(phi) = iso::find_subgraph(&g, &big) {
            prop_assert!(iso::verify_embedding(&g, &big, &phi));
        } else {
            prop_assert!(false, "witness must exist");
        }
    }

    #[test]
    fn ullmann_agrees_with_vf2(pat in arb_graph(6, 10), tgt in arb_graph(12, 30)) {
        prop_assert_eq!(
            graphlib::ullmann::contains_subgraph_ullmann(&pat, &tgt),
            iso::contains_subgraph(&pat, &tgt)
        );
    }

    #[test]
    fn peel_layers_respect_threshold(g in arb_graph(20, 60), d in 1usize..6) {
        let lay = decomposition::peel_layers(&g, d, decomposition::layer_budget(g.n()) + 4);
        for v in 0..g.n() {
            if lay.layer[v].is_some() {
                prop_assert!(lay.up_degree(&g, v) <= d, "v={v}");
            }
        }
    }

    #[test]
    fn gnm_has_exact_edges(n in 4usize..30, mfrac in 0usize..100) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(n as u64);
        let max = n * (n - 1) / 2;
        let m = mfrac * max / 100;
        let g = generators::gnm(n, m, &mut rng);
        prop_assert_eq!(g.m(), m);
    }

    #[test]
    fn random_tree_is_acyclic_connected(n in 1usize..60, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let t = generators::random_tree(n, &mut rng);
        prop_assert_eq!(t.m(), n - 1);
        prop_assert!(components::is_connected(&t));
        prop_assert_eq!(cycles::girth(&t), None);
    }

    #[test]
    fn bipartition_is_proper(a in 1usize..8, b in 1usize..8, p in 0.0f64..1.0) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64((a * 31 + b) as u64);
        let g = generators::random_bipartite(a, b, p, &mut rng);
        let side = components::bipartition(&g).expect("bipartite by construction");
        for (u, v) in g.edges() {
            prop_assert_ne!(side[u as usize], side[v as usize]);
        }
    }
}
