//! A unified façade over every detection algorithm in this crate.
//!
//! Downstream users pick a [`Detector`] and call [`Detector::detect`]; the
//! façade routes to the right algorithm and normalizes the result into a
//! [`DetectionOutcome`] (found / rounds / bits), so algorithms can be
//! compared or swapped without touching call sites.

use crate::even_cycle::{detect_even_cycle, EvenCycleConfig};
use crate::tree::TreePattern;
use crate::triangle::OneRoundStrategy;
use congest::SimError;
use graphlib::Graph;

/// Which algorithm to run.
#[derive(Debug, Clone)]
pub enum Detector {
    /// Theorem 1.1: randomized sublinear `C_{2k}` detection.
    EvenCycle {
        /// Cycle half-length (`k >= 2`).
        k: usize,
        /// Amplification repetitions.
        repetitions: usize,
    },
    /// `O(Δ)`-round `K_s` detection by neighbor exchange.
    Clique {
        /// Clique size (`s >= 3`).
        s: usize,
    },
    /// One-round triangle detection with a bounded message budget.
    TriangleOneRound {
        /// Message strategy/budget.
        strategy: OneRoundStrategy,
    },
    /// Constant-round color-coded tree detection.
    Tree {
        /// The rooted tree pattern.
        pattern: TreePattern,
        /// Amplification repetitions.
        repetitions: usize,
    },
    /// LOCAL-model ball collection for an arbitrary connected pattern.
    Local {
        /// The pattern graph (must be connected).
        pattern: Graph,
    },
    /// CONGEST gather-at-leader for an arbitrary pattern (connected host).
    Gather {
        /// The pattern graph.
        pattern: Graph,
    },
}

/// Normalized detection result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionOutcome {
    /// Whether a copy of the target subgraph was reported.
    pub detected: bool,
    /// Total rounds across the run (all repetitions).
    pub rounds: usize,
    /// Total bits sent.
    pub total_bits: u64,
}

impl Detector {
    /// A reasonable default for detecting the fixed subgraph `h`:
    /// even-cycle detector for even cycles, clique detector for cliques,
    /// tree detector for trees, and gather for everything else.
    pub fn auto_for(h: &Graph) -> Detector {
        let n = h.n();
        // Even cycle C_{2k}?
        if n >= 4
            && n.is_multiple_of(2)
            && h.m() == n
            && (0..n).all(|v| h.degree(v) == 2)
            && graphlib::components::is_connected(h)
        {
            return Detector::EvenCycle {
                k: n / 2,
                repetitions: crate::even_cycle::amplification_reps(n / 2),
            };
        }
        // Clique K_s?
        if n >= 3 && h.m() == n * (n - 1) / 2 {
            return Detector::Clique { s: n };
        }
        // Tree?
        if (1..=64).contains(&n) && h.m() == n - 1 && graphlib::components::is_connected(h) {
            return Detector::Tree {
                pattern: TreePattern::from_graph(h, 0),
                repetitions: crate::tree::tree_reps(n),
            };
        }
        Detector::Gather { pattern: h.clone() }
    }

    /// Runs the detector on `g` with the given seed.
    pub fn detect(&self, g: &Graph, seed: u64) -> Result<DetectionOutcome, SimError> {
        match self {
            Detector::EvenCycle { k, repetitions } => {
                let rep = detect_even_cycle(
                    g,
                    EvenCycleConfig::new(*k)
                        .repetitions(*repetitions)
                        .seed(seed),
                )?;
                Ok(DetectionOutcome {
                    detected: rep.detected,
                    rounds: rep.total_rounds,
                    total_bits: rep.total_bits,
                })
            }
            Detector::Clique { s } => {
                let rep = crate::clique_detect::detect_clique(g, *s)?;
                Ok(DetectionOutcome {
                    detected: rep.detected,
                    rounds: rep.rounds,
                    total_bits: rep.total_bits,
                })
            }
            Detector::TriangleOneRound { strategy } => {
                let rep = crate::triangle::detect_triangle_one_round(g, *strategy, seed)?;
                Ok(DetectionOutcome {
                    detected: rep.detected,
                    rounds: 1,
                    total_bits: rep.total_bits,
                })
            }
            Detector::Tree {
                pattern,
                repetitions,
            } => {
                let rep = crate::tree::detect_tree(g, pattern, *repetitions, seed)?;
                Ok(DetectionOutcome {
                    detected: rep.detected,
                    rounds: rep.total_rounds,
                    total_bits: rep.total_bits,
                })
            }
            Detector::Local { pattern } => {
                let rep = crate::generic::detect_local(g, pattern)?;
                Ok(DetectionOutcome {
                    detected: rep.detected,
                    rounds: rep.rounds,
                    total_bits: rep.total_bits,
                })
            }
            Detector::Gather { pattern } => {
                let rep = crate::generic::detect_gather(g, pattern)?;
                Ok(DetectionOutcome {
                    detected: rep.detected,
                    rounds: rep.rounds,
                    total_bits: rep.total_bits,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    #[test]
    fn auto_routing() {
        assert!(matches!(
            Detector::auto_for(&generators::cycle(4)),
            Detector::EvenCycle { k: 2, .. }
        ));
        assert!(matches!(
            Detector::auto_for(&generators::cycle(6)),
            Detector::EvenCycle { k: 3, .. }
        ));
        assert!(matches!(
            Detector::auto_for(&generators::clique(5)),
            Detector::Clique { s: 5 }
        ));
        assert!(matches!(
            Detector::auto_for(&generators::star(4)),
            Detector::Tree { .. }
        ));
        // Odd cycle: neither even cycle, clique, nor tree.
        assert!(matches!(
            Detector::auto_for(&generators::cycle(5)),
            Detector::Gather { .. }
        ));
    }

    #[test]
    fn facade_detects_across_algorithms() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let base = generators::random_tree(24, &mut rng);
        let (g, _) = generators::plant_cycle(&base, 4, &mut rng);

        let even = Detector::EvenCycle {
            k: 2,
            repetitions: 3000,
        };
        assert!(even.detect(&g, 1).unwrap().detected);

        let gather = Detector::Gather {
            pattern: generators::cycle(4),
        };
        assert!(gather.detect(&g, 1).unwrap().detected);

        let tri = Detector::Clique { s: 3 };
        assert_eq!(
            tri.detect(&g, 1).unwrap().detected,
            graphlib::cliques::count_triangles(&g) > 0
        );
    }

    #[test]
    fn outcome_carries_accounting() {
        let g = generators::clique(5);
        let out = Detector::Clique { s: 3 }.detect(&g, 0).unwrap();
        assert!(out.detected);
        assert!(out.rounds > 0);
        assert!(out.total_bits > 0);
    }
}
