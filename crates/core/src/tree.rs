//! Constant-round tree detection via color coding (the `O(1)` bound of
//! [Even et al., DISC'17] cited in §1/§1.2 of the paper).
//!
//! Fix a tree pattern `T` on `h` vertices, rooted arbitrarily. Color every
//! graph node uniformly from `{0, ..., h-1}` and identify color `t` with the
//! `t`-th vertex of `T`. A node `v` *hosts* a pattern vertex `t` if
//! `c(v) = t` and, for every child `t_i` of `t`, some neighbor of `v` hosts
//! `t_i`. Because pattern vertices have pairwise-distinct colors, the union
//! of witness subtrees is automatically vertex-disjoint, so a host of the
//! root certifies a properly-colored copy of `T`. The DP needs one round per
//! pattern height level — `O(depth(T)) = O(1)` rounds — with `h`-bit
//! messages; a fixed copy is properly colored with probability `h^{-h}`,
//! amplified by repetition.

use congest::{
    Bandwidth, BitSize, Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing, SimError,
    Simulation,
};
use graphlib::Graph;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A rooted tree pattern: vertex 0 is the root.
#[derive(Debug, Clone)]
pub struct TreePattern {
    /// `parent[v]` for `v > 0`; `parent[0]` is unused.
    parent: Vec<usize>,
    children: Vec<Vec<usize>>,
    /// Height of each vertex (leaves are 0).
    height: Vec<usize>,
    depth: usize,
}

impl TreePattern {
    /// Builds a rooted pattern from a tree graph and a chosen root.
    ///
    /// # Panics
    /// Panics if `tree` is not a connected acyclic graph, is empty, or has
    /// more than 64 vertices (hosts are tracked in a `u64` bitmask).
    pub fn from_graph(tree: &Graph, root: usize) -> Self {
        let h = tree.n();
        assert!((1..=64).contains(&h), "pattern must have 1..=64 vertices");
        assert_eq!(tree.m(), h - 1, "pattern must be a tree");
        assert!(
            graphlib::components::is_connected(tree),
            "pattern must be connected"
        );
        // BFS from root, reindexing so the root becomes vertex 0.
        let (dist, par) = graphlib::bfs::distances_with_parents(tree, root);
        let mut order: Vec<usize> = (0..h).collect();
        order.sort_by_key(|&v| dist[v]);
        let mut new_index = vec![0usize; h];
        for (i, &v) in order.iter().enumerate() {
            new_index[v] = i;
        }
        let mut parent = vec![0usize; h];
        let mut children = vec![Vec::new(); h];
        for &v in &order {
            if v != root {
                let p = new_index[par[v]];
                parent[new_index[v]] = p;
                children[p].push(new_index[v]);
            }
        }
        // Heights bottom-up (order is by depth, so reverse order works).
        let mut height = vec![0usize; h];
        for &v in order.iter().rev() {
            let nv = new_index[v];
            height[nv] = children[nv]
                .iter()
                .map(|&c| height[c] + 1)
                .max()
                .unwrap_or(0);
        }
        let depth = height[0];
        TreePattern {
            parent,
            children,
            height,
            depth,
        }
    }

    /// A path pattern on `h` vertices rooted at one end.
    pub fn path(h: usize) -> Self {
        Self::from_graph(&graphlib::generators::path(h), 0)
    }

    /// A star pattern with `leaves` leaves, rooted at the center.
    pub fn star(leaves: usize) -> Self {
        Self::from_graph(&graphlib::generators::star(leaves), 0)
    }

    /// Number of pattern vertices.
    pub fn size(&self) -> usize {
        self.parent.len()
    }

    /// Height of the root.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Children of pattern vertex `t`.
    pub fn children(&self, t: usize) -> &[usize] {
        &self.children[t]
    }

    /// Pattern vertices at the given height.
    fn at_height(&self, h: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.size()).filter(move |&t| self.height[t] == h)
    }
}

/// The host bitmap broadcast each round.
#[derive(Debug, Clone, Copy, Hash)]
pub struct HostMask {
    /// Bit `t` set = sender hosts pattern vertex `t`.
    pub mask: u64,
    bits: u32,
}

impl BitSize for HostMask {
    fn bit_size(&self) -> usize {
        self.bits as usize
    }
}

/// Tree-detection node.
pub struct TreeDetectNode {
    pattern: TreePattern,
    color: usize,
    my_hosts: u64,
    /// OR of everything every neighbor ever claimed.
    nbr_hosts: u64,
    reject: bool,
    done: bool,
}

impl TreeDetectNode {
    /// A node searching for `pattern`.
    pub fn new(pattern: TreePattern) -> Self {
        TreeDetectNode {
            pattern,
            color: 0,
            my_hosts: 0,
            nbr_hosts: 0,
            reject: false,
            done: false,
        }
    }

    fn compute_height(&mut self, h: usize) -> bool {
        let mut changed = false;
        let ts: Vec<usize> = self.pattern.at_height(h).collect();
        for t in ts {
            if t != self.color {
                continue;
            }
            let ok = self
                .pattern
                .children(t)
                .iter()
                .all(|&c| self.nbr_hosts >> c & 1 == 1);
            if ok && self.my_hosts >> t & 1 == 0 {
                self.my_hosts |= 1 << t;
                changed = true;
            }
        }
        changed
    }

    fn broadcast(&self) -> Outbox<HostMask> {
        vec![Outgoing::Broadcast(HostMask {
            mask: self.my_hosts,
            bits: self.pattern.size() as u32,
        })]
    }
}

impl NodeAlgorithm for TreeDetectNode {
    type Msg = HostMask;

    fn init(&mut self, _ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<HostMask> {
        self.color = rng.gen_range(0..self.pattern.size());
        self.compute_height(0);
        if self.pattern.depth() == 0 {
            // Single-vertex pattern: every node is a copy.
            self.reject = self.my_hosts & 1 == 1 || self.pattern.size() == 1;
            self.done = true;
            return Vec::new();
        }
        self.broadcast()
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<HostMask>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<HostMask> {
        for (_, m) in inbox {
            self.nbr_hosts |= m.mask;
        }
        self.compute_height(ctx.round);
        if ctx.round >= self.pattern.depth() {
            self.reject = self.my_hosts & 1 == 1;
            self.done = true;
            return Vec::new();
        }
        self.broadcast()
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        if self.reject {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

/// Report from tree detection.
#[derive(Debug, Clone)]
pub struct TreeDetectReport {
    /// Whether a copy of the tree pattern was found.
    pub detected: bool,
    /// Repetitions executed.
    pub repetitions_run: usize,
    /// Rounds per repetition (`depth(T)`, constant in `n`).
    pub rounds_per_repetition: usize,
    /// Total rounds.
    pub total_rounds: usize,
    /// Total bits.
    pub total_bits: u64,
}

/// Amplification count for tree size `h`: `4 h^h`, capped.
pub fn tree_reps(h: usize) -> usize {
    let mut acc: u64 = 1;
    for _ in 0..h {
        acc = acc.saturating_mul(h as u64);
        if acc > 1 << 22 {
            return 1 << 22;
        }
    }
    (4 * acc) as usize
}

/// Runs color-coded tree detection with `reps` repetitions.
pub fn detect_tree(
    g: &Graph,
    pattern: &TreePattern,
    reps: usize,
    seed: u64,
) -> Result<TreeDetectReport, SimError> {
    let mut total_rounds = 0;
    let mut total_bits = 0;
    let mut detected = false;
    let mut executed = 0;
    for rep in 0..reps {
        executed += 1;
        let p = pattern.clone();
        let out = Simulation::on(g)
            .bandwidth(Bandwidth::Bits(pattern.size().max(8)))
            .seed(seed ^ (rep as u64).wrapping_mul(0xA24BAED4963EE407))
            .max_rounds(pattern.depth() + 2)
            .run(move |_| TreeDetectNode::new(p.clone()))?;
        total_rounds += out.stats.rounds;
        total_bits += out.stats.total_bits;
        if out.network_rejects() {
            detected = true;
            break;
        }
    }
    Ok(TreeDetectReport {
        detected,
        repetitions_run: executed,
        rounds_per_repetition: pattern.depth().max(1),
        total_rounds,
        total_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    #[test]
    fn pattern_construction() {
        let p = TreePattern::path(4);
        assert_eq!(p.size(), 4);
        assert_eq!(p.depth(), 3);
        let s = TreePattern::star(5);
        assert_eq!(s.size(), 6);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.children(0).len(), 5);
    }

    #[test]
    fn detects_path_in_cycle() {
        let g = generators::cycle(12);
        let p = TreePattern::path(3);
        let r = detect_tree(&g, &p, 2000, 1).unwrap();
        assert!(r.detected);
        assert_eq!(r.rounds_per_repetition, 2);
    }

    #[test]
    fn rejects_star_in_path() {
        // A path has max degree 2; no K_{1,3} star.
        let g = generators::path(20);
        let p = TreePattern::star(3);
        let r = detect_tree(&g, &p, 300, 2).unwrap();
        assert!(!r.detected);
    }

    #[test]
    fn detects_star_in_star() {
        let g = generators::star(6);
        let p = TreePattern::star(3);
        let r = detect_tree(&g, &p, 3000, 3).unwrap();
        assert!(r.detected);
    }

    #[test]
    fn detects_spider_in_random_tree() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
        // Any 2-vertex tree (an edge) exists in every non-empty tree.
        let g = generators::random_tree(30, &mut rng);
        let p = TreePattern::path(2);
        let r = detect_tree(&g, &p, 200, 4).unwrap();
        assert!(r.detected);
    }

    #[test]
    fn rounds_constant_in_n() {
        let p = TreePattern::path(4);
        let small = detect_tree(&generators::path(10), &p, 1, 5).unwrap();
        let large = detect_tree(&generators::path(200), &p, 1, 5).unwrap();
        assert_eq!(small.rounds_per_repetition, large.rounds_per_repetition);
    }

    #[test]
    fn ground_truth_agreement() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(20);
        let g = generators::gnp(15, 0.15, &mut rng);
        let pat_graph = generators::path(4);
        let truth = graphlib::iso::contains_subgraph(&pat_graph, &g);
        let p = TreePattern::path(4);
        let r = detect_tree(&g, &p, 30_000, 6).unwrap();
        assert_eq!(r.detected, truth);
    }

    #[test]
    fn tree_reps_growth() {
        assert_eq!(tree_reps(2), 16);
        assert_eq!(tree_reps(3), 4 * 27);
    }

    #[test]
    #[should_panic(expected = "must be a tree")]
    fn non_tree_pattern_rejected() {
        let _ = TreePattern::from_graph(&generators::cycle(4), 0);
    }
}
