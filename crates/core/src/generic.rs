//! Generic subgraph-detection baselines.
//!
//! * [`detect_local`] — the LOCAL-model algorithm from the introduction:
//!   every node collects its `O(|H|)`-ball with unbounded messages and
//!   checks for `H` locally. `O(|H|)` rounds, but the per-edge traffic is
//!   what the CONGEST bounds forbid — measuring it exhibits the
//!   CONGEST/LOCAL separation of Theorem 1.2.
//! * [`detect_gather`] — the trivial CONGEST algorithm: build a BFS tree,
//!   convergecast every edge to the leader (pipelined, one edge per round
//!   per tree edge), decide centrally. `O(n + m)` rounds at `B = Θ(log n)`.

use congest::{
    bits_for_domain, Bandwidth, BitSize, Decision, Inbox, NodeAlgorithm, NodeContext, Outbox,
    Outgoing, SimError, Simulation,
};
use graphlib::{FxHashSet, Graph, GraphBuilder};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Builds a compact graph from a set of id-labeled edges.
fn graph_from_id_edges(edges: &FxHashSet<(u64, u64)>) -> Graph {
    let mut ids: Vec<u64> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    ids.sort_unstable();
    ids.dedup();
    let index = |x: u64| ids.binary_search(&x).unwrap();
    let mut b = GraphBuilder::new(ids.len());
    for &(u, v) in edges {
        b.add_edge(index(u), index(v));
    }
    b.build()
}

// ---------------------------------------------------------------------------
// LOCAL-model ball collection
// ---------------------------------------------------------------------------

/// An edge-set gossip message.
#[derive(Debug, Clone, Hash)]
pub struct EdgeSet {
    /// Canonical `(min_id, max_id)` edges.
    pub edges: Vec<(u64, u64)>,
    bits: u32,
}

impl BitSize for EdgeSet {
    fn bit_size(&self) -> usize {
        self.bits as usize
    }
}

/// LOCAL-model node: gossip edges for `radius` rounds, then check for the
/// pattern in the collected ball.
pub struct LocalCollectNode {
    pattern: Graph,
    radius: usize,
    known: FxHashSet<(u64, u64)>,
    fresh: Vec<(u64, u64)>,
    reject: bool,
    done: bool,
}

impl LocalCollectNode {
    /// A node searching for (connected) `pattern` by collecting its
    /// `radius`-ball. `radius = |V(pattern)|` always suffices.
    pub fn new(pattern: Graph, radius: usize) -> Self {
        LocalCollectNode {
            pattern,
            radius,
            known: FxHashSet::default(),
            fresh: Vec::new(),
            reject: false,
            done: false,
        }
    }

    fn emit(&mut self, ctx: &NodeContext) -> Outbox<EdgeSet> {
        if self.fresh.is_empty() {
            return Vec::new();
        }
        let idb = bits_for_domain(ctx.n.max(2)) as u32;
        let msg = EdgeSet {
            edges: std::mem::take(&mut self.fresh),
            bits: 0,
        };
        let bits = 2 * idb * msg.edges.len() as u32;
        vec![Outgoing::Broadcast(EdgeSet { bits, ..msg })]
    }
}

impl NodeAlgorithm for LocalCollectNode {
    type Msg = EdgeSet;

    fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<EdgeSet> {
        for &nb in &ctx.neighbor_ids {
            let e = (ctx.id.min(nb), ctx.id.max(nb));
            if self.known.insert(e) {
                self.fresh.push(e);
            }
        }
        self.emit(ctx)
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<EdgeSet>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<EdgeSet> {
        for (_, m) in inbox {
            for &e in &m.edges {
                if self.known.insert(e) {
                    self.fresh.push(e);
                }
            }
        }
        if ctx.round >= self.radius {
            let ball = graph_from_id_edges(&self.known);
            self.reject = graphlib::iso::contains_subgraph(&self.pattern, &ball);
            self.done = true;
            return Vec::new();
        }
        self.emit(ctx)
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        if self.reject {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

/// Report from a generic detection run.
#[derive(Debug, Clone)]
pub struct GenericReport {
    /// Whether a copy of the pattern was found.
    pub detected: bool,
    /// Rounds used.
    pub rounds: usize,
    /// Total bits over all edges and rounds.
    pub total_bits: u64,
    /// Maximum bits through one edge in one round (the "bandwidth" the
    /// LOCAL algorithm implicitly demands).
    pub max_edge_round_bits: usize,
}

/// Runs LOCAL-model detection of a connected `pattern` in `g`.
///
/// # Panics
/// Panics if the pattern is disconnected (ball collection only certifies
/// connected patterns) or empty.
pub fn detect_local(g: &Graph, pattern: &Graph) -> Result<GenericReport, SimError> {
    assert!(pattern.n() > 0, "pattern must be non-empty");
    assert!(
        graphlib::components::is_connected(pattern),
        "LOCAL ball collection requires a connected pattern"
    );
    let radius = pattern.n();
    let p = pattern.clone();
    let out = Simulation::on(g)
        .bandwidth(Bandwidth::Unbounded)
        .max_rounds(radius + 2)
        .run(move |_| LocalCollectNode::new(p.clone(), radius))?;
    Ok(GenericReport {
        detected: out.network_rejects(),
        rounds: out.stats.rounds,
        total_bits: out.stats.total_bits,
        max_edge_round_bits: out.stats.max_edge_round_bits,
    })
}

// ---------------------------------------------------------------------------
// CONGEST gather-at-leader
// ---------------------------------------------------------------------------

/// Messages of the gather algorithm.
#[derive(Debug, Clone, Hash)]
pub enum GatherMsg {
    /// BFS-tree construction token.
    Bfs,
    /// "You are my parent."
    Child,
    /// One edge, convergecast toward the root.
    Edge {
        /// Smaller endpoint id.
        a: u64,
        /// Larger endpoint id.
        b: u64,
        /// Wire bits.
        bits: u32,
    },
    /// "My whole subtree has been forwarded."
    Done,
}

impl BitSize for GatherMsg {
    fn bit_size(&self) -> usize {
        match self {
            GatherMsg::Bfs | GatherMsg::Child | GatherMsg::Done => 2,
            GatherMsg::Edge { bits, .. } => *bits as usize,
        }
    }
}

/// Gather-at-leader node. Node index 0 acts as the (pre-elected) leader.
pub struct GatherNode {
    pattern: Graph,
    parent_port: Option<u32>,
    is_root: bool,
    bfs_round: usize,
    announced: bool,
    children: FxHashSet<u32>,
    done_children: usize,
    queue: VecDeque<(u64, u64)>,
    collected: FxHashSet<(u64, u64)>,
    sent_done: bool,
    reject: bool,
    done: bool,
}

impl GatherNode {
    /// A gather node searching for `pattern`.
    pub fn new(pattern: Graph) -> Self {
        GatherNode {
            pattern,
            parent_port: None,
            is_root: false,
            bfs_round: usize::MAX,
            announced: false,
            children: FxHashSet::default(),
            done_children: 0,
            queue: VecDeque::new(),
            collected: FxHashSet::default(),
            sent_done: false,
            reject: false,
            done: false,
        }
    }

    fn enqueue_own_edges(&mut self, ctx: &NodeContext) {
        for &nb in &ctx.neighbor_ids {
            let e = (ctx.id.min(nb), ctx.id.max(nb));
            if self.is_root {
                self.collected.insert(e);
            } else {
                self.queue.push_back(e);
            }
        }
    }
}

impl NodeAlgorithm for GatherNode {
    type Msg = GatherMsg;

    fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<GatherMsg> {
        if ctx.index == 0 {
            self.is_root = true;
            self.bfs_round = 0;
            self.enqueue_own_edges(ctx);
            if ctx.degree() > 0 {
                return vec![Outgoing::Broadcast(GatherMsg::Bfs)];
            }
        }
        Vec::new()
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<GatherMsg>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<GatherMsg> {
        let mut out: Outbox<GatherMsg> = Vec::new();
        let mut just_adopted = false;
        for (port, msg) in inbox {
            match &**msg {
                GatherMsg::Bfs => {
                    if !self.is_root && self.parent_port.is_none() {
                        self.parent_port = Some(*port);
                        self.bfs_round = ctx.round;
                        self.enqueue_own_edges(ctx);
                        just_adopted = true;
                    }
                }
                GatherMsg::Child => {
                    self.children.insert(*port);
                }
                GatherMsg::Edge { a, b, .. } => {
                    if self.is_root {
                        self.collected.insert((*a, *b));
                    } else {
                        self.queue.push_back((*a, *b));
                    }
                }
                GatherMsg::Done => {
                    self.done_children += 1;
                }
            }
        }
        if just_adopted {
            out.push(Outgoing::Broadcast(GatherMsg::Bfs));
            out.push(Outgoing::Unicast(
                self.parent_port.unwrap(),
                GatherMsg::Child,
            ));
            self.announced = true;
        }
        if self.sent_done || self.done || just_adopted {
            // In the adoption round the parent port already carries the
            // Child announcement; edge forwarding starts next round.
            return out;
        }
        // Children are fully known two rounds after our BFS broadcast.
        let children_known = self.bfs_round != usize::MAX && ctx.round >= self.bfs_round + 2;

        if let Some(parent) = self.parent_port {
            if let Some((a, b)) = self.queue.pop_front() {
                let bits = 2 * bits_for_domain(ctx.n.max(2)) as u32 + 2;
                out.push(Outgoing::Unicast(parent, GatherMsg::Edge { a, b, bits }));
            } else if children_known && self.done_children == self.children.len() {
                out.push(Outgoing::Unicast(parent, GatherMsg::Done));
                self.sent_done = true;
                self.done = true;
            }
        } else if self.is_root && children_known && self.done_children == self.children.len() {
            let whole = graph_from_id_edges(&self.collected);
            self.reject = graphlib::iso::contains_subgraph(&self.pattern, &whole);
            self.done = true;
        }
        out
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        if self.reject {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

/// Runs the CONGEST gather-at-leader detector on a *connected* graph `g`.
pub fn detect_gather(g: &Graph, pattern: &Graph) -> Result<GenericReport, SimError> {
    assert!(
        graphlib::components::is_connected(g),
        "gather-at-leader requires a connected network"
    );
    assert!(pattern.n() > 0, "pattern must be non-empty");
    let idb = bits_for_domain(g.n().max(2));
    let p = pattern.clone();
    let out = Simulation::on(g)
        .bandwidth(Bandwidth::Bits(2 * idb + 2))
        .max_rounds(8 * (g.n() + g.m() + 4))
        .run(move |_| GatherNode::new(p.clone()))?;
    Ok(GenericReport {
        detected: out.network_rejects(),
        rounds: out.stats.rounds,
        total_bits: out.stats.total_bits,
        max_edge_round_bits: out.stats.max_edge_round_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    #[test]
    fn local_finds_triangle() {
        let g = generators::clique(4);
        let r = detect_local(&g, &generators::cycle(3)).unwrap();
        assert!(r.detected);
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn local_rejects_absent_pattern() {
        let g = generators::cycle(8);
        let r = detect_local(&g, &generators::cycle(5)).unwrap();
        assert!(!r.detected);
    }

    #[test]
    fn local_rounds_depend_on_pattern_not_graph() {
        let small = detect_local(&generators::cycle(10), &generators::cycle(4)).unwrap();
        let large = detect_local(&generators::cycle(60), &generators::cycle(4)).unwrap();
        assert_eq!(small.rounds, large.rounds);
    }

    #[test]
    fn local_bandwidth_blows_up_on_dense_graphs() {
        // The LOCAL algorithm pushes whole edge sets over single edges.
        let g = generators::clique(12);
        let r = detect_local(&g, &generators::cycle(4)).unwrap();
        assert!(r.detected);
        assert!(
            r.max_edge_round_bits > 100,
            "ball gossip must exceed any log-size bandwidth"
        );
    }

    #[test]
    fn gather_finds_pattern() {
        let mut rng = {
            use rand::SeedableRng;
            rand_chacha::ChaCha8Rng::seed_from_u64(3)
        };
        let base = generators::random_tree(20, &mut rng);
        let (g, _) = generators::plant_cycle(&base, 5, &mut rng);
        let r = detect_gather(&g, &generators::cycle(5)).unwrap();
        assert!(r.detected);
    }

    #[test]
    fn gather_rejects_absent_pattern() {
        let g = generators::cycle(12);
        let r = detect_gather(&g, &generators::cycle(3)).unwrap();
        assert!(!r.detected);
    }

    #[test]
    fn gather_respects_log_bandwidth() {
        let g = generators::cycle(16);
        let r = detect_gather(&g, &generators::cycle(4)).unwrap();
        let idb = bits_for_domain(16);
        assert!(r.max_edge_round_bits <= 2 * idb + 2);
    }

    #[test]
    fn gather_rounds_scale_with_m_plus_n() {
        let g = generators::cycle(30);
        let r = detect_gather(&g, &generators::cycle(3)).unwrap();
        // Convergecast of 30 edges on a path-like tree: linear rounds.
        assert!(r.rounds >= 30, "rounds = {}", r.rounds);
        assert!(r.rounds <= 8 * (30 + 30 + 4));
    }

    #[test]
    fn gather_on_single_node() {
        let g = Graph::empty(1);
        let r = detect_gather(&g, &generators::path(2)).unwrap();
        assert!(!r.detected);
    }

    #[test]
    fn graph_from_id_edges_compacts() {
        let mut set = FxHashSet::default();
        set.insert((100u64, 900u64));
        set.insert((900u64, 4000u64));
        let g = graph_from_id_edges(&set);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    #[should_panic(expected = "connected pattern")]
    fn local_rejects_disconnected_pattern() {
        let pat = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = detect_local(&generators::cycle(5), &pat);
    }
}
