//! Linear-round detection of *any* fixed cycle `C_k` — the upper bound the
//! paper pairs with its odd-cycle lower bound (§1.1: for odd `C_k`
//! detection takes `Ω̃(n)` rounds, "it is easy to see that `O(n)` rounds
//! suffice, so this bound is nearly tight").
//!
//! The algorithm is the color-coded pipelined BFS of Phase I, started from
//! *every* color-0 node instead of only high-degree ones, with a round
//! budget of `n + k`: at most `n` BFS tokens exist (one per color-0 node)
//! and each node forwards any given token at most once, so every token
//! completes its `k` hops within the budget — no Turán bound needed, and
//! rejection happens only on an explicit properly-colored closed `k`-walk,
//! which (distinct colors ⇒ distinct vertices) is a genuine `C_k`.

use congest::{
    bits_for_domain, Bandwidth, BitSize, Decision, Inbox, NodeAlgorithm, NodeContext, Outbox,
    Outgoing, SimError, Simulation,
};
use graphlib::Graph;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// The BFS token: origin identifier plus hop counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Color-0 node that started the walk.
    pub origin: u64,
    /// Hops taken (equals the color of the last holder).
    pub hops: u16,
    bits: u32,
}

impl BitSize for Token {
    fn bit_size(&self) -> usize {
        self.bits as usize
    }
}

/// One repetition of the linear-round `C_k` detector.
pub struct AnyCycleNode {
    k: usize,
    budget: usize,
    color: u16,
    queue: VecDeque<Token>,
    seen: graphlib::FxHashSet<(u64, u16)>,
    reject: bool,
    done: bool,
}

impl AnyCycleNode {
    /// A node searching for `C_k` (`k >= 3`) with the given round budget
    /// (`n + k` guarantees completion).
    pub fn new(k: usize, budget: usize) -> Self {
        assert!(k >= 3);
        AnyCycleNode {
            k,
            budget,
            color: 0,
            queue: VecDeque::new(),
            seen: graphlib::FxHashSet::default(),
            reject: false,
            done: false,
        }
    }

    fn token(&self, ctx: &NodeContext, origin: u64, hops: u16) -> Token {
        Token {
            origin,
            hops,
            bits: (bits_for_domain(ctx.n.max(2)) + bits_for_domain(self.k.max(2))) as u32,
        }
    }

    fn pop(&mut self) -> Outbox<Token> {
        match self.queue.pop_front() {
            Some(t) => vec![Outgoing::Broadcast(t)],
            None => Vec::new(),
        }
    }
}

impl NodeAlgorithm for AnyCycleNode {
    type Msg = Token;

    fn init(&mut self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<Token> {
        self.color = rng.gen_range(0..self.k as u16);
        if self.color == 0 && ctx.degree() >= 2 {
            let t = self.token(ctx, ctx.id, 0);
            self.seen.insert((t.origin, t.hops));
            self.queue.push_back(t);
        }
        self.pop()
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<Token>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<Token> {
        let k = self.k as u16;
        for (_, t) in inbox {
            if t.origin == ctx.id && t.hops == k - 1 {
                self.reject = true;
            } else if t.hops + 1 < k && self.color == t.hops + 1 {
                let fwd = self.token(ctx, t.origin, t.hops + 1);
                if self.seen.insert((fwd.origin, fwd.hops)) {
                    self.queue.push_back(fwd);
                }
            }
        }
        if ctx.round >= self.budget {
            // The budget provably drains every queue (at most n tokens,
            // each enqueued at most once per node), so unlike Phase I of
            // the even-cycle algorithm there is no overflow-reject case.
            debug_assert!(self.queue.is_empty(), "n + k budget must drain queues");
            self.done = true;
            return Vec::new();
        }
        self.pop()
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        if self.reject {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

/// Report of the linear detector.
#[derive(Debug, Clone)]
pub struct AnyCycleReport {
    /// Whether a `C_k` was found.
    pub detected: bool,
    /// Repetitions executed.
    pub repetitions_run: usize,
    /// Rounds per repetition (`n + k` — linear, for every `k`).
    pub rounds_per_repetition: usize,
    /// Total rounds.
    pub total_rounds: usize,
    /// Total bits.
    pub total_bits: u64,
}

/// Amplification count `4 k^k` (a fixed copy is properly colored with
/// probability `k^{-k}` up to rotations), capped.
pub fn any_cycle_reps(k: usize) -> usize {
    let mut acc: u64 = 1;
    for _ in 0..k {
        acc = acc.saturating_mul(k as u64);
        if acc > 1 << 22 {
            return 1 << 22;
        }
    }
    (4 * acc) as usize
}

/// Detects `C_k` (any `k >= 3`, odd or even) in `O(n)` rounds per
/// repetition.
pub fn detect_cycle_linear(
    g: &Graph,
    k: usize,
    reps: usize,
    seed: u64,
) -> Result<AnyCycleReport, SimError> {
    let budget = g.n() + k;
    let bw = Bandwidth::Bits(bits_for_domain(g.n().max(2)) + bits_for_domain(k.max(2)));
    let mut total_rounds = 0;
    let mut total_bits = 0;
    let mut detected = false;
    let mut executed = 0;
    for rep in 0..reps {
        executed += 1;
        let out = Simulation::on(g)
            .bandwidth(bw)
            .seed(seed ^ (rep as u64).wrapping_mul(0x6C62272E07BB0142))
            .max_rounds(budget + 2)
            .run(|_| AnyCycleNode::new(k, budget))?;
        total_rounds += out.stats.rounds;
        total_bits += out.stats.total_bits;
        if out.network_rejects() {
            detected = true;
            break;
        }
    }
    Ok(AnyCycleReport {
        detected,
        repetitions_run: executed,
        rounds_per_repetition: budget,
        total_rounds,
        total_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    #[test]
    fn detects_odd_cycles() {
        // The C5 case: the paper's odd-cycle lower bound is Ω̃(n), and this
        // is the matching O(n) upper bound.
        let g = generators::cycle(5);
        let r = detect_cycle_linear(&g, 5, 30_000, 1).unwrap();
        assert!(r.detected);
        assert_eq!(r.rounds_per_repetition, 5 + 5);
    }

    #[test]
    fn detects_triangles() {
        let g = generators::clique(4);
        assert!(detect_cycle_linear(&g, 3, 2000, 2).unwrap().detected);
    }

    #[test]
    fn sound_on_cycle_free_graphs() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let t = generators::random_tree(40, &mut rng);
        for k in [3usize, 5, 6] {
            let r = detect_cycle_linear(&t, k, 40, k as u64).unwrap();
            assert!(!r.detected, "k={k}");
        }
    }

    #[test]
    fn sound_on_wrong_length() {
        // C8 contains no C6 (as a subgraph).
        let g = generators::cycle(8);
        let r = detect_cycle_linear(&g, 6, 200, 5).unwrap();
        assert!(!r.detected);
    }

    #[test]
    fn rounds_are_linear_in_n() {
        let small = detect_cycle_linear(&generators::cycle(20), 5, 1, 6).unwrap();
        let large = detect_cycle_linear(&generators::cycle(200), 5, 1, 6).unwrap();
        assert_eq!(small.rounds_per_repetition, 25);
        assert_eq!(large.rounds_per_repetition, 205);
    }

    #[test]
    fn agreement_with_ground_truth() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        for trial in 0..4 {
            let g = generators::gnm(18, 20, &mut rng);
            let truth = graphlib::cycles::has_cycle(&g, 5);
            let r = detect_cycle_linear(&g, 5, 60_000, trial).unwrap();
            assert_eq!(r.detected, truth, "trial {trial}");
        }
    }

    #[test]
    fn reps_formula() {
        assert_eq!(any_cycle_reps(3), 4 * 27);
        assert!(any_cycle_reps(20) == 1 << 22);
    }
}
