//! The *property-testing relaxation* of triangle-freeness.
//!
//! §1.2 of the paper contrasts its exact setting with distributed property
//! testing ([4, 6, 14] there): a tester only distinguishes triangle-free
//! graphs from graphs that are *ε-far* from triangle-free (more than
//! `ε·m` edge deletions needed to kill all triangles), and in exchange
//! runs in `O(1)`-ish rounds. This module implements the standard
//! sample-an-edge tester so the trade-off is measurable next to the exact
//! detectors:
//!
//! * each probe round, every vertex with degree ≥ 2 samples two random
//!   neighbors `u, w` and asks `u` whether `{u, w}` is an edge (one
//!   `O(log n)`-bit query + one bit back);
//! * any confirmed edge closes a triangle → reject.
//!
//! Soundness is unconditional (a confirmation exhibits a real triangle);
//! completeness holds only in the far regime, with probability growing in
//! the number of probe rounds — exactly the relaxation the paper declines.

use congest::{
    bits_for_domain, Bandwidth, BitSize, Decision, Inbox, NodeAlgorithm, NodeContext, Outbox,
    Outgoing, SimError, Simulation,
};
use graphlib::Graph;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Tester messages.
#[derive(Debug, Clone, Hash)]
pub enum TestMsg {
    /// "Is this id one of your neighbors?" (carries `log N` bits).
    Query {
        /// Identifier being asked about.
        about: u64,
        /// Declared wire bits.
        bits: u32,
    },
    /// "Yes — and so the asker, you and I close a triangle."
    Confirm,
}

impl BitSize for TestMsg {
    fn bit_size(&self) -> usize {
        match self {
            TestMsg::Query { bits, .. } => *bits as usize,
            TestMsg::Confirm => 2,
        }
    }
}

/// Triangle-freeness tester node.
pub struct TriangleTesterNode {
    probes: usize,
    reject: bool,
    done: bool,
}

impl TriangleTesterNode {
    /// A tester that runs `probes` probe rounds (`Θ(1/ε²)` for the far
    /// regime guarantee).
    pub fn new(probes: usize) -> Self {
        TriangleTesterNode {
            probes,
            reject: false,
            done: false,
        }
    }

    fn probe(&self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<TestMsg> {
        if ctx.degree() < 2 {
            return Vec::new();
        }
        let a = rng.gen_range(0..ctx.degree());
        let mut b = rng.gen_range(0..ctx.degree() - 1);
        if b >= a {
            b += 1;
        }
        let bits = bits_for_domain(ctx.n.max(2)) as u32 + 2;
        vec![Outgoing::Unicast(
            a as u32,
            TestMsg::Query {
                about: ctx.neighbor_ids[b],
                bits,
            },
        )]
    }
}

impl NodeAlgorithm for TriangleTesterNode {
    type Msg = TestMsg;

    fn init(&mut self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<TestMsg> {
        if self.probes == 0 {
            self.done = true;
            return Vec::new();
        }
        self.probe(ctx, rng)
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<TestMsg>,
        rng: &mut ChaCha8Rng,
    ) -> Outbox<TestMsg> {
        let mut out: Outbox<TestMsg> = Vec::new();
        for (port, msg) in inbox {
            match &**msg {
                TestMsg::Query { about, .. } => {
                    if ctx.neighbor_ids.contains(about) {
                        // The asker, `about`, and we form a triangle.
                        self.reject = true;
                        out.push(Outgoing::Unicast(*port, TestMsg::Confirm));
                    }
                }
                TestMsg::Confirm => {
                    self.reject = true;
                }
            }
        }
        // Each probe takes two rounds (query, answer); fire a new probe on
        // odd rounds until the budget is used.
        if ctx.round / 2 >= self.probes {
            self.done = true;
            return out;
        }
        if ctx.round.is_multiple_of(2) {
            out.extend(self.probe(ctx, rng));
        }
        out
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        if self.reject {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

/// Tester report.
#[derive(Debug, Clone)]
pub struct TesterReport {
    /// Whether some node confirmed a triangle.
    pub detected: bool,
    /// Rounds used (`2 * probes + O(1)`).
    pub rounds: usize,
    /// Total bits.
    pub total_bits: u64,
}

/// Runs the triangle-freeness tester with the given probe budget.
pub fn test_triangle_freeness(
    g: &Graph,
    probes: usize,
    seed: u64,
) -> Result<TesterReport, SimError> {
    let out = Simulation::on(g)
        .bandwidth(Bandwidth::Bits(bits_for_domain(g.n().max(2)) + 2))
        .max_rounds(2 * probes + 3)
        .seed(seed)
        .run(|_| TriangleTesterNode::new(probes))?;
    Ok(TesterReport {
        detected: out.network_rejects(),
        rounds: out.stats.rounds,
        total_bits: out.stats.total_bits,
    })
}

/// Empirical detection probability over `trials` independent seeds.
pub fn detection_probability(g: &Graph, probes: usize, trials: usize, seed: u64) -> f64 {
    let hits = (0..trials)
        .filter(|&t| {
            test_triangle_freeness(g, probes, seed ^ (t as u64).wrapping_mul(0x9E37))
                .map(|r| r.detected)
                .unwrap_or(false)
        })
        .count();
    hits as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    #[test]
    fn sound_on_triangle_free_graphs() {
        // Unconditional: a tester can never reject a triangle-free graph.
        for seed in 0..5 {
            let r =
                test_triangle_freeness(&generators::complete_bipartite(6, 6), 10, seed).unwrap();
            assert!(!r.detected, "seed {seed}");
            let r = test_triangle_freeness(&generators::cycle(12), 10, seed).unwrap();
            assert!(!r.detected, "seed {seed}");
        }
    }

    #[test]
    fn far_graphs_detected_quickly() {
        // A clique is as far from triangle-free as it gets: every probe of
        // every vertex confirms.
        let g = generators::clique(12);
        let r = test_triangle_freeness(&g, 1, 3).unwrap();
        assert!(r.detected);
        assert!(r.rounds <= 5, "constant rounds, got {}", r.rounds);
    }

    #[test]
    fn detection_probability_grows_with_probes() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        // Sparse triangles: a tree plus a handful of planted triangles.
        let base = generators::random_tree(60, &mut rng);
        let (mut g, _) = generators::plant_cycle(&base, 3, &mut rng);
        for _ in 0..2 {
            let (g2, _) = generators::plant_cycle(&g, 3, &mut rng);
            g = g2;
        }
        let p1 = detection_probability(&g, 1, 60, 5);
        let p8 = detection_probability(&g, 8, 60, 5);
        assert!(p8 >= p1, "more probes can't hurt: {p8} < {p1}");
        assert!(p8 > 0.15, "8 probes should find planted triangles: {p8}");
    }

    #[test]
    fn rounds_independent_of_n() {
        let small = test_triangle_freeness(&generators::clique(8), 4, 1).unwrap();
        let large = test_triangle_freeness(&generators::clique(40), 4, 1).unwrap();
        // Both a constant number of rounds (probes * 2 + O(1)); the clique
        // rejects early so rounds may be even smaller.
        assert!(small.rounds <= 11 && large.rounds <= 11);
    }

    #[test]
    fn zero_probe_budget_accepts() {
        let r = test_triangle_freeness(&generators::clique(5), 0, 0).unwrap();
        assert!(!r.detected);
    }
}
