//! # subgraph-detection — the paper's algorithms
//!
//! Distributed subgraph-detection algorithms from *"Possibilities and
//! Impossibilities for Distributed Subgraph Detection"* (SPAA 2018), plus
//! the baselines its bounds are measured against:
//!
//! * [`even_cycle`] — **Theorem 1.1**: `C_2k` detection in
//!   `O(n^{1-1/(k(k-1))})` rounds (color coding + pipelining + layer
//!   decomposition).
//! * [`clique_detect`] — `K_s` (and triangle) detection in `O(Δ)` rounds by
//!   neighbor exchange (the linear bound of §1.1).
//! * [`triangle`] — one-round bounded-bandwidth triangle protocols (the
//!   §5 setting).
//! * [`tree`] — constant-round color-coded tree detection (ref.\[12\] in the
//!   paper).
//! * [`generic`] — LOCAL-model ball collection and CONGEST
//!   gather-at-leader: the generic baselines that make the CONGEST/LOCAL
//!   separation measurable.

#![warn(missing_docs)]

pub mod any_cycle;
pub mod clique_detect;
pub mod detector;
pub mod even_cycle;
pub mod generic;
pub mod property_testing;
pub mod tree;
pub mod triangle;

pub use any_cycle::{detect_cycle_linear, AnyCycleReport};
pub use clique_detect::{
    detect_clique, detect_triangle, list_cliques_congest, CliqueDetectReport, CliqueListReport,
};
pub use detector::{DetectionOutcome, Detector};
pub use even_cycle::{
    detect_even_cycle, detect_even_cycle_faulty, detect_even_cycle_faulty_observed,
    detect_even_cycle_observed, detect_even_cycle_prepared, prepare_even_cycle, EvenCycleConfig,
    EvenCycleObserver, EvenCycleReport, FaultyEvenCycleReport, Schedule,
};
pub use generic::{detect_gather, detect_local, GenericReport};
pub use property_testing::{test_triangle_freeness, TesterReport};
pub use tree::{detect_tree, TreeDetectReport, TreePattern};
pub use triangle::{detect_triangle_one_round, OneRoundReport, OneRoundStrategy};
