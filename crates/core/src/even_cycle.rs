//! Sublinear-round even-cycle detection — **Theorem 1.1** (§6 of the paper).
//!
//! For fixed `k >= 2`, detects a copy of `C_2k` in
//! `O(n^{1 - 1/(k(k-1))})` rounds, combining:
//!
//! * **Phase I** — color coding + pipelined color-coded BFS from every
//!   high-degree node (degree `>= n^δ`, `δ = 1/(k-1)`), with round budget
//!   `R1 = ceil(M / n^δ) + 2k` (Lemma 6.1), where `M >= ex(n, C_2k)` is the
//!   even-cycle Turán bound;
//! * **Phase II** — remove high-degree nodes, peel the remainder into
//!   `O(log n)` layers with up-degree at most `d`, then propagate
//!   properly-colored increasing/decreasing path prefixes that meet at the
//!   cycle midpoint (Claim 6.4).
//!
//! Each phase finds a properly-colored cycle with probability at least
//! `(2k)^{-2k}`; the driver repeats both phases with fresh colors to
//! amplify. A rejection is always sound: either an explicit properly-colored
//! `C_2k` was found, or a pipelining/peeling budget overflowed, which
//! certifies `|E(G)| > M >= ex(n, C_2k)` and hence the existence of a
//! `C_2k`.
//!
//! The paper notes the algorithm derandomizes "using standard techniques"
//! (explicit colorings from a perfect-hash-family, cf. its reference \[15\])
//! at an extra `O(log n)` factor; we implement the randomized version and
//! expose the repetition count instead.

use congest::{
    bits_for_domain, Bandwidth, BitSize, Collector, Decision, FaultReport, FaultSpec, Inbox,
    Metrics, NodeAlgorithm, NodeContext, Outbox, Outgoing, Overrides, PhaseStat, Profiler,
    ReliableConfig, RunReport, RunStats, SimError, SimEvent, Simulation,
};
use graphlib::decomposition::layer_budget;
use graphlib::turan::even_cycle_edge_bound;
use graphlib::Graph;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Parameters of the even-cycle detector.
#[derive(Debug, Clone, Copy)]
pub struct EvenCycleConfig {
    /// Detect `C_{2k}`; requires `k >= 2`.
    pub k: usize,
    /// Number of independent repetitions (color re-draws) of both phases.
    /// `Theta((2k)^{2k})` repetitions give constant success probability.
    pub repetitions: usize,
    /// Base seed for the per-repetition color draws.
    pub seed: u64,
    /// Override for the Turán edge bound `M` (mainly for tests/benches);
    /// `None` uses [`even_cycle_edge_bound`]. Using a smaller `M` keeps the
    /// schedule shorter but is only sound if `M >= ex(n, C_2k)` still holds
    /// for the inputs at hand.
    pub edge_bound_override: Option<usize>,
    /// Shard count for the round engine's parallel passes (0 = one shard
    /// per rayon lane). Purely a parallel-grain knob: every run is
    /// byte-identical at any value.
    pub shards: usize,
    /// Run the fault-free engine with causal early termination: once every
    /// node is [`NodeAlgorithm::quiescent`] and no message is in flight,
    /// the remaining (purely clock-ticking) rounds of the phase schedule
    /// are skipped. Decisions are unchanged; executed round counts (and
    /// the per-round stat series) reflect the truncated run, so leave this
    /// off for golden-file and referee comparisons. The faulty driver
    /// ignores it — a pending crash schedule must be allowed to fire.
    pub early_termination: bool,
    /// Run the engine's fused single-sweep send pass (the default). `false`
    /// selects the pre-fusion account → stage → deliver reference path —
    /// byte-identical by the fusion referee, kept as the oracle for A/B
    /// benchmarking and for the referee tests themselves.
    pub fused: bool,
}

impl EvenCycleConfig {
    /// Default configuration for cycle length `2k` with enough repetitions
    /// for constant success probability.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "C_2k detection requires k >= 2");
        EvenCycleConfig {
            k,
            repetitions: amplification_reps(k),
            seed: 0,
            edge_bound_override: None,
            shards: 0,
            early_termination: false,
            fused: true,
        }
    }

    /// Sets the number of repetitions.
    pub fn repetitions(mut self, reps: usize) -> Self {
        self.repetitions = reps;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the edge bound `M`.
    pub fn edge_bound(mut self, m: usize) -> Self {
        self.edge_bound_override = Some(m);
        self
    }

    /// Sets the engine shard count (see [`EvenCycleConfig::shards`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables causal early termination for the fault-free driver (see
    /// [`EvenCycleConfig::early_termination`]).
    pub fn early_termination(mut self, on: bool) -> Self {
        self.early_termination = on;
        self
    }

    /// Selects the fused or pre-fusion send pass (see
    /// [`EvenCycleConfig::fused`]).
    pub fn fused(mut self, on: bool) -> Self {
        self.fused = on;
        self
    }
}

/// `4 * (2k)^{2k}` capped to something finite — the paper's amplification
/// count for constant success probability.
pub fn amplification_reps(k: usize) -> usize {
    let base = (2 * k) as u64;
    let mut acc: u64 = 1;
    for _ in 0..(2 * k) {
        acc = acc.saturating_mul(base);
        if acc > 1 << 22 {
            return 1 << 22;
        }
    }
    (4 * acc) as usize
}

/// The schedule every node derives from the commonly-known `(n, k, M)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Cycle half-length.
    pub k: usize,
    /// Turán edge bound `M`.
    pub edge_bound: usize,
    /// High-degree threshold `ceil(n^δ)`, `δ = 1/(k-1)`.
    pub degree_threshold: usize,
    /// Phase I round budget `R1 = ceil(M / threshold) + 2k`.
    pub r1_rounds: usize,
    /// Peeling threshold `d` for Phase II layers.
    pub peel_threshold: usize,
    /// Number of peeling rounds `L`.
    pub peel_rounds: usize,
    /// Per-block send budgets of Phase II: `budgets[j]` is the number of
    /// rounds color-`(j+1)` / color-`(2k-1-j)` nodes get to flush their
    /// prefix queues (`j = 0` is the paper's step (2)).
    pub block_budgets: Vec<usize>,
    /// Total Phase II rounds.
    pub r2_rounds: usize,
    /// Bits needed to ship the largest Phase II message (a length-(k-1)
    /// prefix) — the bandwidth the algorithm assumes, `Θ(k log n)`.
    pub required_bandwidth: usize,
}

impl Schedule {
    /// Derives the schedule for a graph of `n` nodes.
    pub fn derive(n: usize, k: usize, edge_bound_override: Option<usize>) -> Schedule {
        assert!(k >= 2);
        let m = edge_bound_override.unwrap_or_else(|| even_cycle_edge_bound(n, k));
        let delta = 1.0 / (k as f64 - 1.0);
        let degree_threshold = ((n as f64).powf(delta).ceil() as usize).max(1);
        let r1_rounds = m.div_ceil(degree_threshold) + 2 * k;
        // Peeling with threshold 2 * ceil(2M/n) halves the remaining
        // vertices each step for any graph family whose every subgraph has
        // average degree <= 2M/n (true for C_2k-free graphs by the Turán
        // bound), so `layer_budget(n)` steps always complete.
        let peel_threshold = 2 * (2 * m).div_ceil(n.max(1)).max(1);
        let peel_rounds = layer_budget(n);
        // Block j (0-based) carries length-(j+1) prefixes; a node holds at
        // most `d * threshold^{j-1}` of them (up-degree d at the first hop,
        // then fan-out < degree_threshold per hop).
        let mut block_budgets = Vec::with_capacity(k - 1);
        let mut budget = peel_threshold;
        for j in 0..(k - 1) {
            if j > 0 {
                budget = budget.saturating_mul(degree_threshold);
            }
            block_budgets.push(budget);
        }
        // Rounds: 1 (alive bits land) happens inside peeling round 1;
        // layering occupies rounds 1..=L; color-0 broadcast at L+1; block j
        // sends occupy the following budget windows; one final round for
        // the last arrivals.
        let r2_rounds = peel_rounds + 1 + block_budgets.iter().sum::<usize>() + 1;
        let id_bits = bits_for_domain(n.max(2));
        let layer_bits = bits_for_domain(peel_rounds.max(2));
        // Largest message: origin + origin layer + up to (k-2) interior ids
        // + direction flag + 3-bit tag.
        let required_bandwidth = id_bits * (k - 1) + layer_bits + 1 + 3;
        Schedule {
            k,
            edge_bound: m,
            degree_threshold,
            r1_rounds,
            peel_rounds,
            peel_threshold,
            block_budgets,
            r2_rounds,
            required_bandwidth,
        }
    }

    /// First round in which block `j` (0-based) sends.
    pub fn block_send_start(&self, j: usize) -> usize {
        let mut start = self.peel_rounds + 2;
        for b in 0..j {
            start += self.block_budgets[b];
        }
        start
    }

    /// Last send round of block `j`.
    pub fn block_send_end(&self, j: usize) -> usize {
        self.block_send_start(j) + self.block_budgets[j] - 1
    }
}

// ---------------------------------------------------------------------------
// Phase I: pipelined color-coded BFS from high-degree nodes.
// ---------------------------------------------------------------------------

/// Phase I token: `(ColorBFS, origin, i)` of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CbToken {
    /// Identifier of the color-0 node that started the BFS.
    pub origin: u64,
    /// Hops taken so far (equals the color of the last holder).
    pub hops: u16,
    /// Declared wire size in bits (id bits + counter bits).
    bits: u32,
}

impl BitSize for CbToken {
    fn bit_size(&self) -> usize {
        self.bits as usize
    }
}

/// Phase I node algorithm.
pub struct ColorBfsNode {
    sched: Schedule,
    color: u16,
    queue: VecDeque<CbToken>,
    seen: graphlib::FxHashSet<(u64, u16)>,
    reject: bool,
    done: bool,
}

impl ColorBfsNode {
    /// A Phase I node for the given schedule.
    pub fn new(sched: Schedule) -> Self {
        ColorBfsNode {
            sched,
            color: 0,
            queue: VecDeque::new(),
            seen: graphlib::FxHashSet::default(),
            reject: false,
            done: false,
        }
    }

    fn token(&self, ctx: &NodeContext, origin: u64, hops: u16) -> CbToken {
        let bits = (bits_for_domain(ctx.n.max(2)) + bits_for_domain(2 * self.sched.k)) as u32;
        CbToken { origin, hops, bits }
    }

    fn pop_broadcast(&mut self) -> Outbox<CbToken> {
        match self.queue.pop_front() {
            Some(t) => vec![Outgoing::Broadcast(t)],
            None => Vec::new(),
        }
    }
}

impl NodeAlgorithm for ColorBfsNode {
    type Msg = CbToken;

    fn init(&mut self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<CbToken> {
        self.color = rng.gen_range(0..2 * self.sched.k as u16);
        if self.color == 0 && ctx.degree() >= self.sched.degree_threshold {
            let t = self.token(ctx, ctx.id, 0);
            self.seen.insert((t.origin, t.hops));
            self.queue.push_back(t);
        }
        self.pop_broadcast()
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<CbToken>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<CbToken> {
        let two_k = 2 * self.sched.k as u16;
        for (_, t) in inbox {
            if t.origin == ctx.id && t.hops == two_k - 1 {
                // The token walked a properly-colored closed walk of length
                // 2k back to its origin: colors 0..2k-1 are distinct, so the
                // walk is a simple 2k-cycle.
                self.reject = true;
                continue;
            }
            if t.hops + 1 < two_k && self.color == t.hops + 1 {
                let fwd = self.token(ctx, t.origin, t.hops + 1);
                if self.seen.insert((fwd.origin, fwd.hops)) {
                    self.queue.push_back(fwd);
                }
            } else if t.hops == two_k - 1 && self.color == 0 {
                // A completed walk arriving at a *different* color-0 node:
                // not a detection (wrong origin); drop it.
            }
        }
        if ctx.round >= self.sched.r1_rounds {
            // Lemma 6.1: in a graph with |E| <= M all queues are empty by
            // now; a backlog certifies |E| > M and hence a C_2k.
            if !self.queue.is_empty() {
                self.reject = true;
            }
            self.done = true;
            return Vec::new();
        }
        self.pop_broadcast()
    }

    fn halted(&self) -> bool {
        self.done
    }

    /// With an empty token queue a Phase I node is purely reactive: it
    /// never emits on a clock, and the only decision change remaining at
    /// `r1_rounds` — the backlog rejection of Lemma 6.1 — requires a
    /// non-empty queue. So once every queue (and the network) drains, the
    /// rest of the `R1` schedule is dead time that early termination may
    /// skip.
    fn quiescent(&self) -> bool {
        self.done || self.queue.is_empty()
    }

    fn decision(&self) -> Decision {
        if self.reject {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

// ---------------------------------------------------------------------------
// Phase II: peel layers, then propagate increasing/decreasing prefixes.
// ---------------------------------------------------------------------------

/// Phase II message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum P2Msg {
    /// "I am still unassigned" — an alive beacon active nodes rebroadcast
    /// every peeling round until they take a layer. Counting fresh beacons
    /// per round (instead of decrementing on retirement notices) keeps the
    /// peel *sound under message loss*: a lost beacon can only make
    /// neighbors retire earlier, never strand a node without a layer, so
    /// fault injection cannot trigger the density-certificate rejection on
    /// an `H`-free graph.
    Active,
    /// A color-0 node announcing `(id, layer)` — the paper's step (1).
    Zero {
        /// Originating node id.
        origin: u64,
        /// Its layer.
        layer: u32,
        /// Declared wire bits.
        bits: u32,
    },
    /// A properly-colored path prefix (origin, interiors..., sender). The
    /// sender is implicit (the receiving port identifies it), so `interior`
    /// holds the vertices strictly between the origin and the sender.
    Prefix {
        /// The color-0 endpoint the prefix starts at.
        origin: u64,
        /// Layer of the origin (every hop checks it is `>=` its own layer).
        origin_layer: u32,
        /// Interior vertices between origin and sender, in path order.
        interior: Vec<u64>,
        /// `true` for an increasing prefix (colors 0,1,2,...), `false` for
        /// a decreasing one (colors 0, 2k-1, 2k-2, ...).
        increasing: bool,
        /// Declared wire bits.
        bits: u32,
    },
}

impl BitSize for P2Msg {
    fn bit_size(&self) -> usize {
        match self {
            P2Msg::Active => 1,
            P2Msg::Zero { bits, .. } | P2Msg::Prefix { bits, .. } => *bits as usize,
        }
    }
}

/// A prefix held by a node, pending forwarding.
#[derive(Debug, Clone)]
struct HeldPrefix {
    origin: u64,
    origin_layer: u32,
    /// Interior including the node that delivered it to us (it becomes part
    /// of the interior once we forward).
    interior: Vec<u64>,
    increasing: bool,
}

/// Phase II node algorithm.
pub struct LayerPrefixNode {
    sched: Schedule,
    color: u16,
    active: bool,
    layer: Option<u32>,
    queue: VecDeque<HeldPrefix>,
    /// Midpoint bookkeeping: origins seen with an increasing / decreasing
    /// prefix (only used by color-k nodes).
    incr_origins: graphlib::FxHashSet<u64>,
    decr_origins: graphlib::FxHashSet<u64>,
    /// Last round this node was stepped in — the clock reference for
    /// [`NodeAlgorithm::quiescent`] (the schedule is round-indexed, and
    /// quiescence for a clock-driven node depends on which scheduled
    /// emissions are already behind it).
    round_seen: usize,
    reject: bool,
    done: bool,
}

impl LayerPrefixNode {
    /// A Phase II node for the given schedule.
    pub fn new(sched: Schedule) -> Self {
        LayerPrefixNode {
            sched,
            color: 0,
            active: false,
            layer: None,
            queue: VecDeque::new(),
            incr_origins: graphlib::FxHashSet::default(),
            decr_origins: graphlib::FxHashSet::default(),
            round_seen: 0,
            reject: false,
            done: false,
        }
    }

    /// The 0-based block this node's color sends in, if any.
    fn send_block(&self) -> Option<usize> {
        let k = self.sched.k as u16;
        let c = self.color;
        if (1..k).contains(&c) {
            Some((c - 1) as usize)
        } else if c > k && c < 2 * k {
            Some((2 * k - 1 - c) as usize)
        } else {
            None
        }
    }

    fn id_bits(&self, n: usize) -> u32 {
        bits_for_domain(n.max(2)) as u32
    }

    fn layer_bits(&self) -> u32 {
        bits_for_domain(self.sched.peel_rounds.max(2)) as u32
    }

    fn emit_prefix(&self, ctx: &NodeContext, p: &HeldPrefix) -> P2Msg {
        let bits = self.id_bits(ctx.n) * (1 + p.interior.len() as u32) + self.layer_bits() + 1 + 3;
        P2Msg::Prefix {
            origin: p.origin,
            origin_layer: p.origin_layer,
            interior: p.interior.clone(),
            increasing: p.increasing,
            bits,
        }
    }
}

impl NodeAlgorithm for LayerPrefixNode {
    type Msg = P2Msg;

    fn init(&mut self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<P2Msg> {
        self.color = rng.gen_range(0..2 * self.sched.k as u16);
        self.active = ctx.degree() < self.sched.degree_threshold;
        if self.active {
            vec![Outgoing::Broadcast(P2Msg::Active)]
        } else {
            // High-degree nodes sat out already; they accept and halt at the
            // end of the schedule like everyone else (they still relay
            // nothing, so halting early is equivalent — we halt now).
            self.done = true;
            Vec::new()
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<P2Msg>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<P2Msg> {
        let s = &self.sched;
        let round = ctx.round;
        let k = s.k as u16;
        self.round_seen = round;

        // --- Ingest messages ---
        // Beacons received this round come from neighbors still unassigned
        // after the previous round; they are counted fresh every round.
        let mut alive = 0usize;
        for (port, msg) in inbox {
            match &**msg {
                P2Msg::Active => {
                    alive += 1;
                }
                P2Msg::Zero { origin, layer, .. } => {
                    // Step (2): colors 1 and 2k-1 pick up length-1 prefixes
                    // from equal-or-higher-layer color-0 neighbors.
                    if let Some(my_layer) = self.layer {
                        if (self.color == 1 || self.color == 2 * k - 1) && *layer >= my_layer {
                            self.queue.push_back(HeldPrefix {
                                origin: *origin,
                                origin_layer: *layer,
                                interior: Vec::new(),
                                increasing: self.color == 1,
                            });
                        }
                    }
                }
                P2Msg::Prefix {
                    origin,
                    origin_layer,
                    interior,
                    increasing,
                    ..
                } => {
                    let my_layer = match self.layer {
                        Some(l) => l,
                        None => continue,
                    };
                    if *origin_layer < my_layer {
                        continue; // u_0 must be on the highest layer
                    }
                    let sender = ctx.neighbor_ids[*port as usize];
                    // Path so far: origin, interior..., sender; we are the
                    // next vertex. Its length determines the color we must
                    // have to extend it.
                    let expect_len = interior.len() + 2;
                    let my_color_incr = expect_len as u16;
                    let my_color_decr = 2 * k - (expect_len as u16).min(2 * k);
                    if *increasing && self.color == my_color_incr && self.color < k {
                        let mut interior2 = interior.clone();
                        interior2.push(sender);
                        self.queue.push_back(HeldPrefix {
                            origin: *origin,
                            origin_layer: *origin_layer,
                            interior: interior2,
                            increasing: true,
                        });
                    } else if !*increasing && self.color == my_color_decr && self.color > k {
                        let mut interior2 = interior.clone();
                        interior2.push(sender);
                        self.queue.push_back(HeldPrefix {
                            origin: *origin,
                            origin_layer: *origin_layer,
                            interior: interior2,
                            increasing: false,
                        });
                    } else if self.color == k && expect_len == s.k {
                        // Midpoint: a length-k prefix (origin, k-2 interior
                        // hops, sender) ends at us. Record and match.
                        if *increasing {
                            self.incr_origins.insert(*origin);
                        } else {
                            self.decr_origins.insert(*origin);
                        }
                    }
                }
            }
        }

        // --- Layering rounds ---
        if round <= s.peel_rounds {
            let mut out: Outbox<P2Msg> = Vec::new();
            if self.active && self.layer.is_none() {
                if alive <= s.peel_threshold {
                    // Assign and stop beaconing in the same round, so
                    // neighbors see the reduced live-degree next step — this
                    // is exactly the synchronous peel of
                    // `graphlib::decomposition::peel_layers`. Under message
                    // loss the count can only shrink, so faults accelerate
                    // retirement instead of blocking it.
                    self.layer = Some((round - 1) as u32);
                } else if round < s.peel_rounds {
                    out.push(Outgoing::Broadcast(P2Msg::Active));
                }
            }
            return out;
        }

        // Entering the prefix stage: unassigned active nodes certify
        // density > the Turán bound — reject (Claim 6.4(a)).
        if self.active && self.layer.is_none() {
            self.reject = true;
            self.done = true;
            return Vec::new();
        }

        // --- Step (1): color-0 announcement ---
        if round == s.peel_rounds + 1 {
            if self.color == 0 {
                let bits = self.id_bits(ctx.n) + self.layer_bits() + 3;
                return vec![Outgoing::Broadcast(P2Msg::Zero {
                    origin: ctx.id,
                    layer: self.layer.unwrap_or(0),
                    bits,
                })];
            }
            return Vec::new();
        }

        // --- Block send windows ---
        let mut out: Outbox<P2Msg> = Vec::new();
        if let Some(block) = self.send_block() {
            let start = s.block_send_start(block);
            let end = s.block_send_end(block);
            if round >= start && round <= end {
                if let Some(p) = self.queue.pop_front() {
                    out.push(Outgoing::Broadcast(self.emit_prefix(ctx, &p)));
                }
            } else if round > end && !self.queue.is_empty() {
                // Budget overflow: more prefixes than a C_2k-free graph
                // can generate. Sound rejection.
                self.reject = true;
            }
        }

        // --- End of schedule ---
        if round >= s.r2_rounds {
            if self.color == k
                && self
                    .incr_origins
                    .iter()
                    .any(|o| self.decr_origins.contains(o))
            {
                // Some origin reached us along both a properly-colored
                // increasing and decreasing k-path: their union is a
                // properly-colored C_2k (all colors distinct).
                self.reject = true;
            }
            if let Some(block) = self.send_block() {
                if !self.queue.is_empty() && round > s.block_send_end(block) {
                    self.reject = true;
                }
            }
            self.done = true;
            return Vec::new();
        }
        out
    }

    fn halted(&self) -> bool {
        self.done
    }

    /// A Phase II node is clock-driven in three places, all of which must
    /// be behind it before it can be declared quiescent: the peeling
    /// beacons and the layer-assignment deadline (so it must hold a
    /// layer), the color-0 `Zero` announcement at round
    /// `peel_rounds + 1`, and the end-of-schedule checks at `r2_rounds` —
    /// a backlogged queue (budget overflow) or a matched midpoint origin
    /// would still flip the decision there. With a layer assigned, the
    /// announcement round past, an empty queue, and no pending midpoint
    /// match, every remaining round is an idle block-window tick.
    fn quiescent(&self) -> bool {
        self.done
            || (self.layer.is_some()
                && self.round_seen > self.sched.peel_rounds + 1
                && self.queue.is_empty()
                && !(self.color == self.sched.k as u16
                    && self
                        .incr_origins
                        .iter()
                        .any(|o| self.decr_origins.contains(o))))
    }

    fn decision(&self) -> Decision {
        if self.reject {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Merges one phase run's traffic statistics into the detector-wide
/// aggregate: scalar tallies add, the congestion peak takes the max, and
/// the per-round series concatenate (the aggregate time-series walks
/// through every executed phase in order). Both runs share the same
/// topology, so the directed-edge slots line up.
fn absorb_stats(acc: &mut RunStats, s: &RunStats) {
    acc.rounds += s.rounds;
    acc.total_bits += s.total_bits;
    acc.total_messages += s.total_messages;
    acc.max_edge_round_bits = acc.max_edge_round_bits.max(s.max_edge_round_bits);
    for (d, x) in acc.directed_edge_bits.iter_mut().zip(&s.directed_edge_bits) {
        *d += x;
    }
    acc.per_round_bits.extend_from_slice(&s.per_round_bits);
    acc.per_round_messages
        .extend_from_slice(&s.per_round_messages);
}

/// Tracks per-phase round/bit tallies across repetitions and renders them
/// as the `phases` section of a run report.
#[derive(Default)]
struct PhaseTally {
    p1_rounds: u64,
    p1_bits: u64,
    p2_rounds: u64,
    p2_bits: u64,
}

impl PhaseTally {
    fn phase1(&mut self, stats: &RunStats) {
        self.p1_rounds += stats.rounds as u64;
        self.p1_bits += stats.total_bits;
    }

    fn phase2(&mut self, stats: &RunStats) {
        self.p2_rounds += stats.rounds as u64;
        self.p2_bits += stats.total_bits;
    }

    fn render(&self) -> Vec<PhaseStat> {
        vec![
            PhaseStat::new("phase1", self.p1_rounds as usize, self.p1_bits),
            PhaseStat::new("phase2", self.p2_rounds as usize, self.p2_bits),
        ]
    }
}

/// Result of running the even-cycle detector.
#[derive(Debug, Clone)]
pub struct EvenCycleReport {
    /// Whether any repetition rejected (i.e. a `C_2k` was detected or the
    /// graph was certified denser than `ex(n, C_2k)`).
    pub detected: bool,
    /// Repetitions actually executed (stops early on detection).
    pub repetitions_run: usize,
    /// Total rounds across all executed phases and repetitions.
    pub total_rounds: usize,
    /// Total bits across all executed phases and repetitions.
    pub total_bits: u64,
    /// The derived schedule (round budgets, thresholds).
    pub schedule: Schedule,
    /// Rounds of a single repetition (`R1 + R2`) — the quantity
    /// Theorem 1.1 bounds by `O(n^{1-1/(k(k-1))})`.
    pub rounds_per_repetition: usize,
    /// Traffic statistics aggregated over every executed phase run:
    /// scalar totals add up, `max_edge_round_bits` is the peak over all
    /// runs, and the per-round series are concatenated in execution
    /// order (Phase I of rep 0, Phase II of rep 0, Phase I of rep 1, …).
    pub stats: RunStats,
    /// Per-phase round/bit breakdown (`"phase1"` then `"phase2"`),
    /// aggregated over repetitions.
    pub phases: Vec<PhaseStat>,
}

impl EvenCycleReport {
    /// Renders the whole detector run as a schema-versioned
    /// [`RunReport`], with the Phase I / Phase II breakdown attached.
    /// Fault-free runs carry an all-zero fault tally.
    pub fn run_report(&self, label: &str) -> RunReport {
        let faults = FaultReport::default();
        let metrics = Metrics::from_run(&self.stats, &faults).snapshot();
        RunReport::from_stats(label, &self.stats, &faults, true, metrics)
            .with_phases(self.phases.clone())
    }
}

/// Observation hooks for an instrumented detector run.
///
/// An installed [`Collector`] receives the full structured event stream of
/// every phase simulation, *prefixed* with a [`SimEvent::Phase`] marker
/// (`"phase1"` / `"phase2"` plus the repetition index) before each engine
/// run, so the recorded trace segments carry phase attribution — this is
/// what lets [`congest::obsv::analyze::critical_path`] report the critical
/// path per phase. An installed [`Profiler`] times the engine's internal
/// stages across every phase run.
#[derive(Clone, Default)]
pub struct EvenCycleObserver {
    /// Structured-event sink shared by every phase simulation.
    pub collector: Option<Arc<dyn Collector>>,
    /// Engine self-profiler shared by every phase simulation.
    pub profiler: Option<Arc<Profiler>>,
}

impl EvenCycleObserver {
    /// An observer recording the event stream into `collector`.
    pub fn collecting<C: Collector + 'static>(collector: Arc<C>) -> Self {
        EvenCycleObserver {
            collector: Some(collector),
            profiler: None,
        }
    }

    /// Adds an engine self-profiler.
    pub fn with_profiler(mut self, p: Arc<Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    fn mark_phase(&self, name: &str, repetition: usize) {
        if let Some(c) = &self.collector {
            c.record(&SimEvent::Phase {
                name: name.into(),
                repetition,
            });
        }
    }

    fn install<'g>(&self, mut sim: Simulation<'g>) -> Simulation<'g> {
        if let Some(c) = &self.collector {
            sim = sim.collector_arc(Arc::clone(c));
        }
        if let Some(p) = &self.profiler {
            sim = sim.profiler(Arc::clone(p));
        }
        sim
    }
}

/// Runs the Theorem 1.1 detector on `g`.
pub fn detect_even_cycle(g: &Graph, cfg: EvenCycleConfig) -> Result<EvenCycleReport, SimError> {
    detect_even_cycle_observed(g, cfg, &EvenCycleObserver::default())
}

/// Runs the Theorem 1.1 detector on `g` with observation hooks installed
/// on every phase simulation.
///
/// Identical to [`detect_even_cycle`] (same seeds, same schedule, same
/// decisions) except that the observer's collector — if any — sees a
/// `Phase` marker followed by the full event stream of each phase run,
/// and the observer's profiler — if any — accumulates engine-stage
/// timings across the whole amplification loop.
pub fn detect_even_cycle_observed(
    g: &Graph,
    cfg: EvenCycleConfig,
    obs: &EvenCycleObserver,
) -> Result<EvenCycleReport, SimError> {
    // One staged topology for the whole amplification loop: both phases of
    // every repetition share the engine plan and only override seed and
    // round cap per run. Results are identical to per-phase one-shot
    // builds — staging is pure amortization.
    let prepared = obs.install(stage_even_cycle(g, &cfg)).prepare();
    run_amplification(&prepared, &cfg, obs)
}

/// The staged (but not yet prepared) fault-free detector simulation —
/// every topology-pure knob the amplification loop fixes up front:
/// bandwidth (derived from the schedule), shard count, the fusion
/// selector, and the early-termination flag.
fn stage_even_cycle<'g>(g: &'g Graph, cfg: &EvenCycleConfig) -> Simulation<'g> {
    assert!(cfg.k >= 2);
    let sched = Schedule::derive(g.n(), cfg.k, cfg.edge_bound_override);
    Simulation::on(g)
        .bandwidth(Bandwidth::Bits(sched.required_bandwidth.max(8)))
        .shards(cfg.shards)
        .fused(cfg.fused)
        .early_termination(cfg.early_termination)
}

/// Stages the fault-free detector's topology once, for reuse across many
/// [`detect_even_cycle_prepared`] calls. The staged configuration is a
/// pure function of the graph and the config's topology knobs (`k`,
/// `edge_bound_override`, `shards`, `fused`, `early_termination`) —
/// `seed` and `repetitions` ride in per run — so a service can cache the returned
/// handle keyed on those and skip the plan rebuild per query.
pub fn prepare_even_cycle(g: &Graph, cfg: &EvenCycleConfig) -> congest::Prepared {
    stage_even_cycle(g, cfg).prepare()
}

/// Runs the amplification loop on an already-prepared topology from
/// [`prepare_even_cycle`]. Byte-identical to [`detect_even_cycle`] with
/// the same config — preparation is pure amortization — provided
/// `prepared` was staged from the same graph and the same topology knobs.
pub fn detect_even_cycle_prepared(
    cfg: EvenCycleConfig,
    prepared: &congest::Prepared,
) -> Result<EvenCycleReport, SimError> {
    run_amplification(prepared, &cfg, &EvenCycleObserver::default())
}

/// The shared amplification loop: repeat (Phase I, Phase II) with fresh
/// per-repetition seeds on the staged topology until a rejection or the
/// repetition budget runs out.
fn run_amplification(
    prepared: &congest::Prepared,
    cfg: &EvenCycleConfig,
    obs: &EvenCycleObserver,
) -> Result<EvenCycleReport, SimError> {
    assert!(cfg.k >= 2);
    assert!(
        cfg.repetitions >= 1,
        "detector needs at least one repetition"
    );
    let sched = Schedule::derive(prepared.graph().n(), cfg.k, cfg.edge_bound_override);
    let mut agg: Option<RunStats> = None;
    let mut tally = PhaseTally::default();
    let mut detected = false;
    let mut reps = 0usize;

    for rep in 0..cfg.repetitions {
        reps += 1;
        let s1 = sched.clone();
        obs.mark_phase("phase1", rep);
        let out1 = prepared.run_with(
            &Overrides::new()
                .seed(cfg.seed ^ (rep as u64).wrapping_mul(2).wrapping_add(1))
                .max_rounds(sched.r1_rounds + 2),
            move |_| ColorBfsNode::new(s1.clone()),
        )?;
        tally.phase1(&out1.stats);
        match &mut agg {
            None => agg = Some(out1.stats.clone()),
            Some(a) => absorb_stats(a, &out1.stats),
        }
        if out1.network_rejects() {
            detected = true;
            break;
        }

        let s2 = sched.clone();
        obs.mark_phase("phase2", rep);
        let out2 = prepared.run_with(
            &Overrides::new()
                .seed(cfg.seed ^ (rep as u64).wrapping_mul(2).wrapping_add(2))
                .max_rounds(sched.r2_rounds + 2),
            move |_| LayerPrefixNode::new(s2.clone()),
        )?;
        tally.phase2(&out2.stats);
        if let Some(a) = &mut agg {
            absorb_stats(a, &out2.stats);
        }
        if out2.network_rejects() {
            detected = true;
            break;
        }
    }

    let stats = agg.expect("at least one repetition ran");
    Ok(EvenCycleReport {
        detected,
        repetitions_run: reps,
        total_rounds: stats.rounds,
        total_bits: stats.total_bits,
        rounds_per_repetition: sched.r1_rounds + sched.r2_rounds,
        schedule: sched,
        phases: tally.render(),
        stats,
    })
}

/// The Theorem 1.1 round bound `n^{1 - 1/(k(k-1))}` (without constants),
/// for plotting measured rounds against the predicted shape.
pub fn theorem_bound(n: usize, k: usize) -> f64 {
    (n as f64).powf(1.0 - 1.0 / (k as f64 * (k as f64 - 1.0)))
}

/// Runs *only Phase I* for one repetition — the ablation half that covers
/// cycles through high-degree nodes and nothing else.
pub fn run_phase1_once(g: &Graph, cfg: &EvenCycleConfig, rep: u64) -> Result<bool, SimError> {
    let sched = Schedule::derive(g.n(), cfg.k, cfg.edge_bound_override);
    let bandwidth = Bandwidth::Bits(sched.required_bandwidth.max(8));
    let s = sched.clone();
    let out = Simulation::on(g)
        .bandwidth(bandwidth)
        .seed(cfg.seed ^ rep.wrapping_mul(2).wrapping_add(1))
        .max_rounds(sched.r1_rounds + 2)
        .run(move |_| ColorBfsNode::new(s.clone()))?;
    Ok(out.network_rejects())
}

/// Runs *only Phase II* for one repetition — the ablation half that covers
/// cycles among low-degree nodes and nothing else.
pub fn run_phase2_once(g: &Graph, cfg: &EvenCycleConfig, rep: u64) -> Result<bool, SimError> {
    let sched = Schedule::derive(g.n(), cfg.k, cfg.edge_bound_override);
    let bandwidth = Bandwidth::Bits(sched.required_bandwidth.max(8));
    let s = sched.clone();
    let out = Simulation::on(g)
        .bandwidth(bandwidth)
        .seed(cfg.seed ^ rep.wrapping_mul(2).wrapping_add(2))
        .max_rounds(sched.r2_rounds + 2)
        .run(move |_| LayerPrefixNode::new(s.clone()))?;
    Ok(out.network_rejects())
}

// ---------------------------------------------------------------------------
// Fault-injected driver
// ---------------------------------------------------------------------------

/// Result of running the even-cycle detector under injected faults.
#[derive(Debug, Clone)]
pub struct FaultyEvenCycleReport {
    /// Whether any repetition ended with a *surviving* node rejecting
    /// (crashed nodes' frozen decisions are not protocol output).
    pub detected: bool,
    /// Repetitions actually executed (stops early on detection).
    pub repetitions_run: usize,
    /// Total physical rounds across all executed phases and repetitions
    /// (with a reliable transport this counts transport rounds, not
    /// virtual algorithm rounds).
    pub total_rounds: usize,
    /// Total bits across all executed phases and repetitions, including
    /// sequence-number/ack/checksum overhead when a transport is used.
    pub total_bits: u64,
    /// Fault counters aggregated over every executed engine run.
    pub faults: FaultReport,
    /// The derived schedule (round budgets, thresholds).
    pub schedule: Schedule,
    /// Traffic statistics aggregated over every executed phase run, same
    /// conventions as [`EvenCycleReport::stats`]. With a reliable
    /// transport these count physical traffic — headers, acks, and
    /// retransmissions included.
    pub stats: RunStats,
    /// Per-phase round/bit breakdown (`"phase1"` then `"phase2"`),
    /// aggregated over repetitions.
    pub phases: Vec<PhaseStat>,
    /// The weakest graceful-degradation verdict across all executed phase
    /// runs (`None` when every phase ran clean): the detector's answer is
    /// only as trustworthy as its least-healthy phase.
    pub degraded: Option<congest::Degraded>,
}

impl FaultyEvenCycleReport {
    /// Renders the whole faulty detector run as a schema-versioned
    /// [`RunReport`] carrying the aggregated fault tallies (including
    /// transport retransmission counters when an ARQ was used) and the
    /// degradation verdict, if any phase degraded.
    pub fn run_report(&self, label: &str) -> RunReport {
        let metrics = Metrics::from_run(&self.stats, &self.faults).snapshot();
        let n = self.stats.offsets.len().saturating_sub(1);
        RunReport::from_stats(
            label,
            &self.stats,
            &self.faults,
            self.degraded.is_none(),
            metrics,
        )
        .with_phases(self.phases.clone())
        .with_degradation(self.degraded.clone(), n)
    }
}

/// Keeps the weakest degradation verdict seen so far (lowest confidence
/// wins; any verdict beats none).
fn fold_degraded(acc: &mut Option<congest::Degraded>, next: &Option<congest::Degraded>) {
    if let Some(d) = next {
        if acc.as_ref().is_none_or(|a| d.confidence < a.confidence) {
            *acc = Some(d.clone());
        }
    }
}

/// Stages the faulty detector's topology once: the fault spec, and — when a
/// transport is configured — the ARQ envelope's bandwidth, are fixed across
/// the whole amplification loop, so both live in the staged configuration;
/// phases override only seed and (physical) round cap.
fn prepare_faulty(
    g: &Graph,
    inner_bandwidth: usize,
    faults: &FaultSpec,
    transport: Option<ReliableConfig>,
    obs: &EvenCycleObserver,
) -> congest::Prepared {
    let sim = obs.install(Simulation::on(g)).faults(faults.clone());
    match transport {
        None => sim.bandwidth(Bandwidth::Bits(inner_bandwidth)),
        Some(rcfg) => sim
            .bandwidth(Bandwidth::Bits(rcfg.required_bandwidth(inner_bandwidth)))
            .reliable_config(rcfg),
    }
    .prepare()
}

/// Runs the Theorem 1.1 detector on `g` with fault injection.
///
/// Every engine run (both phases of every repetition) is subjected to a
/// fresh model built from `faults`, deterministically from the same
/// per-repetition seeds the fault-free [`detect_even_cycle`] uses. With
/// `transport: Some(..)` both phases run behind the
/// [`congest::Reliable`] ARQ adapter, which recovers lost or corrupted
/// messages at the cost of extra rounds and header bits.
///
/// Detection requires a *surviving* node to reject. Loss, crashes and
/// link failures can only remove information from the bare algorithm
/// (Phase I tokens vanish, Phase II beacons and prefixes vanish), so a
/// faulty run may miss a planted `C_2k` but never falsely rejects a
/// `C_2k`-free graph.
pub fn detect_even_cycle_faulty(
    g: &Graph,
    cfg: EvenCycleConfig,
    faults: &FaultSpec,
    transport: Option<ReliableConfig>,
) -> Result<FaultyEvenCycleReport, SimError> {
    detect_even_cycle_faulty_observed(g, cfg, faults, transport, &EvenCycleObserver::default())
}

/// [`detect_even_cycle_faulty`] with observation hooks installed on every
/// phase simulation — same contract as [`detect_even_cycle_observed`].
pub fn detect_even_cycle_faulty_observed(
    g: &Graph,
    cfg: EvenCycleConfig,
    faults: &FaultSpec,
    transport: Option<ReliableConfig>,
    obs: &EvenCycleObserver,
) -> Result<FaultyEvenCycleReport, SimError> {
    assert!(cfg.k >= 2);
    assert!(
        cfg.repetitions >= 1,
        "detector needs at least one repetition"
    );
    let sched = Schedule::derive(g.n(), cfg.k, cfg.edge_bound_override);
    let inner_bandwidth = sched.required_bandwidth.max(8);
    let mut agg: Option<RunStats> = None;
    let mut tally = PhaseTally::default();
    let mut faults_seen = FaultReport::default();
    let mut degraded = None;
    let mut detected = false;
    let mut reps = 0usize;

    let prepared = prepare_faulty(g, inner_bandwidth, faults, transport, obs);
    let phase_rounds = |inner: usize| match transport {
        None => inner,
        Some(rcfg) => rcfg.physical_rounds(inner),
    };

    for rep in 0..cfg.repetitions {
        reps += 1;
        let s1 = sched.clone();
        obs.mark_phase("phase1", rep);
        let out1 = prepared.run_with(
            &Overrides::new()
                .seed(cfg.seed ^ (rep as u64).wrapping_mul(2).wrapping_add(1))
                .max_rounds(phase_rounds(sched.r1_rounds + 2)),
            move |_| ColorBfsNode::new(s1.clone()),
        )?;
        tally.phase1(&out1.stats);
        match &mut agg {
            None => agg = Some(out1.stats.clone()),
            Some(a) => absorb_stats(a, &out1.stats),
        }
        let hit1 = out1.surviving_node_rejects();
        faults_seen.absorb(&out1.faults);
        fold_degraded(&mut degraded, &out1.degraded);
        if hit1 {
            detected = true;
            break;
        }

        let s2 = sched.clone();
        obs.mark_phase("phase2", rep);
        let out2 = prepared.run_with(
            &Overrides::new()
                .seed(cfg.seed ^ (rep as u64).wrapping_mul(2).wrapping_add(2))
                .max_rounds(phase_rounds(sched.r2_rounds + 2)),
            move |_| LayerPrefixNode::new(s2.clone()),
        )?;
        tally.phase2(&out2.stats);
        if let Some(a) = &mut agg {
            absorb_stats(a, &out2.stats);
        }
        let hit2 = out2.surviving_node_rejects();
        faults_seen.absorb(&out2.faults);
        fold_degraded(&mut degraded, &out2.degraded);
        if hit2 {
            detected = true;
            break;
        }
    }

    let stats = agg.expect("at least one repetition ran");
    Ok(FaultyEvenCycleReport {
        detected,
        repetitions_run: reps,
        total_rounds: stats.rounds,
        total_bits: stats.total_bits,
        faults: faults_seen,
        schedule: sched,
        phases: tally.render(),
        stats,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;
    use rand::SeedableRng;

    fn chacha(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn schedule_sane_for_k2() {
        let s = Schedule::derive(100, 2, None);
        assert_eq!(s.degree_threshold, 100); // n^{1/(k-1)} = n
        assert_eq!(s.block_budgets.len(), 1);
        assert!(s.r1_rounds > 0 && s.r2_rounds > s.peel_rounds);
        assert!(s.required_bandwidth >= bits_for_domain(100));
    }

    #[test]
    fn schedule_blocks_for_k3() {
        let s = Schedule::derive(1000, 3, None);
        assert_eq!(s.block_budgets.len(), 2);
        // Block 1 budget multiplies by the degree threshold.
        assert_eq!(s.block_budgets[1], s.block_budgets[0] * s.degree_threshold);
        assert_eq!(
            s.block_send_start(1),
            s.block_send_start(0) + s.block_budgets[0]
        );
    }

    #[test]
    fn accepts_tree() {
        let mut rng = chacha(1);
        let g = generators::random_tree(60, &mut rng);
        let cfg = EvenCycleConfig::new(2).repetitions(40).seed(7);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(!rep.detected, "trees are C4-free");
    }

    #[test]
    fn accepts_odd_cycle() {
        let g = generators::cycle(31);
        let cfg = EvenCycleConfig::new(2).repetitions(40).seed(3);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(!rep.detected, "C31 contains no C4");
    }

    #[test]
    fn accepts_c4_free_incidence_graph() {
        let g = graphlib::turan::c4_free_incidence_graph(3);
        let cfg = EvenCycleConfig::new(2).repetitions(60).seed(11);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(!rep.detected, "incidence graph is C4-free");
    }

    #[test]
    fn detects_c4_in_k23() {
        // K_{2,3} contains C4; every vertex has low degree relative to the
        // k=2 threshold, so Phase II must find it.
        let g = generators::complete_bipartite(2, 3);
        let cfg = EvenCycleConfig::new(2).repetitions(4000).seed(5);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(rep.detected, "C4 in K_{{2,3}} must be detected");
        assert!(rep.repetitions_run <= 4000);
    }

    #[test]
    fn detects_planted_c4_in_sparse_graph() {
        let mut rng = chacha(9);
        let base = generators::random_tree(40, &mut rng);
        let (g, _) = generators::plant_cycle(&base, 4, &mut rng);
        let cfg = EvenCycleConfig::new(2).repetitions(4000).seed(13);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(rep.detected);
    }

    #[test]
    fn detects_c6_with_k3() {
        // Tight edge-bound override keeps the per-repetition schedule short
        // (M = 8 >= ex(6, C6) = 6 edges is still a valid Turán bound here).
        let g = generators::cycle(6);
        let cfg = EvenCycleConfig::new(3)
            .repetitions(60_000)
            .seed(1)
            .edge_bound(8);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(rep.detected, "C6 itself must be detected at k=3");
    }

    #[test]
    fn accepts_c5_with_k3() {
        let g = generators::cycle(5);
        let cfg = EvenCycleConfig::new(3).repetitions(50).seed(2);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(!rep.detected);
    }

    #[test]
    fn phase1_detects_cycle_through_high_degree_node() {
        // A C4 whose nodes also have many pendant edges: degrees exceed the
        // k=2 threshold only if we force it via the edge-bound override.
        // Build: C4 on 0..4, each cycle node gets (n/4) pendant leaves.
        let n = 40;
        let mut b = graphlib::GraphBuilder::new(n);
        for i in 0..4 {
            b.add_edge(i, (i + 1) % 4);
        }
        let mut next = 4;
        for i in 0..4 {
            for _ in 0..8 {
                b.add_edge(i, next);
                next += 1;
            }
        }
        let g = b.build();
        // Degree threshold for k=2 is n, so shrink it by overriding M... the
        // threshold comes from n^delta, not M; instead run k=2 Phase II
        // normally — it handles this graph (all degrees < n). Just verify
        // end-to-end detection.
        let cfg = EvenCycleConfig::new(2).repetitions(4000).seed(21);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(rep.detected);
    }

    #[test]
    fn rejects_overflow_on_dense_graph() {
        // A clique is far denser than the C4 Turán bound once n is large
        // enough; with a tiny edge-bound override the detector must reject
        // (and indeed K8 contains C4).
        let g = generators::clique(8);
        let cfg = EvenCycleConfig::new(2).repetitions(1).seed(4).edge_bound(4);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(rep.detected, "overflow certifies density > M");
    }

    #[test]
    fn rounds_match_schedule() {
        let g = generators::cycle(20); // C4-free, so all reps run
        let cfg = EvenCycleConfig::new(2).repetitions(3).seed(8);
        let rep = detect_even_cycle(&g, cfg).unwrap();
        assert!(!rep.detected);
        assert_eq!(rep.repetitions_run, 3);
        assert_eq!(
            rep.rounds_per_repetition,
            rep.schedule.r1_rounds + rep.schedule.r2_rounds
        );
    }

    #[test]
    fn theorem_bound_shape() {
        // k=2: exponent 1/2; k=3: exponent 5/6.
        assert!((theorem_bound(10_000, 2) - 100.0).abs() < 1e-6);
        let r = theorem_bound(64, 3);
        assert!((r - 64f64.powf(5.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn phase1_is_a_broadcast_congest_algorithm() {
        // Phase I only ever broadcasts, so it runs unchanged in the
        // broadcast-CONGEST variant ([10]'s model in the related work).
        let g = generators::complete_bipartite(4, 4);
        let sched = Schedule::derive(g.n(), 2, Some(2 * g.m()));
        let s = sched.clone();
        let out = Simulation::on(&g)
            .broadcast_only(true)
            .bandwidth(Bandwidth::Bits(sched.required_bandwidth.max(8)))
            .max_rounds(sched.r1_rounds + 2)
            .seed(3)
            .run(move |_| ColorBfsNode::new(s.clone()))
            .expect("broadcast-only must be accepted");
        assert!(out.completed);
    }

    #[test]
    fn phase2_is_a_broadcast_congest_algorithm() {
        let g = generators::cycle(12);
        let sched = Schedule::derive(g.n(), 2, Some(2 * g.m()));
        let s = sched.clone();
        let out = Simulation::on(&g)
            .broadcast_only(true)
            .bandwidth(Bandwidth::Bits(sched.required_bandwidth.max(8)))
            .max_rounds(sched.r2_rounds + 2)
            .seed(4)
            .run(move |_| LayerPrefixNode::new(s.clone()))
            .expect("broadcast-only must be accepted");
        assert!(out.completed);
    }

    #[test]
    fn amplification_reps_values() {
        assert_eq!(amplification_reps(2), 4 * 256);
        assert!(amplification_reps(3) > amplification_reps(2));
    }

    #[test]
    fn observed_run_labels_phases_and_yields_a_critical_path() {
        let mut rng = chacha(9);
        let base = generators::random_tree(40, &mut rng);
        let (g, _) = generators::plant_cycle(&base, 4, &mut rng);
        let log = Arc::new(congest::EventLog::new());
        let obs = EvenCycleObserver::collecting(Arc::clone(&log));
        let cfg = EvenCycleConfig::new(2).repetitions(4000).seed(13);
        let rep = detect_even_cycle_observed(&g, cfg, &obs).unwrap();
        assert!(rep.detected);
        // Same seeds, same outcome as the unobserved driver.
        let plain = detect_even_cycle(&g, cfg).unwrap();
        assert_eq!(plain.repetitions_run, rep.repetitions_run);
        assert_eq!(plain.total_bits, rep.total_bits);

        let events = log.take();
        let labels: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::Phase { name, .. } => Some(&**name),
                _ => None,
            })
            .collect();
        assert!(labels.contains(&"phase1"));
        assert!(labels.contains(&"phase2"));

        let viol = congest::obsv::check(&events);
        assert!(viol.is_empty(), "trace invariants violated: {viol:?}");
        let cp = congest::obsv::critical_path(&events);
        assert!(!cp.segments.is_empty());
        // No node reaches the k=2 degree threshold (n), so Phase I is
        // silent here; Phase II does all the work and must show a
        // non-trivial dependent-message chain.
        assert!(cp.phases.iter().any(|p| p.phase == "phase1"));
        assert!(cp
            .phases
            .iter()
            .any(|p| p.phase == "phase2" && p.max_path_bits > 0 && p.max_path_len > 1));
    }

    #[test]
    fn early_termination_preserves_decisions_and_saves_rounds() {
        // The detector's Phase II schedule is dominated by mostly-idle
        // block windows; once queues drain, early termination may skip
        // them. Detection outcome, repetition count, and traffic must be
        // unchanged — only idle rounds disappear.
        let mut rng = chacha(9);
        let base = generators::random_tree(40, &mut rng);
        let (g, _) = generators::plant_cycle(&base, 4, &mut rng);
        let cfg = EvenCycleConfig::new(2).repetitions(50).seed(13);
        let full = detect_even_cycle(&g, cfg).unwrap();
        let cut = detect_even_cycle(&g, cfg.early_termination(true)).unwrap();
        assert_eq!(cut.detected, full.detected);
        assert_eq!(cut.repetitions_run, full.repetitions_run);
        assert_eq!(cut.total_bits, full.total_bits);
        assert!(
            cut.total_rounds < full.total_rounds,
            "expected an idle tail to be skipped: {} vs {}",
            cut.total_rounds,
            full.total_rounds
        );
    }

    #[test]
    fn prepared_path_matches_one_shot() {
        let mut rng = chacha(9);
        let base = generators::random_tree(40, &mut rng);
        let (g, _) = generators::plant_cycle(&base, 4, &mut rng);
        let cfg = EvenCycleConfig::new(2).repetitions(60).seed(13);
        let prepared = prepare_even_cycle(&g, &cfg);
        let a = detect_even_cycle_prepared(cfg, &prepared).unwrap();
        let b = detect_even_cycle(&g, cfg).unwrap();
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.repetitions_run, b.repetitions_run);
        assert_eq!(a.total_rounds, b.total_rounds);
        assert_eq!(a.total_bits, b.total_bits);
        // The staged handle replays: a second run is identical.
        let c = detect_even_cycle_prepared(cfg, &prepared).unwrap();
        assert_eq!(c.total_bits, a.total_bits);
    }

    #[test]
    fn phase1_node_basic_flow() {
        // Directly exercise the Phase I state machine on a star center.
        let sched = Schedule::derive(10, 2, Some(5));
        let mut node = ColorBfsNode::new(sched);
        let ctx = NodeContext {
            index: 0,
            id: 3,
            neighbor_ids: vec![1, 2, 4, 5, 6],
            n: 10,
            round: 0,
        };
        let mut rng = chacha(0);
        let _ = node.init(&ctx, &mut rng);
        assert!(!node.halted());
    }
}
