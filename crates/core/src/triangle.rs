//! One-round triangle detection protocols (§5 setting).
//!
//! In the §5 lower bound each node holds, as input, a *scrambled* list of
//! potential-neighbor identifiers together with a bit per entry saying
//! whether that edge is actually present; the node then sends a single
//! `B`-bit message to each of its (actual) neighbors and must decide.
//!
//! We implement the natural family of one-round protocols the bound is
//! about: each node forwards a budget-limited portion of its
//! `(identifier, present)` list; a receiver rejects iff two of its own
//! neighbors are attested adjacent by one of the received messages. With
//! the full list this is exact (`B = Θ(n log n)`); with a `B`-bit budget it
//! degrades — experiment E4 measures exactly how, against the paper's
//! `Ω(Δ)` bound.

use congest::{
    bits_for_domain, BitSize, Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing,
};
use graphlib::{FxHashSet, Graph};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A node's §5-style input: potential neighbors with presence bits, in a
/// (possibly scrambled) fixed order. Actual neighbors are exactly the
/// entries with `present = true`.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyInput {
    /// `(identifier, present)` pairs.
    pub entries: Vec<(u64, bool)>,
}

impl AdjacencyInput {
    /// The trivial input for a node of a plain graph: all actual neighbors,
    /// all bits set.
    pub fn from_neighbors(neighbor_ids: &[u64]) -> Self {
        AdjacencyInput {
            entries: neighbor_ids.iter().map(|&id| (id, true)).collect(),
        }
    }
}

/// What portion of the input a node forwards in its single message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneRoundStrategy {
    /// The entire `(id, present)` list — exact detection,
    /// `B = (deg_T)(log N + 1)` bits.
    Full,
    /// The first `p` entries of the (scrambled) list. Since the order is
    /// scrambled, this is equivalent to a random subset of size `p` — the
    /// regime the §5 bound lower-bounds.
    Prefix(usize),
}

/// The message: a list of attested `(id, present)` pairs.
#[derive(Debug, Clone, Hash)]
pub struct PairList {
    /// The forwarded entries.
    pub pairs: Vec<(u64, bool)>,
    bits: u32,
}

impl BitSize for PairList {
    fn bit_size(&self) -> usize {
        self.bits as usize
    }
}

/// The pure message function: what a node with `input` sends under
/// `strategy`. Exposed separately so the E4 information estimator can
/// evaluate it outside the engine.
pub fn one_round_message(input: &AdjacencyInput, strategy: OneRoundStrategy) -> Vec<(u64, bool)> {
    match strategy {
        OneRoundStrategy::Full => input.entries.clone(),
        OneRoundStrategy::Prefix(p) => input.entries.iter().take(p).copied().collect(),
    }
}

/// The bit cost of a message of `pairs` entries with identifiers from a
/// namespace of size `namespace`.
pub fn message_bits(pairs: usize, namespace: u64) -> usize {
    pairs * (bits_for_domain(namespace.max(2) as usize) + 1)
}

/// The receiver-side decision rule: given my actual neighbor ids and the
/// received messages (one per neighbor port), do two of my neighbors appear
/// adjacent?
///
/// Membership tests run on a packed word table when the id universe is
/// small (the common case — ids are vertex indices), falling back to a
/// hash set for large ids. The sender-side membership check is hoisted out
/// of the per-pair loop either way.
pub fn one_round_decide(my_neighbors: &[u64], received: &[(u64, Vec<(u64, bool)>)]) -> bool {
    if let Some(nbr_set) = graphlib::bitset::IdSet::from_ids(my_neighbors) {
        for (sender, pairs) in received {
            if !nbr_set.contains(*sender) {
                continue;
            }
            for &(id, present) in pairs {
                if present && id != *sender && nbr_set.contains(id) {
                    return true;
                }
            }
        }
        return false;
    }
    let nbr_set: FxHashSet<u64> = my_neighbors.iter().copied().collect();
    for (sender, pairs) in received {
        if !nbr_set.contains(sender) {
            continue;
        }
        for &(id, present) in pairs {
            if present && id != *sender && nbr_set.contains(&id) {
                return true;
            }
        }
    }
    false
}

/// One-round triangle-detection node.
pub struct OneRoundTriangleNode {
    input: Option<AdjacencyInput>,
    strategy: OneRoundStrategy,
    namespace: u64,
    reject: bool,
    done: bool,
}

impl OneRoundTriangleNode {
    /// A node with an explicit §5-style input (pass `None` to derive the
    /// trivial input from the context at init).
    pub fn new(input: Option<AdjacencyInput>, strategy: OneRoundStrategy, namespace: u64) -> Self {
        OneRoundTriangleNode {
            input,
            strategy,
            namespace,
            reject: false,
            done: false,
        }
    }
}

impl NodeAlgorithm for OneRoundTriangleNode {
    type Msg = PairList;

    fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<PairList> {
        let input = self
            .input
            .get_or_insert_with(|| AdjacencyInput::from_neighbors(&ctx.neighbor_ids));
        let pairs = one_round_message(input, self.strategy);
        let bits = message_bits(pairs.len(), self.namespace) as u32;
        if ctx.degree() == 0 {
            self.done = true;
            return Vec::new();
        }
        vec![Outgoing::Broadcast(PairList { pairs, bits })]
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<PairList>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<PairList> {
        let received: Vec<(u64, Vec<(u64, bool)>)> = inbox
            .iter()
            .map(|(port, m)| (ctx.neighbor_ids[*port as usize], m.pairs.clone()))
            .collect();
        self.reject = one_round_decide(&ctx.neighbor_ids, &received);
        self.done = true;
        Vec::new()
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        if self.reject {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

/// Result of a one-round triangle run.
#[derive(Debug, Clone)]
pub struct OneRoundReport {
    /// Whether any node rejected.
    pub detected: bool,
    /// Maximum bits any node pushed through one edge (the protocol's `B`).
    pub bandwidth_used: usize,
    /// Total bits.
    pub total_bits: u64,
}

/// Runs a one-round protocol on a plain graph (trivial inputs). For the §5
/// template distribution use `lowerbounds::template`, which supplies
/// scrambled inputs.
pub fn detect_triangle_one_round(
    g: &Graph,
    strategy: OneRoundStrategy,
    seed: u64,
) -> Result<OneRoundReport, congest::SimError> {
    let namespace = g.n().max(2) as u64;
    let out = congest::Simulation::on(g)
        .bandwidth(congest::Bandwidth::Unbounded)
        .max_rounds(2)
        .seed(seed)
        .run(|_| OneRoundTriangleNode::new(None, strategy, namespace))?;
    Ok(OneRoundReport {
        detected: out.network_rejects(),
        bandwidth_used: out.stats.max_edge_round_bits,
        total_bits: out.stats.total_bits,
    })
}

/// Scrambles an adjacency input with the given RNG (the §5 permutation
/// `π_s` that hides which entry is which).
pub fn scramble_input<R: Rng>(input: &mut AdjacencyInput, rng: &mut R) {
    use rand::seq::SliceRandom;
    input.entries.shuffle(rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    #[test]
    fn full_strategy_is_exact() {
        let tri = generators::clique(3);
        let r = detect_triangle_one_round(&tri, OneRoundStrategy::Full, 0).unwrap();
        assert!(r.detected);

        let c6 = generators::cycle(6);
        let r = detect_triangle_one_round(&c6, OneRoundStrategy::Full, 0).unwrap();
        assert!(!r.detected);
    }

    #[test]
    fn full_matches_ground_truth_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        for t in 0..5 {
            let g = generators::gnp(20, 0.2, &mut rng);
            let truth = graphlib::cliques::count_triangles(&g) > 0;
            let r = detect_triangle_one_round(&g, OneRoundStrategy::Full, t).unwrap();
            assert_eq!(r.detected, truth, "trial {t}");
        }
    }

    #[test]
    fn prefix_zero_detects_nothing() {
        let tri = generators::clique(3);
        let r = detect_triangle_one_round(&tri, OneRoundStrategy::Prefix(0), 0).unwrap();
        assert!(!r.detected);
        assert_eq!(r.bandwidth_used, 0);
    }

    #[test]
    fn prefix_is_sound_never_false_positive() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..5 {
            let g = generators::random_bipartite(8, 8, 0.4, &mut rng);
            let r = detect_triangle_one_round(&g, OneRoundStrategy::Prefix(3), 1).unwrap();
            assert!(!r.detected, "bipartite graphs have no triangles");
        }
    }

    #[test]
    fn decision_rule_requires_attested_edge() {
        // My neighbors are 5 and 9; sender 5 attests (9, true) => triangle.
        assert!(one_round_decide(&[5, 9], &[(5, vec![(9, true)])]));
        // Attestation with bit = false is not an edge.
        assert!(!one_round_decide(&[5, 9], &[(5, vec![(9, false)])]));
        // Attested id that is not my neighbor: no triangle through me.
        assert!(!one_round_decide(&[5, 9], &[(5, vec![(7, true)])]));
    }

    #[test]
    fn decision_rule_handles_large_ids() {
        // Ids above the packed-set cap exercise the hash-set fallback.
        let big = 1u64 << 40;
        assert!(one_round_decide(
            &[big, big + 1],
            &[(big, vec![(big + 1, true)])]
        ));
        // Sender that is not my neighbor cannot attest a triangle through me.
        assert!(!one_round_decide(
            &[big, big + 1],
            &[(big + 2, vec![(big + 1, true)])]
        ));
        assert!(!one_round_decide(&[5, 9], &[(7, vec![(9, true)])]));
    }

    #[test]
    fn message_bit_accounting() {
        // 4 pairs over a namespace of 1024: 4 * (10 + 1).
        assert_eq!(message_bits(4, 1024), 44);
        assert_eq!(message_bits(0, 1024), 0);
    }

    #[test]
    fn bandwidth_grows_with_degree_under_full() {
        let g = generators::clique(8);
        let r = detect_triangle_one_round(&g, OneRoundStrategy::Full, 0).unwrap();
        // Each node sends 7 pairs of (log2(8)=3 + 1) bits = 28 bits per edge.
        assert_eq!(r.bandwidth_used, 7 * 4);
        assert!(r.detected);
    }
}
