//! `K_s` detection in `O(Δ)` (hence `O(n)`) rounds by neighbor-list
//! exchange — the folklore linear-round bound the introduction cites for
//! cliques (ref. \[DKO14\]).
//!
//! Every node streams its (sorted) neighbor-id list to all neighbors, one
//! identifier per round. After `Δ` rounds each node `v` knows every edge
//! between its neighbors, so `v` can check locally whether `v` together
//! with `s - 1` of its neighbors forms a `K_s`. Any clique copy is seen by
//! all of its members.

use congest::{
    bits_for_domain, BitSize, Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing,
};
use graphlib::{FxHashMap, FxHashSet, Graph, GraphBuilder};
use rand_chacha::ChaCha8Rng;

/// One streamed neighbor identifier.
#[derive(Debug, Clone, Hash)]
pub struct IdMsg {
    /// The neighbor id being announced.
    pub id: u64,
    bits: u32,
}

impl BitSize for IdMsg {
    fn bit_size(&self) -> usize {
        self.bits as usize
    }
}

/// Neighbor-exchange `K_s` detection node.
pub struct CliqueDetectNode {
    s: usize,
    horizon: usize,
    cursor: usize,
    /// Cap on how many witnesses this node keeps (1 for pure detection).
    witness_cap: usize,
    /// Edges learned among *my* neighbors: `known[u]` = set of `v` with
    /// `{u, v}` attested by `u`, restricted to my own neighbor set.
    known: FxHashMap<u64, FxHashSet<u64>>,
    my_nbrs: FxHashSet<u64>,
    /// The `K_s` copies through this node (as sorted id sets), up to the
    /// cap — this is the *listing* output the paper distinguishes from
    /// detection.
    witnesses: Vec<Vec<u64>>,
    reject: bool,
    done: bool,
}

impl CliqueDetectNode {
    /// Access the listed `K_s` witnesses after the run.
    pub fn witnesses(&self) -> &[Vec<u64>] {
        &self.witnesses
    }
}

impl CliqueDetectNode {
    /// A detector for `K_s`; `horizon` must be at least the maximum degree
    /// (the number of streaming rounds every node waits out). In a real
    /// network `Δ` is obtained with one extra `O(D)`-round aggregation; the
    /// driver [`detect_clique`] supplies it from the topology.
    pub fn new(s: usize, horizon: usize) -> Self {
        Self::with_witness_cap(s, horizon, 1)
    }

    /// A detector that also *lists* up to `witness_cap` `K_s` copies
    /// through this node.
    pub fn with_witness_cap(s: usize, horizon: usize, witness_cap: usize) -> Self {
        assert!(s >= 3, "K_s detection needs s >= 3");
        CliqueDetectNode {
            s,
            horizon,
            cursor: 0,
            witness_cap,
            known: FxHashMap::default(),
            my_nbrs: FxHashSet::default(),
            witnesses: Vec::new(),
            reject: false,
            done: false,
        }
    }

    fn next_broadcast(&mut self, ctx: &NodeContext) -> Outbox<IdMsg> {
        if self.cursor < ctx.neighbor_ids.len() {
            let id = ctx.neighbor_ids[self.cursor];
            self.cursor += 1;
            vec![Outgoing::Broadcast(IdMsg {
                id,
                bits: bits_for_domain(ctx.n.max(2)) as u32,
            })]
        } else {
            Vec::new()
        }
    }

    /// Lists the `K_{s-1}` cliques among my neighbors using the learned
    /// edges (both endpoints must attest an edge — each does, since both
    /// stream their full lists), i.e. the `K_s` copies through me.
    fn cliques_through_me(&self, ctx: &NodeContext, cap: usize) -> Vec<Vec<u64>> {
        // Build the induced known graph on my neighbors.
        let mut nbrs: Vec<u64> = self.my_nbrs.iter().copied().collect();
        nbrs.sort_unstable();
        let index: FxHashMap<u64, usize> =
            nbrs.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut b = GraphBuilder::new(nbrs.len());
        for (u, set) in &self.known {
            let Some(&iu) = index.get(u) else { continue };
            for v in set {
                if let Some(&iv) = index.get(v) {
                    b.add_edge(iu, iv);
                }
            }
        }
        let local = b.build();
        graphlib::cliques::list_ksub(&local, self.s - 1, cap)
            .into_iter()
            .map(|c| {
                let mut ids: Vec<u64> = c.iter().map(|&i| nbrs[i as usize]).collect();
                ids.push(ctx.id);
                ids.sort_unstable();
                ids
            })
            .collect()
    }
}

impl NodeAlgorithm for CliqueDetectNode {
    type Msg = IdMsg;

    fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<IdMsg> {
        self.my_nbrs = ctx.neighbor_ids.iter().copied().collect();
        self.next_broadcast(ctx)
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<IdMsg>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<IdMsg> {
        for (port, msg) in inbox {
            let sender = ctx.neighbor_ids[*port as usize];
            if self.my_nbrs.contains(&msg.id) {
                self.known.entry(sender).or_default().insert(msg.id);
            }
        }
        if ctx.round >= self.horizon {
            self.witnesses = self.cliques_through_me(ctx, self.witness_cap);
            self.reject = !self.witnesses.is_empty();
            self.done = true;
            return Vec::new();
        }
        self.next_broadcast(ctx)
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        if self.reject {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

/// Outcome of a clique-detection run.
#[derive(Debug, Clone)]
pub struct CliqueDetectReport {
    /// Whether a `K_s` was found.
    pub detected: bool,
    /// Rounds used (`Δ + 1`).
    pub rounds: usize,
    /// Total bits.
    pub total_bits: u64,
}

/// Runs neighbor-exchange `K_s` detection on `g`.
pub fn detect_clique(g: &Graph, s: usize) -> Result<CliqueDetectReport, congest::SimError> {
    let horizon = g.max_degree() + 1;
    let out = congest::Simulation::on(g)
        .bandwidth(congest::Bandwidth::Bits(bits_for_domain(g.n().max(2))))
        .max_rounds(horizon + 2)
        .run(|_| CliqueDetectNode::new(s, horizon))?;
    Ok(CliqueDetectReport {
        detected: out.network_rejects(),
        rounds: out.stats.rounds,
        total_bits: out.stats.total_bits,
    })
}

/// Triangle detection (`K_3`) via neighbor exchange — `O(Δ)` rounds.
pub fn detect_triangle(g: &Graph) -> Result<CliqueDetectReport, congest::SimError> {
    detect_clique(g, 3)
}

/// Result of a CONGEST `K_s` *listing* run (the paper distinguishes
/// listing — every copy must be output by some node — from detection).
#[derive(Debug, Clone)]
pub struct CliqueListReport {
    /// All `K_s` copies, as sorted id sets, deduplicated across nodes.
    pub cliques: Vec<Vec<u64>>,
    /// Rounds used (`Δ + 1`).
    pub rounds: usize,
    /// Total bits.
    pub total_bits: u64,
}

/// Lists every `K_s` of `g` in `O(Δ)` CONGEST rounds: each copy is found
/// (and output) by each of its members; the driver deduplicates. This is
/// the CONGEST counterpart of the congested-clique listing in
/// `lowerbounds::listing`.
pub fn list_cliques_congest(g: &Graph, s: usize) -> Result<CliqueListReport, congest::SimError> {
    let horizon = g.max_degree() + 1;
    let (out, nodes) = congest::Simulation::on(g)
        .bandwidth(congest::Bandwidth::Bits(bits_for_domain(g.n().max(2))))
        .max_rounds(horizon + 2)
        .run_with_nodes(|_| CliqueDetectNode::with_witness_cap(s, horizon, usize::MAX))?;
    let mut cliques: Vec<Vec<u64>> = nodes
        .iter()
        .flat_map(|n| n.witnesses().iter().cloned())
        .collect();
    cliques.sort();
    cliques.dedup();
    Ok(CliqueListReport {
        cliques,
        rounds: out.stats.rounds,
        total_bits: out.stats.total_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;
    use rand::SeedableRng;

    #[test]
    fn detects_triangle_in_k3() {
        let r = detect_triangle(&generators::clique(3)).unwrap();
        assert!(r.detected);
    }

    #[test]
    fn no_triangle_in_c6() {
        let r = detect_triangle(&generators::cycle(6)).unwrap();
        assert!(!r.detected);
    }

    #[test]
    fn no_triangle_in_bipartite() {
        let r = detect_triangle(&generators::complete_bipartite(5, 5)).unwrap();
        assert!(!r.detected);
    }

    #[test]
    fn detects_planted_triangle() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let base = generators::random_tree(30, &mut rng);
        let (g, _) = generators::plant_cycle(&base, 3, &mut rng);
        let r = detect_triangle(&g).unwrap();
        assert!(r.detected);
    }

    #[test]
    fn k4_detection() {
        let g = generators::clique(4).disjoint_union(&generators::cycle(5));
        let r = detect_clique(&g, 4).unwrap();
        assert!(r.detected);
        let r5 = detect_clique(&g, 5).unwrap();
        assert!(!r5.detected);
    }

    #[test]
    fn k5_in_dense_gnp() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let g = generators::gnp(30, 0.8, &mut rng);
        let truth = graphlib::cliques::count_ksub(&g, 5) > 0;
        let r = detect_clique(&g, 5).unwrap();
        assert_eq!(r.detected, truth);
    }

    #[test]
    fn rounds_are_max_degree_plus_one() {
        let g = generators::star(9); // Δ = 9
        let r = detect_triangle(&g).unwrap();
        assert!(!r.detected);
        assert_eq!(r.rounds, 10);
    }

    #[test]
    fn listing_is_complete_and_exact() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let g = generators::gnp(20, 0.4, &mut rng);
        for s in [3usize, 4] {
            let listed = list_cliques_congest(&g, s).unwrap();
            // Identifiers equal indices here, so compare directly.
            let mut truth: Vec<Vec<u64>> = graphlib::cliques::list_ksub(&g, s, usize::MAX)
                .into_iter()
                .map(|c| c.into_iter().map(u64::from).collect())
                .collect();
            truth.sort();
            assert_eq!(listed.cliques, truth, "s={s}");
        }
    }

    #[test]
    fn listing_rounds_match_detection_rounds() {
        let g = generators::clique(8);
        let det = detect_clique(&g, 3).unwrap();
        let lst = list_cliques_congest(&g, 3).unwrap();
        assert_eq!(det.rounds, lst.rounds);
        assert_eq!(lst.cliques.len(), 56);
    }

    #[test]
    fn agreement_with_ground_truth_on_random_graphs() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for trial in 0..6 {
            let g = generators::gnp(24, 0.15 + 0.05 * trial as f64, &mut rng);
            let truth = graphlib::cliques::count_triangles(&g) > 0;
            let r = detect_triangle(&g).unwrap();
            assert_eq!(r.detected, truth, "trial {trial}");
        }
    }
}
