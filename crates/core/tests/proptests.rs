//! Property-based tests of the detection algorithms: soundness (never
//! reject an H-free graph) is the invariant randomized detectors must hold
//! unconditionally; completeness is probabilistic and covered by unit and
//! integration tests.

use graphlib::{generators, Graph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use subgraph_detection as detection;

proptest! {
    // Trees are C_2k-free for every k: the even-cycle detector must accept.
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn even_cycle_detector_sound_on_trees(n in 4usize..40, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = generators::random_tree(n, &mut rng);
        let cfg = detection::EvenCycleConfig::new(2).repetitions(3).seed(seed);
        let rep = detection::detect_even_cycle(&t, cfg).unwrap();
        prop_assert!(!rep.detected, "no C4 in a tree");
    }

    #[test]
    fn even_cycle_detector_sound_on_odd_cycles(len in 2usize..14, seed in any::<u64>()) {
        let g = generators::cycle(2 * len + 3);
        let cfg = detection::EvenCycleConfig::new(2).repetitions(3).seed(seed);
        let rep = detection::detect_even_cycle(&g, cfg).unwrap();
        prop_assert!(!rep.detected, "odd cycles contain no C4");
    }

    #[test]
    fn triangle_detectors_sound_on_bipartite(a in 2usize..8, b in 2usize..8, p in 0.1f64..0.9, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::random_bipartite(a, b, p, &mut rng);
        prop_assert!(!detection::detect_triangle(&g).unwrap().detected);
        prop_assert!(
            !detection::detect_triangle_one_round(&g, detection::OneRoundStrategy::Full, seed)
                .unwrap()
                .detected
        );
    }

    #[test]
    fn neighbor_exchange_complete_and_sound(n in 4usize..16, m in 0usize..40, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let max = n * (n - 1) / 2;
        let g = generators::gnm(n, m.min(max), &mut rng);
        let truth = graphlib::cliques::count_triangles(&g) > 0;
        prop_assert_eq!(detection::detect_triangle(&g).unwrap().detected, truth);
    }

    #[test]
    fn one_round_decision_is_sound(
        nbrs in proptest::collection::vec(0u64..50, 1..6),
        attested in proptest::collection::vec((0u64..50, 0u64..50, any::<bool>()), 0..10)
    ) {
        // If the rule fires, there must exist a sender in my neighborhood
        // attesting (with bit = 1) another of my neighbors.
        let received: Vec<(u64, Vec<(u64, bool)>)> = attested
            .iter()
            .map(|&(s, id, b)| (s, vec![(id, b)]))
            .collect();
        let fired = detection::triangle::one_round_decide(&nbrs, &received);
        let witness = attested.iter().any(|&(s, id, b)| {
            b && id != s && nbrs.contains(&s) && nbrs.contains(&id)
        });
        prop_assert_eq!(fired, witness);
    }

    #[test]
    fn local_and_gather_agree(n in 5usize..18, m in 4usize..30, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let max = n * (n - 1) / 2;
        let mut g = generators::gnm(n, m.min(max), &mut rng);
        if !graphlib::components::is_connected(&g) {
            // Connect it with a spanning path overlay for the gather run.
            let mut edges: Vec<(u32, u32)> = g.edges().collect();
            for v in 1..n {
                edges.push((v as u32 - 1, v as u32));
            }
            g = Graph::from_edges(n, &edges);
        }
        let pat = generators::cycle(3);
        let a = detection::detect_local(&g, &pat).unwrap().detected;
        let b = detection::detect_gather(&g, &pat).unwrap().detected;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tree_detector_sound_when_pattern_absent(n in 6usize..24, seed in any::<u64>()) {
        // A path host contains no K_{1,3} star, ever.
        let g = generators::path(n);
        let pattern = detection::TreePattern::star(3);
        let rep = detection::detect_tree(&g, &pattern, 5, seed).unwrap();
        prop_assert!(!rep.detected);
    }

    #[test]
    fn schedule_monotone_in_n(n1 in 8usize..200, delta in 1usize..200) {
        let n2 = n1 + delta;
        let s1 = detection::Schedule::derive(n1, 2, None);
        let s2 = detection::Schedule::derive(n2, 2, None);
        prop_assert!(s2.r1_rounds >= s1.r1_rounds);
        prop_assert!(s2.edge_bound >= s1.edge_bound);
    }
}
