//! The sharding and fusion referee: the sharded round engine must be
//! *byte-identical* to the 1-shard reference at every shard count, and the
//! fused single-sweep send pass must be byte-identical to the pre-fusion
//! account → stage → deliver reference.
//!
//! The shard count only changes how the send passes are parallelized, and
//! the fusion flag only changes how many sweeps they take; every
//! observable of a run — per-node inboxes (content *and* order), the full
//! structured event stream, fault tallies and their per-round series, and
//! the traffic stats — must not move. check.sh runs this suite under
//! `RAYON_NUM_THREADS=1` and `=4`, so the matrix covers shard counts ×
//! thread counts × {fused, pre-fusion}.

use congest::{
    Bandwidth, BitString, CrashStop, Decision, FaultSpec, Inbox, NodeAlgorithm, NodeContext,
    Outbox, Outgoing, SimEvent, Simulation,
};
use graphlib::{generators, Graph};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex};

/// Records every event in arrival order, verbatim — unlike
/// [`congest::TraceBuffer`], which sorts and summarizes, this is the
/// byte-level view of the stream.
#[derive(Default)]
struct EventLog(Mutex<Vec<SimEvent>>);

impl congest::Collector for EventLog {
    fn record(&self, ev: &SimEvent) {
        self.0.lock().unwrap().push(ev.clone());
    }
}

/// One node's observed inboxes: per round, the `(index, port, payload)`
/// triples in arrival order.
type NodeLog = Arc<Mutex<Vec<Vec<(usize, u32, u64)>>>>;

/// Sends RNG-driven unicasts and broadcasts for `rounds` rounds while
/// logging every inbox it sees. Node RNG streams depend only on
/// `(seed, node)`, so the traffic pattern itself is shard-independent;
/// what this pins is the engine's routing, fault adjudication, and
/// inbox-merge order.
struct Gossip {
    rounds: usize,
    done: bool,
    log: NodeLog,
}

impl Gossip {
    fn chatter(&self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<BitString> {
        let deg = ctx.degree();
        if deg == 0 {
            return Vec::new();
        }
        (0..rng.gen_range(0..=3usize))
            .map(|_| {
                let m = BitString::from_uint(rng.gen::<u64>() & 0xFFFF, 16);
                if rng.gen_bool(0.4) {
                    Outgoing::Broadcast(m)
                } else {
                    Outgoing::Unicast(rng.gen_range(0..deg) as u32, m)
                }
            })
            .collect()
    }
}

impl NodeAlgorithm for Gossip {
    type Msg = BitString;

    fn init(&mut self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<BitString> {
        self.chatter(ctx, rng)
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<BitString>,
        rng: &mut ChaCha8Rng,
    ) -> Outbox<BitString> {
        self.log.lock().unwrap().push(
            inbox
                .iter()
                .map(|(p, m)| (ctx.index, *p, m.to_uint()))
                .collect(),
        );
        if ctx.round >= self.rounds {
            self.done = true;
            return Vec::new();
        }
        self.chatter(ctx, rng)
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        Decision::Accept
    }
}

/// Everything observable about one run, for exact comparison.
#[derive(PartialEq, Debug)]
struct Observed {
    inboxes: Vec<Vec<Vec<(usize, u32, u64)>>>,
    events: Vec<SimEvent>,
    total_bits: u64,
    per_round_bits: Vec<u64>,
    directed_edge_bits: Vec<u64>,
    delivered: u64,
    dropped: u64,
    corrupted: u64,
    dropped_per_round: Vec<u64>,
    corrupted_per_round: Vec<u64>,
    crashed: Vec<(usize, usize)>,
}

fn observe(
    g: &Graph,
    seed: u64,
    rounds: usize,
    faults: &FaultSpec,
    shards: usize,
    fused: bool,
) -> Observed {
    let logs: Vec<NodeLog> = (0..g.n())
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let events = Arc::new(EventLog::default());
    let out = Simulation::on(g)
        .bandwidth(Bandwidth::Bits(256))
        .seed(seed)
        .shards(shards)
        .fused(fused)
        .faults(faults.clone())
        .collector_arc(events.clone())
        .max_rounds(rounds + 2)
        .run(|v| Gossip {
            rounds,
            done: false,
            log: Arc::clone(&logs[v]),
        })
        .unwrap();
    let stream = events.0.lock().unwrap().clone();
    Observed {
        inboxes: logs.iter().map(|l| l.lock().unwrap().clone()).collect(),
        events: stream,
        total_bits: out.stats.total_bits,
        per_round_bits: out.stats.per_round_bits.clone(),
        directed_edge_bits: out.stats.directed_edge_bits.clone(),
        delivered: out.faults.delivered,
        dropped: out.faults.dropped,
        corrupted: out.faults.corrupted,
        dropped_per_round: out.faults.dropped_per_round.clone(),
        corrupted_per_round: out.faults.corrupted_per_round.clone(),
        crashed: out.faults.crashed.clone(),
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..14).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..40)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The full referee: loss + corruption + a crash, inboxes, the raw
    // event stream, and every tally pinned across shard counts {1, 2, 7}.
    #[test]
    fn sharded_run_is_byte_identical_to_one_shard(
        g in arb_graph(),
        seed in any::<u64>(),
        rounds in 1usize..4,
        loss in 0.0f64..0.5,
        flip in 0.0f64..0.3,
    ) {
        let faults = FaultSpec::Stack(vec![
            FaultSpec::IndependentLoss(loss),
            FaultSpec::BitFlip(flip),
            FaultSpec::CrashStop(CrashStop::at(vec![(g.n() / 2, 2)])),
        ]);
        let reference = observe(&g, seed, rounds, &faults, 1, true);
        for shards in [2usize, 7] {
            let run = observe(&g, seed, rounds, &faults, shards, true);
            prop_assert_eq!(&run, &reference, "shards = {}", shards);
        }
    }

    // The fusion referee: the fused single-sweep send pass against the
    // pre-fusion three-pass reference, across shard counts, under the same
    // loss + corruption + crash stack. Any divergence in accounting order,
    // fault adjudication, or delivery interleaving shows up here.
    #[test]
    fn fused_run_is_byte_identical_to_prefusion_reference(
        g in arb_graph(),
        seed in any::<u64>(),
        rounds in 1usize..4,
        loss in 0.0f64..0.5,
        flip in 0.0f64..0.3,
    ) {
        let faults = FaultSpec::Stack(vec![
            FaultSpec::IndependentLoss(loss),
            FaultSpec::BitFlip(flip),
            FaultSpec::CrashStop(CrashStop::at(vec![(g.n() / 2, 2)])),
        ]);
        let reference = observe(&g, seed, rounds, &faults, 1, false);
        for shards in [1usize, 2, 7] {
            let run = observe(&g, seed, rounds, &faults, shards, true);
            prop_assert_eq!(&run, &reference, "fused, shards = {}", shards);
        }
    }
}

/// Deterministic spot-check at scale-ish sizes (larger than the proptest
/// graphs, more shards than nodes in one shard band), fault-free and
/// fault-heavy.
#[test]
fn shard_matrix_spot_check() {
    for (n, d) in [(64usize, 6usize), (257, 4)] {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::bounded_degree(n, d, &mut rng);
        for faults in [FaultSpec::None, FaultSpec::IndependentLoss(0.3)] {
            // The pre-fusion single-shard run anchors both referees: the
            // fused engine must match it at every shard count.
            let reference = observe(&g, 5, 3, &faults, 1, false);
            for shards in [1usize, 2, 7, 64, 1000] {
                let run = observe(&g, 5, 3, &faults, shards, true);
                assert_eq!(run, reference, "n = {n}, shards = {shards}");
            }
        }
    }
}
