//! Property-based tests of the simulators' accounting invariants.

use congest::{
    bits_for_domain, Bandwidth, BitSize, BitString, CrashStop, Decision, FaultSpec, FlightConfig,
    FlightRecorder, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing, Simulation, TraceBuffer,
    TraceKind,
};
use graphlib::{generators, Graph};
use proptest::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Broadcasts `payload_bits` of zeros for `rounds` rounds, then halts.
struct Chatter {
    rounds: usize,
    payload_bits: usize,
    done: bool,
}

impl NodeAlgorithm for Chatter {
    type Msg = BitString;

    fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<BitString> {
        if ctx.degree() == 0 || self.rounds == 0 {
            self.done = true;
            return Vec::new();
        }
        vec![Outgoing::Broadcast(BitString::from_uint(
            0,
            self.payload_bits,
        ))]
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        _inbox: &Inbox<BitString>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<BitString> {
        if ctx.round >= self.rounds {
            self.done = true;
            return Vec::new();
        }
        vec![Outgoing::Broadcast(BitString::from_uint(
            0,
            self.payload_bits,
        ))]
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        Decision::Accept
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..16).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..40)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #[test]
    fn total_bits_equals_directed_sum(g in arb_graph(), rounds in 1usize..5, bits in 1usize..16) {
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(bits))
            .run(|_| Chatter { rounds, payload_bits: bits, done: false })
            .unwrap();
        let directed: u64 = out.stats.directed_edge_bits.iter().sum();
        prop_assert_eq!(directed, out.stats.total_bits);
        // Every live node broadcast `bits` on each port, `rounds` times.
        prop_assert_eq!(out.stats.total_bits, (2 * g.m() * bits * rounds) as u64);
        prop_assert!(out.stats.max_edge_round_bits <= bits);
    }

    #[test]
    fn engine_is_deterministic(g in arb_graph(), seed in any::<u64>()) {
        let run = || Simulation::on(&g)
            .seed(seed)
            .bandwidth(Bandwidth::Bits(8))
            .run(|_| Chatter { rounds: 2, payload_bits: 8, done: false })
            .unwrap();
        let (a, b) = (run(), run());
        prop_assert_eq!(a.stats.total_bits, b.stats.total_bits);
        prop_assert_eq!(a.stats.rounds, b.stats.rounds);
        prop_assert_eq!(a.decisions.len(), b.decisions.len());
    }

    #[test]
    fn bandwidth_violations_always_caught(bits in 9usize..64) {
        let g = generators::cycle(4);
        let res = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(8))
            .run(|_| Chatter { rounds: 1, payload_bits: bits, done: false });
        prop_assert!(res.is_err());
    }

    #[test]
    fn cut_traffic_never_exceeds_total(g in arb_graph(), mask in any::<u16>()) {
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(8))
            .run(|_| Chatter { rounds: 1, payload_bits: 8, done: false })
            .unwrap();
        let side: Vec<bool> = (0..g.n()).map(|v| mask >> (v % 16) & 1 == 1).collect();
        prop_assert!(out.stats.bits_across_cut(&g, &side) <= out.stats.total_bits);
    }

    #[test]
    fn bitstring_uint_roundtrip(value in any::<u64>(), width in 1usize..64) {
        let masked = value & ((1u64 << width) - 1);
        let b = BitString::from_uint(masked, width);
        prop_assert_eq!(b.len(), width);
        prop_assert_eq!(b.to_uint(), masked);
    }

    #[test]
    fn bits_for_domain_is_minimal(domain in 2usize..1_000_000) {
        let b = bits_for_domain(domain);
        prop_assert!(1usize << b >= domain, "2^{b} must cover {domain}");
        if b > 1 {
            prop_assert!(1usize << (b - 1) < domain, "b is minimal");
        }
    }

    #[test]
    fn prefix_code_of_fixed_width_strings(a in any::<u32>(), b in any::<u32>(), w in 1usize..32) {
        let mask = (1u64 << w) - 1;
        let x = BitString::from_uint(a as u64 & mask, w);
        let y = BitString::from_uint(b as u64 & mask, w);
        // Fixed-width strings form a prefix code: prefix implies equality.
        if x.is_prefix_of(&y) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn bitstring_single_bit_corruption_is_detectable_and_invertible(
        value in any::<u64>(),
        width in 1usize..64,
        bit in any::<usize>(),
    ) {
        let masked = value & ((1u64 << width) - 1);
        let orig = BitString::from_uint(masked, width);
        let mut c = orig.clone();
        prop_assert!(c.corrupt_bit(bit), "non-empty strings must corrupt");
        // Detectable: the corrupted string differs in exactly one position,
        // so any parity bit over the payload catches it.
        let hamming = orig.bits().iter().zip(c.bits()).filter(|(a, b)| a != b).count();
        prop_assert_eq!(hamming, 1);
        prop_assert_ne!(c.to_uint(), masked);
        // Invertible: flipping the same wire bit restores the original —
        // corruption is an involution, not data loss.
        prop_assert!(c.corrupt_bit(bit));
        prop_assert_eq!(c.to_uint(), masked);
        prop_assert_eq!(c.bit_size(), width);
    }

    #[test]
    fn fault_streams_replay_byte_for_byte_from_seed(
        g in arb_graph(),
        seed in any::<u64>(),
        which in 0usize..5,
        p in 0.0f64..0.9,
        q in 0.05f64..0.9,
    ) {
        let spec = match which {
            0 => FaultSpec::IndependentLoss(p),
            1 => FaultSpec::GilbertElliott(p, q, p / 2.0, q),
            2 => FaultSpec::CrashStop(CrashStop::random(1, 2)),
            3 => FaultSpec::BitFlip(p),
            _ => FaultSpec::Stack(vec![
                FaultSpec::IndependentLoss(p / 2.0),
                FaultSpec::BitFlip(q),
            ]),
        };
        let run = || Simulation::on(&g)
            .seed(seed)
            .bandwidth(Bandwidth::Bits(8))
            .faults(spec.clone())
            .max_rounds(8)
            .run(|_| Chatter { rounds: 3, payload_bits: 8, done: false })
            .unwrap();
        let (a, b) = (run(), run());
        prop_assert_eq!(&a.faults, &b.faults, "fault streams must be a pure function of the seed");
        prop_assert_eq!(a.stats.total_bits, b.stats.total_bits);
        prop_assert_eq!(a.stats.rounds, b.stats.rounds);
        prop_assert_eq!(a.decisions, b.decisions);
        // Conservation: per-round series account for every counted fault.
        prop_assert_eq!(a.faults.dropped_per_round.iter().sum::<u64>(), a.faults.dropped);
        prop_assert_eq!(a.faults.corrupted_per_round.iter().sum::<u64>(), a.faults.corrupted);
    }

    // The flight recorder's streamed per-round aggregates must equal a
    // fold of the full trace on the same seeded run — the recorder never
    // sees per-event state it could disagree about — and its dump must be
    // byte-identical at any engine shard count. Crash-free fault specs on
    // purpose: a crashed receiver's undelivered messages count in the
    // `RoundEnd` drop tally without a per-message `Drop` event, so only
    // crash-free runs make the full trace an exact drop oracle.
    #[test]
    fn flight_aggregates_match_full_trace_fold(
        g in arb_graph(),
        seed in any::<u64>(),
        loss in 0.0f64..0.4,
        flip in 0.0f64..0.4,
    ) {
        let mut dumps = Vec::new();
        for shards in [1usize, 2, 7] {
            let trace = TraceBuffer::new(1 << 14);
            let rec = Arc::new(FlightRecorder::new(FlightConfig {
                ring_rounds: 4,
                ring_events_per_round: 64,
                sample_capacity: 16,
                top_k: 4,
                ..FlightConfig::default()
            }));
            let out = Simulation::on(&g)
                .seed(seed)
                .bandwidth(Bandwidth::Bits(8))
                .faults(FaultSpec::Stack(vec![
                    FaultSpec::IndependentLoss(loss),
                    FaultSpec::BitFlip(flip),
                ]))
                .max_rounds(6)
                .shards(shards)
                .collector(trace.clone())
                .flight_recorder(Arc::clone(&rec))
                .run(|_| Chatter { rounds: 3, payload_bits: 8, done: false })
                .unwrap();
            prop_assert_eq!(trace.dropped(), 0, "oracle trace must be complete");
            // Fold the full trace per round; compare against the recorder's
            // streamed aggregates.
            let count_by_round = |kind: TraceKind| {
                let mut by_round = std::collections::HashMap::new();
                for ev in trace.events_of(kind) {
                    *by_round.entry(ev.round).or_insert(0u64) += 1;
                }
                by_round
            };
            let drops = count_by_round(TraceKind::Drop);
            let corrupts = count_by_round(TraceKind::Corrupt);
            let aggs = rec.aggregates();
            prop_assert_eq!(aggs.len() as u64, rec.totals().rounds);
            prop_assert_eq!(aggs.len(), out.stats.rounds);
            for agg in &aggs {
                prop_assert_eq!(
                    agg.dropped,
                    drops.get(&agg.round).copied().unwrap_or(0),
                    "round {} drop tally disagrees with the trace fold", agg.round
                );
                prop_assert_eq!(
                    agg.corrupted,
                    corrupts.get(&agg.round).copied().unwrap_or(0),
                    "round {} corruption tally disagrees with the trace fold", agg.round
                );
            }
            prop_assert_eq!(rec.totals().dropped, out.faults.dropped);
            prop_assert_eq!(rec.totals().corrupted, out.faults.corrupted);
            prop_assert_eq!(
                rec.sends_seen() as usize,
                trace.events_of(TraceKind::Send).len(),
                "every traced send must be offered to the reservoir"
            );
            prop_assert_eq!(
                rec.samples_len() as u64,
                rec.sends_seen().min(16),
                "reservoir law: exactly min(capacity, sends_seen) samples"
            );
            dumps.push(rec.dump());
        }
        prop_assert_eq!(&dumps[1], &dumps[0], "dump at 2 shards differs from 1");
        prop_assert_eq!(&dumps[2], &dumps[0], "dump at 7 shards differs from 1");
    }
}
