//! Bounded-collector overflow is surfaced, not silent: a [`TraceBuffer`]
//! past capacity reports its dropped-event count through the run's
//! [`MetricsSnapshot`] as `trace.dropped_events` — and with it through
//! every run report embedding one. Untruncated runs omit the key, so the
//! metric's presence *is* the overflow signal.
//!
//! [`MetricsSnapshot`]: congest::MetricsSnapshot

use congest::{
    Bandwidth, BitString, Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing,
    Simulation, TraceBuffer,
};
use graphlib::generators;
use rand_chacha::ChaCha8Rng;

/// Broadcasts 8 bits per round for `rounds` rounds, then halts.
struct Chatter {
    rounds: usize,
}

impl NodeAlgorithm for Chatter {
    type Msg = BitString;

    fn init(&mut self, _ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<BitString> {
        vec![Outgoing::Broadcast(BitString::from_uint(0, 8))]
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        _inbox: &Inbox<BitString>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<BitString> {
        if ctx.round >= self.rounds {
            return Vec::new();
        }
        vec![Outgoing::Broadcast(BitString::from_uint(0, 8))]
    }

    fn halted(&self) -> bool {
        false
    }

    fn decision(&self) -> Decision {
        Decision::Accept
    }
}

fn run_with_capacity(capacity: usize) -> (congest::Outcome, TraceBuffer) {
    let g = generators::cycle(8);
    let trace = TraceBuffer::new(capacity);
    let out = Simulation::on(&g)
        .bandwidth(Bandwidth::Bits(8))
        .max_rounds(4)
        .collector(trace.clone())
        .run(|_| Chatter { rounds: 3 })
        .expect("run failed");
    (out.into_outcome(), trace)
}

#[test]
fn overflowing_trace_surfaces_dropped_events_in_the_metrics() {
    // 8 nodes broadcasting on a cycle: 16 sends per round, 4 rounds — a
    // 10-event buffer overflows by round 1.
    let (out, trace) = run_with_capacity(10);
    assert!(trace.dropped() > 0, "buffer must have overflowed");
    assert_eq!(
        out.metrics.counter("trace.dropped_events"),
        Some(trace.dropped()),
        "the snapshot reports exactly the collector's truncation count"
    );
    // The run report embeds the snapshot, so the overflow reaches the
    // serialized document too.
    let report = congest::RunReport::from_stats(
        "overflow",
        &out.stats,
        &out.faults,
        true,
        out.metrics.clone(),
    );
    assert!(
        report.to_json().contains(r#""trace.dropped_events""#),
        "run report must carry the truncation counter"
    );
}

#[test]
fn untruncated_trace_omits_the_overflow_metric() {
    let (out, trace) = run_with_capacity(1 << 12);
    assert_eq!(trace.dropped(), 0);
    assert_eq!(
        out.metrics.counter("trace.dropped_events"),
        None,
        "untruncated runs keep their exact metric set"
    );
}
