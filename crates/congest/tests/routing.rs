//! Referee tests for the CSR routing arena in the CONGEST engine.
//!
//! * A property test drives scripted nodes through random unicast/broadcast
//!   mixes and checks that the engine's per-receiver delivery produces
//!   exactly the inbox a naive reference implementation computes — the same
//!   `(port, payload)` pairs in the same order (port ascending, sender
//!   outbox order within a port).
//! * A corrupt-broadcast test pins the zero-copy contract: when one
//!   delivery of a broadcast is corrupted, that receiver gets its own deep
//!   copy while every other receiver still shares the pristine `Arc`.

use std::sync::{Arc, Mutex};

use congest::{
    Bandwidth, BitString, Decision, FaultSpec, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing,
    Simulation,
};
use graphlib::{generators, Graph};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One node's received traffic: per round, the inbox as `(port, value)`.
type Log = Vec<Vec<(u32, u64)>>;

/// Replays a pre-built per-round send plan and records every inbox.
struct ScriptedNode {
    plan: Vec<Outbox<BitString>>,
    log: Arc<Mutex<Log>>,
    done: bool,
}

impl NodeAlgorithm for ScriptedNode {
    type Msg = BitString;

    fn init(&mut self, _ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<BitString> {
        self.plan.first().cloned().unwrap_or_default()
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<BitString>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<BitString> {
        self.log
            .lock()
            .unwrap()
            .push(inbox.iter().map(|(p, m)| (*p, m.to_uint())).collect());
        if ctx.round < self.plan.len() {
            self.plan[ctx.round].clone()
        } else {
            self.done = true;
            Vec::new()
        }
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn decision(&self) -> Decision {
        Decision::Accept
    }
}

/// Encodes `(sender, round, index)` into a payload value so every staged
/// message is distinguishable.
fn payload(u: usize, r: usize, idx: usize) -> BitString {
    BitString::from_uint(((u as u64) << 16) | ((r as u64) << 8) | idx as u64, 32)
}

/// Random per-node, per-round send plans: each round stages 0..=4 messages,
/// each independently a unicast to a random port or a broadcast.
fn random_plans(g: &Graph, rounds: usize, seed: u64) -> Vec<Vec<Outbox<BitString>>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..g.n())
        .map(|u| {
            let deg = g.degree(u);
            (0..rounds)
                .map(|r| {
                    if deg == 0 {
                        return Vec::new();
                    }
                    let k = rng.gen_range(0..=4usize);
                    (0..k)
                        .map(|idx| {
                            let m = payload(u, r, idx);
                            if rng.gen_bool(0.4) {
                                Outgoing::Broadcast(m)
                            } else {
                                Outgoing::Unicast(rng.gen_range(0..deg) as u32, m)
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// The naive reference delivery: each receiver rescans every neighbor's
/// whole outbox — the exact per-receiver `wires[u]` scan the routing arena
/// replaced. Inbox order: port ascending, sender outbox order within a port.
fn reference_logs(g: &Graph, plans: &[Vec<Outbox<BitString>>], rounds: usize) -> Vec<Log> {
    (0..g.n())
        .map(|v| {
            (0..rounds)
                .map(|r| {
                    let mut inbox = Vec::new();
                    for (p, &u) in g.neighbors(v).iter().enumerate() {
                        let u = u as usize;
                        for out in &plans[u][r] {
                            match out {
                                Outgoing::Unicast(port, m)
                                    if g.neighbors(u)[*port as usize] as usize == v =>
                                {
                                    inbox.push((p as u32, m.to_uint()));
                                }
                                Outgoing::Broadcast(m) => inbox.push((p as u32, m.to_uint())),
                                _ => {}
                            }
                        }
                    }
                    inbox
                })
                .collect()
        })
        .collect()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..30)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

fn check_routing_matches_reference(g: &Graph, rounds: usize, seed: u64) {
    let plans = random_plans(g, rounds, seed);
    let logs: Vec<Arc<Mutex<Log>>> = (0..g.n())
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let plans_ref = &plans;
    let logs_ref = &logs;
    Simulation::on(g)
        .bandwidth(Bandwidth::Unbounded)
        .max_rounds(rounds + 2)
        .run(|v| ScriptedNode {
            plan: plans_ref[v].clone(),
            log: Arc::clone(&logs_ref[v]),
            done: false,
        })
        .unwrap();
    let expected = reference_logs(g, &plans, rounds);
    for v in 0..g.n() {
        let got = logs[v].lock().unwrap().clone();
        assert_eq!(got, expected[v], "node {v} inbox mismatch (seed {seed})");
    }
}

proptest! {
    #[test]
    fn routed_inboxes_match_naive_reference(
        g in arb_graph(),
        rounds in 1usize..4,
        seed in any::<u64>(),
    ) {
        check_routing_matches_reference(&g, rounds, seed);
    }
}

#[test]
fn routing_matches_reference_on_fixed_topologies() {
    for (i, g) in [
        generators::cycle(8),
        generators::star(9),
        generators::clique(7),
        generators::path(6),
    ]
    .iter()
    .enumerate()
    {
        check_routing_matches_reference(g, 3, 1000 + i as u64);
    }
}

/// Broadcasts a fixed pattern once, from the star's center.
struct CorruptProbeCenter {
    pattern: BitString,
    done: bool,
}

/// A leaf that stores the payload (as delivered, `Owned` vs `Shared`).
struct CorruptProbeLeaf {
    got: Arc<Mutex<Option<congest::Payload<BitString>>>>,
    done: bool,
}

enum Probe {
    Center(CorruptProbeCenter),
    Leaf(CorruptProbeLeaf),
}

impl NodeAlgorithm for Probe {
    type Msg = BitString;

    fn init(&mut self, _ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<BitString> {
        match self {
            Probe::Center(c) => vec![Outgoing::Broadcast(c.pattern.clone())],
            Probe::Leaf(_) => Vec::new(),
        }
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext,
        inbox: &Inbox<BitString>,
        _rng: &mut ChaCha8Rng,
    ) -> Outbox<BitString> {
        match self {
            Probe::Center(c) => c.done = true,
            Probe::Leaf(l) => {
                if let Some((_, payload)) = inbox.first() {
                    *l.got.lock().unwrap() = Some(payload.clone());
                }
                l.done = true;
            }
        }
        Vec::new()
    }

    fn halted(&self) -> bool {
        match self {
            Probe::Center(c) => c.done,
            Probe::Leaf(l) => l.done,
        }
    }

    fn decision(&self) -> Decision {
        Decision::Accept
    }
}

#[test]
fn corrupted_broadcast_is_deep_copied_exactly_once() {
    let leaves = 12;
    let g = generators::star(leaves); // n = leaves + 1; vertex 0 is the center
    let pattern = BitString::from_uint(0b1010_1100_0011_0101, 16);

    // Scan seeds for a run where the fault model corrupts exactly one of
    // the broadcast's deliveries (deterministic given the seed).
    let mut found = false;
    for seed in 0..200u64 {
        let cells: Vec<Arc<Mutex<Option<congest::Payload<BitString>>>>> =
            (0..=leaves).map(|_| Arc::new(Mutex::new(None))).collect();
        let cells_ref = &cells;
        let pattern_ref = &pattern;
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Unbounded)
            .faults(FaultSpec::BitFlip(0.15))
            .seed(seed)
            .max_rounds(3)
            .run(|v| {
                if v == 0 {
                    Probe::Center(CorruptProbeCenter {
                        pattern: pattern_ref.clone(),
                        done: false,
                    })
                } else {
                    Probe::Leaf(CorruptProbeLeaf {
                        got: Arc::clone(&cells_ref[v]),
                        done: false,
                    })
                }
            })
            .unwrap();
        if out.faults.corrupted != 1 {
            continue;
        }
        found = true;

        let payloads: Vec<congest::Payload<BitString>> = (1..=leaves)
            .map(|v| cells[v].lock().unwrap().clone().expect("leaf got nothing"))
            .collect();
        let shared: Vec<&congest::Payload<BitString>> = payloads
            .iter()
            .filter(|p| p.as_shared().is_some())
            .collect();
        let owned: Vec<&congest::Payload<BitString>> = payloads
            .iter()
            .filter(|p| p.as_shared().is_none())
            .collect();

        // Exactly one receiver was deep-copied; everyone else shares the
        // one pristine broadcast Arc.
        assert_eq!(owned.len(), 1, "seed {seed}");
        assert_eq!(shared.len(), leaves - 1);
        let first_arc = shared[0].as_shared().unwrap();
        for p in &shared {
            assert!(
                Arc::ptr_eq(first_arc, p.as_shared().unwrap()),
                "pristine receivers must share one allocation"
            );
            assert_eq!(&***p, &pattern, "shared payloads must be untouched");
        }
        // The corrupted copy differs from the pattern in exactly one bit.
        let hamming = pattern
            .bits()
            .iter()
            .zip(owned[0].bits())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(hamming, 1, "bit-flip corruption flips exactly one bit");
        break;
    }
    assert!(found, "no seed in 0..200 corrupted exactly one delivery");
}
