//! Property tests of [`FaultStack`] composition semantics.
//!
//! The stack contract is *order-sensitive first-fault-wins*: for every
//! delivery the layers are consulted in stack order and the first
//! non-`Deliver` verdict is final (so a drop in an early layer shadows a
//! corruption in a later one), and a node is crashed iff any layer crashes
//! it. These properties pin that contract against a manual fold over
//! independently built layers, driven through identical `reset`/
//! `begin_round` sequences so stateful models (Gilbert–Elliott chains)
//! stay in lockstep. Everything here is a pure function of the engine
//! seed, so the suite must pass bit-identically at any
//! `RAYON_NUM_THREADS` — `scripts/check.sh` runs it at 1 and 4.

use congest::{
    CrashStop, Delivery, DeliveryCtx, FaultModel, FaultSpec, LinkFailure, NoFaults, Outage,
};
use graphlib::generators;
use proptest::prelude::*;

/// The menu of layer specs the properties draw stacks from: every model
/// kind, including an inert layer and an explicit crash.
fn menu(idx: usize) -> FaultSpec {
    match idx % 7 {
        0 => FaultSpec::None,
        1 => FaultSpec::IndependentLoss(0.4),
        2 => FaultSpec::GilbertElliott(0.2, 0.3, 0.05, 0.9),
        3 => FaultSpec::CrashStop(CrashStop::random(2, 3)),
        4 => FaultSpec::LinkFailure(LinkFailure::new(vec![Outage {
            a: 0,
            b: 1,
            from_round: 1,
            to_round: 4,
        }])),
        5 => FaultSpec::BitFlip(0.3),
        _ => FaultSpec::IndependentLoss(0.15),
    }
}

/// Builds each layer of `specs` separately and the stacked model over all
/// of them, then drives every model through the same `reset` +
/// `begin_round(1..=rounds)` schedule so their internal chains agree.
fn build_in_lockstep(
    specs: &[FaultSpec],
    g: &graphlib::Graph,
    seed: u64,
    rounds: usize,
) -> (Box<dyn FaultModel>, Vec<Box<dyn FaultModel>>) {
    let mut stack = FaultSpec::Stack(specs.to_vec()).build();
    stack.reset(g, seed);
    let mut layers: Vec<Box<dyn FaultModel>> = specs.iter().map(FaultSpec::build).collect();
    for l in &mut layers {
        l.reset(g, seed);
    }
    for r in 1..=rounds {
        stack.begin_round(r);
        for l in &mut layers {
            l.begin_round(r);
        }
    }
    (stack, layers)
}

/// The reference semantics: fold the layers in order, first non-`Deliver`
/// verdict wins.
fn manual_first_fault(layers: &[Box<dyn FaultModel>], ctx: &DeliveryCtx) -> Delivery {
    for l in layers {
        match l.delivery(ctx) {
            Delivery::Deliver => continue,
            other => return other,
        }
    }
    Delivery::Deliver
}

/// Every delivery context over the clique's directed edges in `round`.
fn contexts(n: usize, round: usize, seed: u64) -> Vec<DeliveryCtx> {
    let mut out = Vec::new();
    let mut slot = 0usize;
    for from in 0..n {
        for (port, to) in (0..n).filter(|&v| v != from).enumerate() {
            out.push(DeliveryCtx {
                seed,
                round,
                from,
                to,
                to_port: port,
                link_slot: slot,
                msg_index: 0,
                bits: 16,
            });
            slot += 1;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Stack verdicts equal the manual first-non-`Deliver` fold over the
    // same layers, for every link of the topology and several rounds.
    #[test]
    fn stack_matches_manual_fold(
        picks in proptest::collection::vec(0usize..7, 1..5),
        seed in 0u64..1_000,
        rounds in 1usize..6,
    ) {
        let g = generators::clique(6);
        let specs: Vec<FaultSpec> = picks.iter().map(|&i| menu(i)).collect();
        let (stack, layers) = build_in_lockstep(&specs, &g, seed, rounds);
        for ctx in contexts(g.n(), rounds, seed) {
            prop_assert_eq!(
                stack.delivery(&ctx),
                manual_first_fault(&layers, &ctx),
                "stack {:?} diverged from the ordered fold at {:?}",
                specs,
                ctx
            );
        }
        // Crash semantics: any layer crashing the node crashes it in the
        // stack, in every round up to the horizon.
        for v in 0..g.n() {
            for r in 1..=rounds {
                prop_assert_eq!(
                    stack.crashed(v, r, seed),
                    layers.iter().any(|l| l.crashed(v, r, seed))
                );
            }
        }
    }

    // Rebuilding the same stack from the same spec replays the exact
    // verdict stream: composition is a pure function of (spec, seed).
    #[test]
    fn stack_is_deterministic_across_builds(
        picks in proptest::collection::vec(0usize..7, 1..5),
        seed in 0u64..1_000,
    ) {
        let g = generators::clique(5);
        let specs: Vec<FaultSpec> = picks.iter().map(|&i| menu(i)).collect();
        let (a, _) = build_in_lockstep(&specs, &g, seed, 3);
        let (b, _) = build_in_lockstep(&specs, &g, seed, 3);
        for ctx in contexts(g.n(), 3, seed) {
            prop_assert_eq!(a.delivery(&ctx), b.delivery(&ctx));
        }
        for v in 0..g.n() {
            prop_assert_eq!(a.crashed(v, 3, seed), b.crashed(v, 3, seed));
        }
    }
}

#[test]
fn stack_order_is_observable() {
    // A certain drop before a certain corruption yields Drop; swapping the
    // layers yields Corrupt — composition order is part of the contract,
    // not an implementation detail.
    let g = generators::clique(4);
    let drop_first = [FaultSpec::IndependentLoss(1.0), FaultSpec::BitFlip(1.0)];
    let flip_first = [FaultSpec::BitFlip(1.0), FaultSpec::IndependentLoss(1.0)];
    let (df, _) = build_in_lockstep(&drop_first, &g, 7, 1);
    let (ff, _) = build_in_lockstep(&flip_first, &g, 7, 1);
    for ctx in contexts(g.n(), 1, 7) {
        assert_eq!(df.delivery(&ctx), Delivery::Drop);
        assert!(matches!(ff.delivery(&ctx), Delivery::Corrupt(_)));
    }
}

#[test]
fn inert_layers_never_mask_or_add_faults() {
    // NoFaults layers anywhere in the stack are transparent.
    let g = generators::clique(5);
    let bare = [FaultSpec::IndependentLoss(0.5)];
    let padded = [
        FaultSpec::None,
        FaultSpec::IndependentLoss(0.5),
        FaultSpec::None,
    ];
    let (b, _) = build_in_lockstep(&bare, &g, 42, 2);
    let (p, _) = build_in_lockstep(&padded, &g, 42, 2);
    for ctx in contexts(g.n(), 2, 42) {
        assert_eq!(b.delivery(&ctx), p.delivery(&ctx));
    }
    // And a stack of only inert layers delivers everything.
    let mut all_clear = FaultSpec::Stack(vec![FaultSpec::None, FaultSpec::None]).build();
    all_clear.reset(&g, 1);
    assert!(FaultSpec::Stack(vec![FaultSpec::None, FaultSpec::None]).is_none());
    for ctx in contexts(g.n(), 1, 1) {
        assert_eq!(all_clear.delivery(&ctx), Delivery::Deliver);
    }
    let _ = NoFaults; // the inert model is part of the public surface
}
