//! Bounded message tracing for debugging distributed algorithms.
//!
//! The engine is deterministic, so a trace of "who sent how many bits to
//! whom in which round" usually pinpoints a protocol bug immediately. To
//! keep traces cheap they are *bounded*: a [`TraceBuffer`] keeps the first
//! `capacity` events and counts the rest.

use parking_lot::Mutex;
use std::sync::Arc;

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceKind {
    /// A message was sent (and delivered unless a fault event follows).
    #[default]
    Send,
    /// A message was dropped in flight by the fault model.
    Drop,
    /// A message was delivered with seeded bit corruption.
    Corrupt,
    /// A node crashed (crash-stop); `from` is the crashed node, `port` and
    /// `bits` are zero.
    Crash,
}

/// One traced send or fault event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round of the send (messages are delivered in this round).
    pub round: usize,
    /// Sending node index (for [`TraceKind::Crash`], the crashed node).
    pub from: usize,
    /// Port the message left on (`usize::MAX` for broadcast).
    pub port: usize,
    /// Message size in bits.
    pub bits: usize,
    /// What happened to the message (or node).
    pub kind: TraceKind,
}

/// A bounded, thread-safe event buffer (node steps run on rayon workers).
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    inner: Arc<Mutex<TraceInner>>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct TraceInner {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            inner: Arc::new(Mutex::new(TraceInner::default())),
            capacity,
        }
    }

    /// Records an event (drops and counts once full).
    pub fn record(&self, ev: TraceEvent) {
        let mut inner = self.inner.lock();
        if inner.events.len() < self.capacity {
            inner.events.push(ev);
        } else {
            inner.dropped += 1;
        }
    }

    /// Snapshot of the recorded events (sorted by round, then sender).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut evs = self.inner.lock().events.clone();
        evs.sort_by_key(|e| (e.round, e.from, e.port));
        evs
    }

    /// How many events were dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Events of one [`TraceKind`] only (e.g. every drop or crash).
    pub fn events_of(&self, kind: TraceKind) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect()
    }

    /// Renders a compact per-round summary (`round: sends / bits`).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let evs = self.events();
        let mut out = String::new();
        let mut round = usize::MAX;
        let mut count = 0usize;
        let mut bits = 0usize;
        let flush = |out: &mut String, round: usize, count: usize, bits: usize| {
            if round != usize::MAX {
                let _ = writeln!(out, "round {round}: {count} sends, {bits} bits");
            }
        };
        for e in &evs {
            if e.round != round {
                flush(&mut out, round, count, bits);
                round = e.round;
                count = 0;
                bits = 0;
            }
            count += 1;
            bits += e.bits;
        }
        flush(&mut out, round, count, bits);
        if self.dropped() > 0 {
            let _ = writeln!(out, "(+{} dropped events)", self.dropped());
        }
        out
    }
}

/// A `TraceBuffer` is a [`Collector`](crate::obsv::Collector): install it
/// on a [`Simulation`](crate::Simulation) and it keeps recording the same
/// `TraceEvent`s it always did. Round markers, compute spans, and transport
/// summaries have no `TraceEvent` shape and are ignored.
impl crate::obsv::Collector for TraceBuffer {
    fn record(&self, ev: &crate::obsv::SimEvent) {
        use crate::obsv::SimEvent;
        let mapped = match *ev {
            SimEvent::Send {
                round,
                from,
                port,
                bits,
                ..
            } => TraceEvent {
                round,
                from,
                port,
                bits,
                kind: TraceKind::Send,
            },
            SimEvent::Drop {
                round,
                from,
                port,
                bits,
                ..
            } => TraceEvent {
                round,
                from,
                port,
                bits,
                kind: TraceKind::Drop,
            },
            SimEvent::Corrupt {
                round,
                from,
                port,
                bits,
                ..
            } => TraceEvent {
                round,
                from,
                port,
                bits,
                kind: TraceKind::Corrupt,
            },
            SimEvent::Crash { round, node } => TraceEvent {
                round,
                from: node,
                port: 0,
                bits: 0,
                kind: TraceKind::Crash,
            },
            _ => return,
        };
        self.record(mapped);
    }

    // Capacity overflow is reported, not silent: the simulation folds this
    // into the run metrics as `trace.dropped_events`.
    fn dropped_events(&self) -> u64 {
        self.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(round: usize, from: usize, port: usize, bits: usize) -> TraceEvent {
        TraceEvent {
            round,
            from,
            port,
            bits,
            kind: TraceKind::Send,
        }
    }

    #[test]
    fn records_until_capacity() {
        let t = TraceBuffer::new(2);
        for round in 1..=3 {
            t.record(send(round, 0, 0, 8));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn events_sorted_by_round() {
        let t = TraceBuffer::new(10);
        t.record(send(2, 1, 0, 4));
        t.record(send(1, 0, usize::MAX, 8));
        let evs = t.events();
        assert_eq!(evs[0].round, 1);
        assert_eq!(evs[1].round, 2);
    }

    #[test]
    fn summary_aggregates_per_round() {
        let t = TraceBuffer::new(10);
        for from in 0..3 {
            t.record(send(1, from, 0, 8));
        }
        let s = t.summary();
        assert!(s.contains("round 1: 3 sends, 24 bits"), "{s}");
    }

    #[test]
    fn events_of_filters_by_kind() {
        let t = TraceBuffer::new(10);
        t.record(send(1, 0, 0, 8));
        t.record(TraceEvent {
            round: 1,
            from: 1,
            port: 0,
            bits: 8,
            kind: TraceKind::Drop,
        });
        t.record(TraceEvent {
            round: 2,
            from: 2,
            port: 0,
            bits: 0,
            kind: TraceKind::Crash,
        });
        assert_eq!(t.events_of(TraceKind::Send).len(), 1);
        assert_eq!(t.events_of(TraceKind::Drop).len(), 1);
        let crashes = t.events_of(TraceKind::Crash);
        assert_eq!(crashes.len(), 1);
        assert_eq!(crashes[0].from, 2);
    }

    #[test]
    fn default_kind_is_send() {
        assert_eq!(TraceKind::default(), TraceKind::Send);
    }
}
