//! Deterministic chaos-schedule fuzzing for the fault layer.
//!
//! A [`ChaosSchedule`] is a seeded, cloneable recipe of fault ingredients
//! (loss, burstiness, crash timing, link outages, corruption) that compiles
//! to a [`FaultSpec`] stack. [`enumerate`] walks the model space with seeded
//! hashes — same base seed, same schedules, on every machine — and [`fuzz`]
//! runs each schedule through a caller-supplied *oracle* (typically: run a
//! detector under the spec, then check soundness invariants over its trace
//! and outcome). Any failing schedule is [`shrink`]-ed to a locally minimal
//! reproducer by greedy delta debugging and dumped as a JSON document via
//! [`ChaosFailure::to_json`], so a CI failure ships its own repro.
//!
//! The oracle is a closure (`Fn(&FaultSpec, u64) -> Vec<String>`) rather
//! than a trait object over detector types because detectors live in
//! downstream crates; `congest` only owns the schedule algebra. An empty
//! violation list means the run was sound.

use crate::faults::{raw_hash, CrashStop, FaultSpec, LinkFailure, Outage};
use std::fmt::Write as _;

/// One fault ingredient in a chaos schedule. Each variant compiles to one
/// layer of a [`FaultSpec::Stack`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// Independent per-delivery loss with probability `p`.
    Loss {
        /// Drop probability per delivery.
        p: f64,
    },
    /// Bursty (Gilbert–Elliott) loss: lossless good state, `loss_bad`
    /// drop rate in the bad state, seeded two-state Markov switching.
    Burst {
        /// Probability of entering the bad state per slot.
        p_enter: f64,
        /// Probability of leaving the bad state per slot.
        p_exit: f64,
        /// Drop probability while the link is in the bad state.
        loss_bad: f64,
    },
    /// Node `node` crash-stops at `round`.
    Crash {
        /// The crashing node.
        node: usize,
        /// The round it halts at (1-based).
        round: usize,
    },
    /// The undirected link `{a, b}` is down for `from_round..=to_round`.
    LinkOut {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// First round of the outage (1-based, inclusive).
        from_round: usize,
        /// Last round of the outage (inclusive).
        to_round: usize,
    },
    /// Seeded single-bit corruption with probability `rate` per delivery.
    Flip {
        /// Corruption probability per delivery.
        rate: f64,
    },
}

impl ChaosEvent {
    /// The fault-spec layer this event compiles to.
    pub fn spec(&self) -> FaultSpec {
        match *self {
            ChaosEvent::Loss { p } => FaultSpec::IndependentLoss(p),
            ChaosEvent::Burst {
                p_enter,
                p_exit,
                loss_bad,
            } => FaultSpec::GilbertElliott(p_enter, p_exit, 0.0, loss_bad),
            ChaosEvent::Crash { node, round } => {
                FaultSpec::CrashStop(CrashStop::at(vec![(node, round)]))
            }
            ChaosEvent::LinkOut {
                a,
                b,
                from_round,
                to_round,
            } => FaultSpec::LinkFailure(LinkFailure::new(vec![Outage {
                a,
                b,
                from_round,
                to_round,
            }])),
            ChaosEvent::Flip { rate } => FaultSpec::BitFlip(rate),
        }
    }

    /// The event as one JSON object (fixed-precision floats, so repro
    /// documents are byte-stable).
    pub fn to_json(&self) -> String {
        match *self {
            ChaosEvent::Loss { p } => format!(r#"{{"kind":"loss","p":{p:.4}}}"#),
            ChaosEvent::Burst {
                p_enter,
                p_exit,
                loss_bad,
            } => format!(
                r#"{{"kind":"burst","p_enter":{p_enter:.4},"p_exit":{p_exit:.4},"loss_bad":{loss_bad:.4}}}"#
            ),
            ChaosEvent::Crash { node, round } => {
                format!(r#"{{"kind":"crash","node":{node},"round":{round}}}"#)
            }
            ChaosEvent::LinkOut {
                a,
                b,
                from_round,
                to_round,
            } => format!(
                r#"{{"kind":"link_out","a":{a},"b":{b},"from_round":{from_round},"to_round":{to_round}}}"#
            ),
            ChaosEvent::Flip { rate } => format!(r#"{{"kind":"flip","rate":{rate:.4}}}"#),
        }
    }
}

/// A seeded fault schedule: the engine seed plus the event stack. Two runs
/// of the same schedule are byte-identical, which is what makes a shrunk
/// reproducer worth shipping.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// Engine seed the schedule runs under.
    pub seed: u64,
    /// The fault ingredients, applied as one stack (first non-deliver
    /// verdict wins, see [`crate::faults::FaultStack`]).
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Compiles the schedule to a runnable fault spec. Empty schedules are
    /// the fault-free model.
    pub fn spec(&self) -> FaultSpec {
        if self.events.is_empty() {
            FaultSpec::None
        } else {
            FaultSpec::Stack(self.events.iter().map(ChaosEvent::spec).collect())
        }
    }

    /// The schedule as one JSON object.
    pub fn to_json(&self) -> String {
        let events: Vec<String> = self.events.iter().map(ChaosEvent::to_json).collect();
        format!(
            r#"{{"seed":{},"events":[{}]}}"#,
            self.seed,
            events.join(",")
        )
    }
}

/// The loss-rate menu [`enumerate`] draws from.
const LOSS_RATES: [f64; 4] = [0.1, 0.2, 0.3, 0.5];
/// The burst-severity menu: `(p_enter, p_exit, loss_bad)`.
const BURSTS: [(f64, f64, f64); 3] = [(0.1, 0.4, 0.9), (0.2, 0.3, 1.0), (0.3, 0.5, 0.7)];
/// The bit-flip-rate menu.
const FLIP_RATES: [f64; 3] = [0.05, 0.1, 0.2];

/// Enumerates `count` seeded schedules over a network of `n` nodes,
/// covering the loss-rate × burstiness × crash-timing × link-outage ×
/// corruption space. Deterministic in `base_seed`: schedule `i` is a pure
/// function of `(base_seed, i, n)`.
///
/// Each schedule stacks one to three events; dimensions are picked by
/// seeded hash so consecutive schedules decorrelate. Crash and outage
/// coordinates are drawn from `0..n` — a listed outage on a non-edge is a
/// no-op, which keeps the enumerator topology-agnostic.
pub fn enumerate(base_seed: u64, n: usize, count: usize) -> Vec<ChaosSchedule> {
    assert!(n >= 2, "chaos schedules need at least two nodes");
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let pick = |dim: &str| raw_hash((base_seed, "chaos", i, dim));
        let n_events = 1 + (pick("len") % 3) as usize;
        let mut events = Vec::with_capacity(n_events);
        for e in 0..n_events {
            let kind = raw_hash((base_seed, "chaos", i, "kind", e)) % 5;
            let draw = |dim: &str| raw_hash((base_seed, "chaos", i, dim, e));
            events.push(match kind {
                0 => ChaosEvent::Loss {
                    p: LOSS_RATES[draw("loss") as usize % LOSS_RATES.len()],
                },
                1 => {
                    let (p_enter, p_exit, loss_bad) = BURSTS[draw("burst") as usize % BURSTS.len()];
                    ChaosEvent::Burst {
                        p_enter,
                        p_exit,
                        loss_bad,
                    }
                }
                2 => ChaosEvent::Crash {
                    node: draw("crash-node") as usize % n,
                    round: 1 + draw("crash-round") as usize % 8,
                },
                3 => {
                    let a = draw("out-a") as usize % n;
                    let b = (a + 1 + draw("out-b") as usize % (n - 1)) % n;
                    let from_round = 1 + draw("out-from") as usize % 6;
                    ChaosEvent::LinkOut {
                        a,
                        b,
                        from_round,
                        to_round: from_round + draw("out-len") as usize % 8,
                    }
                }
                _ => ChaosEvent::Flip {
                    rate: FLIP_RATES[draw("flip") as usize % FLIP_RATES.len()],
                },
            });
        }
        out.push(ChaosSchedule {
            seed: raw_hash((base_seed, "chaos-seed", i)),
            events,
        });
    }
    out
}

/// A soundness violation the fuzzer found, with its shrunk reproducer.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The schedule that first triggered the violation.
    pub schedule: ChaosSchedule,
    /// The violations the oracle reported for the *shrunk* schedule.
    pub violations: Vec<String>,
    /// The minimal reproducer: a sub-schedule that still violates, from
    /// which no single event can be removed without the violation
    /// disappearing.
    pub shrunk: ChaosSchedule,
}

impl ChaosFailure {
    /// The failure as one schema-tagged JSON reproducer document
    /// (trailing newline included). Paste the `shrunk` block back into a
    /// test to replay the violation.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, r#"  "schema": "congest.chaos_reproducer","#);
        let _ = writeln!(out, r#"  "schedule": {},"#, self.schedule.to_json());
        let _ = writeln!(out, r#"  "shrunk": {},"#, self.shrunk.to_json());
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", crate::obsv::report::json_escape(v)))
            .collect();
        let _ = writeln!(out, r#"  "violations": [{}]"#, violations.join(","));
        out.push_str("}\n");
        out
    }
}

/// Shrinks a failing schedule to a locally minimal reproducer by greedy
/// delta debugging: repeatedly try dropping each event (front to back);
/// keep any drop under which the oracle still reports violations; stop at
/// a fixed point where every single-event removal makes the violation
/// vanish. Deterministic, and runs the oracle O(events²) times in the
/// worst case.
pub fn shrink<F>(failing: &ChaosSchedule, oracle: &F) -> ChaosSchedule
where
    F: Fn(&FaultSpec, u64) -> Vec<String>,
{
    let mut current = failing.clone();
    loop {
        let mut reduced = None;
        for i in 0..current.events.len() {
            let mut candidate = current.clone();
            candidate.events.remove(i);
            if !oracle(&candidate.spec(), candidate.seed).is_empty() {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return current,
        }
    }
}

/// Runs `oracle` against every schedule and returns one [`ChaosFailure`]
/// (with shrunk reproducer) per violating schedule, in input order. An
/// empty result is the pass verdict: every schedule ran sound.
pub fn fuzz<F>(schedules: &[ChaosSchedule], oracle: F) -> Vec<ChaosFailure>
where
    F: Fn(&FaultSpec, u64) -> Vec<String>,
{
    let mut failures = Vec::new();
    for schedule in schedules {
        if oracle(&schedule.spec(), schedule.seed).is_empty() {
            continue;
        }
        let shrunk = shrink(schedule, &oracle);
        let violations = oracle(&shrunk.spec(), shrunk.seed);
        failures.push(ChaosFailure {
            schedule: schedule.clone(),
            violations,
            shrunk,
        });
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_deterministic_and_covers_the_space() {
        let a = enumerate(7, 8, 64);
        let b = enumerate(7, 8, 64);
        assert_eq!(a, b, "same base seed, same schedules");
        assert_ne!(a, enumerate(8, 8, 64), "seed moves the schedules");
        assert_eq!(a.len(), 64);
        // Over 64 schedules every event kind should appear.
        let mut kinds = [false; 5];
        for s in &a {
            assert!(!s.events.is_empty() && s.events.len() <= 3);
            for e in &s.events {
                let k = match e {
                    ChaosEvent::Loss { .. } => 0,
                    ChaosEvent::Burst { .. } => 1,
                    ChaosEvent::Crash { node, round } => {
                        assert!(*node < 8 && *round >= 1);
                        2
                    }
                    ChaosEvent::LinkOut {
                        a,
                        b,
                        from_round,
                        to_round,
                    } => {
                        assert!(a != b && *a < 8 && *b < 8);
                        assert!(from_round >= &1 && to_round >= from_round);
                        3
                    }
                    ChaosEvent::Flip { .. } => 4,
                };
                kinds[k] = true;
            }
        }
        assert_eq!(kinds, [true; 5], "all five fault kinds enumerated");
    }

    #[test]
    fn schedules_compile_to_stacked_specs() {
        let s = ChaosSchedule {
            seed: 1,
            events: vec![
                ChaosEvent::Loss { p: 0.3 },
                ChaosEvent::Crash { node: 2, round: 4 },
            ],
        };
        match s.spec() {
            FaultSpec::Stack(layers) => {
                assert_eq!(layers.len(), 2);
                assert_eq!(layers[0], FaultSpec::IndependentLoss(0.3));
            }
            other => panic!("expected a stack, got {other:?}"),
        }
        assert_eq!(
            ChaosSchedule {
                seed: 1,
                events: vec![]
            }
            .spec(),
            FaultSpec::None
        );
    }

    #[test]
    fn shrink_reaches_a_minimal_reproducer() {
        // Synthetic oracle: violates iff the stack crashes node 0.
        let oracle = |spec: &FaultSpec, _seed: u64| -> Vec<String> {
            fn crashes_zero(s: &FaultSpec) -> bool {
                match s {
                    FaultSpec::CrashStop(c) => c.crash_round(0, 8, 1).is_some(),
                    FaultSpec::Stack(v) => v.iter().any(crashes_zero),
                    _ => false,
                }
            }
            if crashes_zero(spec) {
                vec!["node 0 lost".into()]
            } else {
                vec![]
            }
        };
        let noisy = ChaosSchedule {
            seed: 5,
            events: vec![
                ChaosEvent::Loss { p: 0.5 },
                ChaosEvent::Crash { node: 0, round: 2 },
                ChaosEvent::Flip { rate: 0.2 },
                ChaosEvent::LinkOut {
                    a: 1,
                    b: 2,
                    from_round: 1,
                    to_round: 3,
                },
            ],
        };
        let failures = fuzz(std::slice::from_ref(&noisy), oracle);
        assert_eq!(failures.len(), 1);
        let f = &failures[0];
        assert_eq!(f.schedule, noisy);
        assert_eq!(
            f.shrunk.events,
            vec![ChaosEvent::Crash { node: 0, round: 2 }],
            "shrinks to the one event that matters"
        );
        assert_eq!(f.violations, vec!["node 0 lost".to_string()]);
        // Shrinking again is a fixed point.
        assert_eq!(shrink(&f.shrunk, &oracle), f.shrunk);
    }

    #[test]
    fn clean_schedules_produce_no_failures() {
        let schedules = enumerate(3, 6, 16);
        let failures = fuzz(&schedules, |_, _| Vec::new());
        assert!(failures.is_empty());
    }

    #[test]
    fn reproducer_json_is_balanced_and_tagged() {
        let f = ChaosFailure {
            schedule: ChaosSchedule {
                seed: 9,
                events: vec![
                    ChaosEvent::Burst {
                        p_enter: 0.1,
                        p_exit: 0.4,
                        loss_bad: 0.9,
                    },
                    ChaosEvent::Crash { node: 1, round: 3 },
                ],
            },
            violations: vec!["decision flipped on \"C4\"".into()],
            shrunk: ChaosSchedule {
                seed: 9,
                events: vec![ChaosEvent::Crash { node: 1, round: 3 }],
            },
        };
        let json = f.to_json();
        assert!(json.contains(r#""schema": "congest.chaos_reproducer""#));
        assert!(
            json.contains(r#"{"kind":"burst","p_enter":0.1000,"p_exit":0.4000,"loss_bad":0.9000}"#),
            "{json}"
        );
        assert!(json.contains(r#"{"kind":"crash","node":1,"round":3}"#));
        assert!(json.contains(r#"\"C4\""#), "violations are escaped");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.ends_with("}\n"));
    }
}
