//! # congest — instrumented CONGEST and congested-clique simulators
//!
//! The paper's results are statements about rounds × bandwidth in the
//! CONGEST model (§2). This crate substitutes the abstract network with a
//! deterministic simulator that *enforces* the `B`-bit bandwidth bound per
//! edge per round and records exact traffic statistics (total bits, per-edge
//! bits, cut traffic), so every bound in the paper becomes a measurable
//! quantity.
//!
//! * [`Simulation`] — the one front door: a builder routing to the CONGEST
//!   engine, the reliable transport, or the congested-clique engine, and
//!   returning a unified [`Outcome`] (decisions + stats + faults + metrics).
//! * [`engine::Engine`] — the CONGEST round engine over a
//!   [`graphlib::Graph`] topology (set [`engine::Bandwidth::Unbounded`] for
//!   the LOCAL model).
//! * [`cliquemodel::CliqueEngine`] — the congested-clique engine (all-to-all
//!   topology, separate input graph).
//! * [`obsv`] — the observability spine: structured [`Collector`] tracing,
//!   the [`Metrics`] registry, and the schema-versioned [`RunReport`].
//! * [`chaos`] — the deterministic chaos-schedule fuzzer: seeded fault
//!   schedules over the model space, oracle-driven soundness checks, and
//!   delta-debugging shrink to minimal JSON reproducers.
//! * [`message::BitSize`] — exact on-the-wire bit accounting.
//! * [`identifiers`] — namespace/id assignments (§4, §5 separate nodes from
//!   identifiers).

#![warn(missing_docs)]

pub mod chaos;
pub mod cliquemodel;
pub mod engine;
pub mod error;
pub mod faults;
pub mod identifiers;
pub mod message;
pub mod node;
pub mod obsv;
pub mod reliable;
pub mod simulation;
pub mod stats;
pub mod trace;

pub use chaos::{ChaosEvent, ChaosFailure, ChaosSchedule};
pub use engine::{Bandwidth, CongestError, Degraded, Engine, RunOutcome};
pub use error::SimError;
pub use faults::{
    BitFlip, CrashStop, Delivery, DeliveryCtx, FaultModel, FaultReport, FaultSpec, GilbertElliott,
    IndependentLoss, LinkFailure, NoFaults, Outage,
};
pub use message::{bits_for_domain, BitSize, BitString, Payload};
pub use node::{Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing};
pub use obsv::{
    Collector, ComputeTimer, CriticalPathSummary, EventLog, Fanout, FlightConfig, FlightRecorder,
    FlightTotals, Histogram, JsonlTrace, MetricValue, Metrics, MetricsSnapshot, PhaseStat,
    Profiler, RoundAgg, RunReport, Section, SimEvent, FLIGHT_RECORD_SCHEMA, FLIGHT_RECORD_VERSION,
    RUN_REPORT_SCHEMA, RUN_REPORT_VERSION,
};
pub use reliable::{Reliable, ReliableConfig};
pub use simulation::{CliqueRun, Outcome, Overrides, Prepared, RunResult, Simulation};
pub use stats::{EdgeTraffic, RunStats};
pub use trace::{TraceBuffer, TraceEvent, TraceKind};
