//! Causal trace analysis: the happens-before DAG, critical paths,
//! congestion heatmaps, an invariant checker, and a structural diff.
//!
//! The provenance recorded on [`SimEvent::Send`] (`msg_id` plus the `deps`
//! set of ids delivered to the sender one round earlier) makes a recorded
//! event stream a weighted DAG over messages: `m1 → m2` iff
//! `m1 ∈ deps(m2)`. The *critical path* through that DAG — the dependent
//! message chain of maximum total bit weight — lower-bounds how much of the
//! run's communication was inherently sequential: no scheduler, bandwidth
//! increase, or extra parallelism can deliver the last message of the chain
//! before every bit of the chain has crossed a link.
//!
//! Traces may span several engine runs (the even-cycle drivers run one
//! simulation per phase per repetition). Each [`SimEvent::Meta`] header
//! starts a *segment*; a preceding [`SimEvent::Phase`] marker labels it.
//! Message ids restart per segment, so every analysis here is
//! per-segment, with per-phase aggregation on top.
//!
//! All functions take `&[SimEvent]` — feed them an
//! [`EventLog`](crate::obsv::collect::EventLog) snapshot or a re-parsed
//! JSONL dump (the `tracetools` crate ships the parser and the
//! `congest-trace` CLI over these functions).

use crate::obsv::collect::{JsonlTrace, SimEvent};
use crate::obsv::report::json_escape;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// One message on a critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathHop {
    /// Round the message was sent in.
    pub round: usize,
    /// Sending node.
    pub from: usize,
    /// Port (or clique destination); `usize::MAX` for a broadcast.
    pub port: usize,
    /// Message size in bits.
    pub bits: usize,
    /// The message's id within its segment.
    pub msg_id: u64,
}

/// Critical path of one trace segment (one engine run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPath {
    /// Phase label (`"run"` when the trace has no phase markers).
    pub phase: String,
    /// Repetition index from the phase marker (0 when unlabeled).
    pub repetition: usize,
    /// Node count from the segment's `Meta` header.
    pub n: usize,
    /// Seed from the segment's `Meta` header.
    pub seed: u64,
    /// Rounds the segment executed (highest `RoundEnd`).
    pub rounds: usize,
    /// Messages sent in the segment.
    pub messages: u64,
    /// Total bits sent in the segment.
    pub total_bits: u64,
    /// Weight of the critical path in bits.
    pub path_bits: u64,
    /// Length of the critical path in messages.
    pub path_len: usize,
    /// The critical chain itself, in send order.
    pub chain: Vec<PathHop>,
}

/// Per-phase aggregation of segment critical paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasePath {
    /// Phase label.
    pub phase: String,
    /// Segments carrying this label.
    pub segments: usize,
    /// Heaviest critical path among them, in bits.
    pub max_path_bits: u64,
    /// Longest critical path among them, in messages.
    pub max_path_len: usize,
    /// Messages sent across all the phase's segments.
    pub messages: u64,
}

/// The full critical-path analysis of one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalPathSummary {
    /// One entry per trace segment, in stream order.
    pub segments: Vec<SegmentPath>,
    /// Per-phase aggregates, in first-appearance order.
    pub phases: Vec<PhasePath>,
}

impl CriticalPathSummary {
    /// The summary as one compact JSON object (no chains — those are for
    /// the human rendering). Deterministic: built from the event stream
    /// only, so byte-identical at any thread count.
    pub fn to_json(&self) -> String {
        let mut out = String::from(r#"{"phases":["#);
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#"{{"name":"{}","segments":{},"max_path_bits":{},"max_path_len":{},"messages":{}}}"#,
                json_escape(&p.phase),
                p.segments,
                p.max_path_bits,
                p.max_path_len,
                p.messages
            );
        }
        out.push_str(r#"],"segments":["#);
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#"{{"phase":"{}","repetition":{},"rounds":{},"messages":{},"path_bits":{},"path_len":{}}}"#,
                json_escape(&s.phase),
                s.repetition,
                s.rounds,
                s.messages,
                s.path_bits,
                s.path_len
            );
        }
        out.push_str("]}");
        out
    }

    /// A human-readable rendering: per-phase table, then the heaviest
    /// segment's full chain.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.segments.is_empty() {
            out.push_str("no sends in trace\n");
            return out;
        }
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>14} {:>13} {:>10}",
            "phase", "segments", "max path bits", "max path len", "messages"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>14} {:>13} {:>10}",
                p.phase, p.segments, p.max_path_bits, p.max_path_len, p.messages
            );
        }
        if let Some(best) = self
            .segments
            .iter()
            .max_by_key(|s| (s.path_bits, std::cmp::Reverse(s.repetition)))
        {
            let _ = writeln!(
                out,
                "\ncritical chain ({} rep {}, {} bits over {} messages):",
                best.phase, best.repetition, best.path_bits, best.path_len
            );
            for hop in &best.chain {
                let port = if hop.port == usize::MAX {
                    "bcast".to_string()
                } else {
                    format!("p{}", hop.port)
                };
                let _ = writeln!(
                    out,
                    "  round {:>4}  node {:>4} -> {:<6} {:>6} bits  (msg {})",
                    hop.round, hop.from, port, hop.bits, hop.msg_id
                );
            }
        }
        out
    }
}

/// One trace segment: the label, the `Meta` header, and the event slice.
struct Segment<'a> {
    phase: String,
    repetition: usize,
    n: usize,
    bandwidth_bits: usize,
    seed: u64,
    events: &'a [SimEvent],
}

/// Splits an event stream into segments: each [`SimEvent::Meta`] starts
/// one, an immediately preceding [`SimEvent::Phase`] labels it. Events
/// before the first `Meta` (hand-built traces) form an implicit segment.
fn segments(events: &[SimEvent]) -> Vec<Segment<'_>> {
    /// An in-progress segment: header fields plus where its body started.
    struct Open {
        phase: String,
        repetition: usize,
        n: usize,
        bandwidth_bits: usize,
        seed: u64,
        start: usize,
    }
    fn close<'a>(
        open: Option<Open>,
        events: &'a [SimEvent],
        end: usize,
        segs: &mut Vec<Segment<'a>>,
    ) {
        if let Some(o) = open {
            segs.push(Segment {
                phase: o.phase,
                repetition: o.repetition,
                n: o.n,
                bandwidth_bits: o.bandwidth_bits,
                seed: o.seed,
                events: &events[o.start..end],
            });
        }
    }
    let mut segs: Vec<Segment<'_>> = Vec::new();
    let mut pending: Option<(String, usize)> = None;
    let mut open: Option<Open> = None;
    for (i, ev) in events.iter().enumerate() {
        match ev {
            SimEvent::Phase { name, repetition } => {
                close(open.take(), events, i, &mut segs);
                pending = Some((name.to_string(), *repetition));
            }
            SimEvent::Meta {
                n,
                bandwidth_bits,
                seed,
            } => {
                close(open.take(), events, i, &mut segs);
                let (phase, repetition) = pending.take().unwrap_or(("run".to_string(), 0));
                open = Some(Open {
                    phase,
                    repetition,
                    n: *n,
                    bandwidth_bits: *bandwidth_bits,
                    seed: *seed,
                    start: i + 1,
                });
            }
            _ => {
                if open.is_none() {
                    let (phase, repetition) = pending.take().unwrap_or(("run".to_string(), 0));
                    open = Some(Open {
                        phase,
                        repetition,
                        n: 0,
                        bandwidth_bits: 0,
                        seed: 0,
                        start: i,
                    });
                }
            }
        }
    }
    close(open, events, events.len(), &mut segs);
    segs
}

/// Computes the weighted critical path of a trace: per segment, the
/// dependent message chain of maximum total bit weight through the
/// happens-before DAG, plus per-phase aggregates. See the module docs for
/// the DAG definition.
pub fn critical_path(events: &[SimEvent]) -> CriticalPathSummary {
    let mut summary = CriticalPathSummary::default();
    for seg in segments(events) {
        let mut sends: Vec<PathHop> = Vec::new();
        // Per send: (path bits ending here, path length, predecessor index).
        let mut cp: Vec<(u64, usize, Option<usize>)> = Vec::new();
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        let mut rounds = 0usize;
        let mut total_bits = 0u64;
        for ev in seg.events {
            match ev {
                SimEvent::Send {
                    round,
                    from,
                    port,
                    bits,
                    msg_id,
                    deps,
                } => {
                    let mut best: Option<usize> = None;
                    for d in deps.iter() {
                        if let Some(&j) = by_id.get(d) {
                            if best.is_none_or(|b| cp[j].0 > cp[b].0) {
                                best = Some(j);
                            }
                        }
                    }
                    let (pre_bits, pre_len) = best.map_or((0, 0), |b| (cp[b].0, cp[b].1));
                    let idx = sends.len();
                    cp.push((pre_bits + *bits as u64, pre_len + 1, best));
                    by_id.insert(*msg_id, idx);
                    sends.push(PathHop {
                        round: *round,
                        from: *from,
                        port: *port,
                        bits: *bits,
                        msg_id: *msg_id,
                    });
                    total_bits += *bits as u64;
                }
                SimEvent::RoundEnd { round, .. } => rounds = rounds.max(*round),
                _ => {}
            }
        }
        // Strict `>` keeps the earliest (smallest-id) endpoint on ties, so
        // the chain is deterministic.
        let mut end: Option<usize> = None;
        for i in 0..cp.len() {
            if end.is_none_or(|e| cp[i].0 > cp[e].0) {
                end = Some(i);
            }
        }
        let mut chain = Vec::new();
        let mut cur = end;
        while let Some(i) = cur {
            chain.push(sends[i].clone());
            cur = cp[i].2;
        }
        chain.reverse();
        summary.segments.push(SegmentPath {
            phase: seg.phase.clone(),
            repetition: seg.repetition,
            n: seg.n,
            seed: seg.seed,
            rounds,
            messages: sends.len() as u64,
            total_bits,
            path_bits: end.map_or(0, |e| cp[e].0),
            path_len: end.map_or(0, |e| cp[e].1),
            chain,
        });
    }
    for s in &summary.segments {
        match summary.phases.iter_mut().find(|p| p.phase == s.phase) {
            Some(p) => {
                p.segments += 1;
                p.max_path_bits = p.max_path_bits.max(s.path_bits);
                p.max_path_len = p.max_path_len.max(s.path_len);
                p.messages += s.messages;
            }
            None => summary.phases.push(PhasePath {
                phase: s.phase.clone(),
                segments: 1,
                max_path_bits: s.path_bits,
                max_path_len: s.path_len,
                messages: s.messages,
            }),
        }
    }
    summary
}

/// Checks the structural invariants of a trace, returning one line per
/// violation (empty means the trace is consistent):
///
/// * rounds start/end in strictly increasing, properly bracketed order;
/// * no `(round, sender, port)` exceeds the `Meta` bandwidth bound
///   (broadcast bits charge every port the sender also unicast on);
/// * message ids are unique within a segment;
/// * every `deps` entry of a send was actually delivered (or delivered
///   corrupted) to the sender in the previous round;
/// * `RoundEnd.dropped` covers at least the recorded `Drop` events
///   (crashed-receiver drops carry no event) and `RoundEnd.corrupted`
///   matches the `Corrupt` events exactly.
pub fn check(events: &[SimEvent]) -> Vec<String> {
    let mut out = Vec::new();
    for (si, seg) in segments(events).iter().enumerate() {
        let b = seg.bandwidth_bits;
        let mut in_round: Option<usize> = None;
        let mut last_round = 0usize;
        let mut seen_ids: HashSet<u64> = HashSet::new();
        let mut delivered_prev: HashMap<usize, HashSet<u64>> = HashMap::new();
        let mut delivered_cur: HashMap<usize, HashSet<u64>> = HashMap::new();
        // Per sender this round: (broadcast bits, unicast bits per port).
        let mut load: HashMap<usize, (usize, HashMap<usize, usize>)> = HashMap::new();
        let mut drops = 0u64;
        let mut corrupts = 0u64;
        let viol = |msg: String, out: &mut Vec<String>| {
            out.push(format!("segment {si}: {msg}"));
        };
        for ev in seg.events {
            match ev {
                SimEvent::RoundStart { round } => {
                    if let Some(r) = in_round {
                        viol(format!("round {round} started inside round {r}"), &mut out);
                    }
                    if *round <= last_round {
                        viol(
                            format!("round {round} started after round {last_round}"),
                            &mut out,
                        );
                    }
                    in_round = Some(*round);
                    load.clear();
                    drops = 0;
                    corrupts = 0;
                    delivered_prev = std::mem::take(&mut delivered_cur);
                }
                SimEvent::Send {
                    round,
                    from,
                    port,
                    bits,
                    msg_id,
                    deps,
                } => {
                    if in_round != Some(*round) {
                        viol(
                            format!("send (msg {msg_id}) in round {round} outside that round"),
                            &mut out,
                        );
                    }
                    if !seen_ids.insert(*msg_id) {
                        viol(format!("duplicate msg_id {msg_id}"), &mut out);
                    }
                    let entry = load.entry(*from).or_default();
                    if *port == usize::MAX {
                        entry.0 += bits;
                    } else {
                        *entry.1.entry(*port).or_default() += bits;
                    }
                    if let Some(bad) = deps
                        .iter()
                        .find(|d| !delivered_prev.get(from).is_some_and(|set| set.contains(d)))
                    {
                        viol(
                            format!(
                                "msg {msg_id} (round {round}, node {from}) depends on msg \
                                 {bad}, which was not delivered to node {from} in round {}",
                                round.saturating_sub(1)
                            ),
                            &mut out,
                        );
                    }
                }
                SimEvent::Deliver { to, msg_id, .. } => {
                    delivered_cur.entry(*to).or_default().insert(*msg_id);
                }
                SimEvent::Corrupt { to, msg_id, .. } => {
                    corrupts += 1;
                    // Corrupted payloads still reach the inbox.
                    delivered_cur.entry(*to).or_default().insert(*msg_id);
                }
                SimEvent::Drop { .. } => drops += 1,
                SimEvent::RoundEnd {
                    round,
                    dropped,
                    corrupted,
                    ..
                } => {
                    if in_round != Some(*round) {
                        viol(
                            format!("round {round} ended without a matching start"),
                            &mut out,
                        );
                    }
                    in_round = None;
                    last_round = *round;
                    if b > 0 {
                        for (from, (bcast, ports)) in &load {
                            if ports.is_empty() && *bcast > b {
                                viol(
                                    format!(
                                        "round {round}: node {from} broadcast {bcast} bits \
                                         (bandwidth {b})"
                                    ),
                                    &mut out,
                                );
                            }
                            let mut over: Vec<(usize, usize)> = ports
                                .iter()
                                .filter(|(_, &pb)| pb + bcast > b)
                                .map(|(&p, &pb)| (p, pb + bcast))
                                .collect();
                            over.sort_unstable();
                            for (p, total) in over {
                                viol(
                                    format!(
                                        "round {round}: node {from} port {p} carried {total} \
                                         bits (bandwidth {b})"
                                    ),
                                    &mut out,
                                );
                            }
                        }
                    }
                    if *dropped < drops {
                        viol(
                            format!(
                                "round {round}: {drops} drop events but RoundEnd says {dropped}"
                            ),
                            &mut out,
                        );
                    }
                    if *corrupted != corrupts {
                        viol(
                            format!(
                                "round {round}: {corrupts} corrupt events but RoundEnd says \
                                 {corrupted}"
                            ),
                            &mut out,
                        );
                    }
                }
                _ => {}
            }
        }
        if let Some(r) = in_round {
            viol(format!("round {r} never ended"), &mut out);
        }
    }
    out
}

/// Per-round traffic accumulator: message count, total bits, and bits
/// per `(sender, port)` pair.
type RoundTraffic = (u64, u64, HashMap<(usize, usize), u64>);

/// Renders a per-round congestion heatmap of a trace: per segment, a row
/// per round (messages, bits, the hottest `(sender, port)` pair, and —
/// when the segment's `Meta` carries a bandwidth bound — its utilization
/// as a percentage and bar), followed by the segment's hottest pairs
/// overall.
pub fn heatmap(events: &[SimEvent]) -> String {
    let mut out = String::new();
    for (si, seg) in segments(events).iter().enumerate() {
        let _ = writeln!(
            out,
            "segment {si} ({} rep {}): n={} bandwidth={} seed={}",
            seg.phase,
            seg.repetition,
            seg.n,
            if seg.bandwidth_bits == 0 {
                "unbounded".to_string()
            } else {
                format!("{} bits", seg.bandwidth_bits)
            },
            seg.seed
        );
        let mut rounds: BTreeMap<usize, RoundTraffic> = BTreeMap::new();
        let mut pair_total: HashMap<(usize, usize), u64> = HashMap::new();
        let mut drops_per_round: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        for ev in seg.events {
            match ev {
                SimEvent::Send {
                    round,
                    from,
                    port,
                    bits,
                    ..
                } => {
                    let e = rounds.entry(*round).or_default();
                    e.0 += 1;
                    e.1 += *bits as u64;
                    *e.2.entry((*from, *port)).or_default() += *bits as u64;
                    *pair_total.entry((*from, *port)).or_default() += *bits as u64;
                }
                SimEvent::RoundEnd {
                    round,
                    dropped,
                    corrupted,
                    ..
                } => {
                    drops_per_round.insert(*round, (*dropped, *corrupted));
                }
                _ => {}
            }
        }
        let b = seg.bandwidth_bits;
        let _ = writeln!(
            out,
            "  {:<6} {:>6} {:>10} {:>16} {}",
            "round",
            "msgs",
            "bits",
            "hottest pair",
            if b > 0 { "util" } else { "" }
        );
        for (round, (msgs, bits, pairs)) in &rounds {
            let hottest = pairs
                .iter()
                .max_by_key(|(&(f, p), &bits)| (bits, std::cmp::Reverse((f, p))));
            let (pair_str, peak) = match hottest {
                Some((&(f, p), &pb)) => (format!("{f}->{}", PortName(p)), pb),
                None => ("-".to_string(), 0),
            };
            let util = if b > 0 {
                let pct = peak as f64 * 100.0 / b as f64;
                let bar = "#".repeat(((pct / 10.0).round() as usize).min(10));
                format!("{pct:>5.1}% {bar}")
            } else {
                String::new()
            };
            let mut row = format!("  {round:<6} {msgs:>6} {bits:>10} {pair_str:>16} {util}");
            if let Some((d, c)) = drops_per_round.get(round) {
                if *d > 0 || *c > 0 {
                    let _ = write!(row, "  ({d} dropped, {c} corrupted)");
                }
            }
            let _ = writeln!(out, "{}", row.trim_end());
        }
        let mut top: Vec<((usize, usize), u64)> = pair_total.into_iter().collect();
        top.sort_by_key(|&((f, p), bits)| (std::cmp::Reverse(bits), f, p));
        top.truncate(5);
        if !top.is_empty() {
            let _ = writeln!(out, "  hottest pairs over the segment:");
            for ((f, p), bits) in top {
                let _ = writeln!(out, "    {f}->{} {bits} bits", PortName(p));
            }
        }
    }
    if out.is_empty() {
        out.push_str("empty trace\n");
    }
    out
}

/// Displays a port index, naming the broadcast marker.
struct PortName(usize);

impl std::fmt::Display for PortName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == usize::MAX {
            f.write_str("bcast")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

/// Structurally compares two traces, returning difference descriptions
/// (empty means the traces are identical event-for-event). Reports the
/// first diverging event and per-trace totals.
pub fn diff(a: &[SimEvent], b: &[SimEvent]) -> Vec<String> {
    let mut out = Vec::new();
    let shared = a.len().min(b.len());
    for i in 0..shared {
        if a[i] != b[i] {
            out.push(format!("first divergence at event {i}:"));
            out.push(format!("  a: {}", JsonlTrace::render(&a[i])));
            out.push(format!("  b: {}", JsonlTrace::render(&b[i])));
            break;
        }
    }
    if out.is_empty() && a.len() != b.len() {
        out.push(format!(
            "traces agree on the first {shared} events, then lengths differ \
             (a: {}, b: {})",
            a.len(),
            b.len()
        ));
        let (label, extra) = if a.len() > b.len() {
            ("a", &a[shared])
        } else {
            ("b", &b[shared])
        };
        out.push(format!(
            "  first extra in {label}: {}",
            JsonlTrace::render(extra)
        ));
    }
    if !out.is_empty() {
        out.push(totals_line("a", a));
        out.push(totals_line("b", b));
    }
    out
}

/// Idle-tail profile of one trace segment: the trailing rounds that
/// carried no traffic at all — exactly the rounds causal early
/// termination (see `Simulation::early_termination`) skips when every
/// node is quiescent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentIdleTail {
    /// Phase label (`"run"` when the trace has no phase markers).
    pub phase: String,
    /// Repetition index from the phase marker (0 when unlabeled).
    pub repetition: usize,
    /// Rounds the segment executed (highest `RoundEnd`).
    pub rounds: usize,
    /// Last round that sent at least one message (0 if none did).
    pub last_busy_round: usize,
    /// `rounds - last_busy_round`: the silent clock-ticking tail.
    pub idle_tail_rounds: usize,
}

/// Idle-tail analysis of a whole trace — the early-termination headroom
/// report: how many executed rounds were pure clock ticks after the last
/// message of each segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdleTailSummary {
    /// One entry per trace segment, in stream order.
    pub segments: Vec<SegmentIdleTail>,
    /// Rounds executed across all segments.
    pub total_rounds: usize,
    /// Idle trailing rounds across all segments.
    pub total_idle_tail: usize,
}

impl IdleTailSummary {
    /// Fraction of executed rounds spent in idle tails (0.0 when the
    /// trace has no rounds).
    pub fn idle_fraction(&self) -> f64 {
        if self.total_rounds == 0 {
            0.0
        } else {
            self.total_idle_tail as f64 / self.total_rounds as f64
        }
    }

    /// A human-readable rendering: one line per segment, then the total.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.segments.is_empty() {
            out.push_str("no rounds in trace\n");
            return out;
        }
        let _ = writeln!(
            out,
            "{:<12} {:>4} {:>8} {:>10} {:>10}",
            "phase", "rep", "rounds", "last busy", "idle tail"
        );
        for s in &self.segments {
            let _ = writeln!(
                out,
                "{:<12} {:>4} {:>8} {:>10} {:>10}",
                s.phase, s.repetition, s.rounds, s.last_busy_round, s.idle_tail_rounds
            );
        }
        let _ = writeln!(
            out,
            "\ntotal: {} of {} rounds idle ({:.1}%)",
            self.total_idle_tail,
            self.total_rounds,
            100.0 * self.idle_fraction()
        );
        out
    }
}

/// Measures each segment's idle tail: rounds executed past the last
/// round with any message traffic. Run on a trace captured *without*
/// early termination, this quantifies exactly how many rounds the flag
/// would save on the same workload.
pub fn idle_tail(events: &[SimEvent]) -> IdleTailSummary {
    let mut summary = IdleTailSummary::default();
    for seg in segments(events) {
        let mut rounds = 0usize;
        let mut last_busy = 0usize;
        for ev in seg.events {
            if let SimEvent::RoundEnd {
                round, messages, ..
            } = ev
            {
                rounds = rounds.max(*round);
                if *messages > 0 {
                    last_busy = last_busy.max(*round);
                }
            }
        }
        summary.total_rounds += rounds;
        summary.total_idle_tail += rounds - last_busy;
        summary.segments.push(SegmentIdleTail {
            phase: seg.phase,
            repetition: seg.repetition,
            rounds,
            last_busy_round: last_busy,
            idle_tail_rounds: rounds - last_busy,
        });
    }
    summary
}

fn totals_line(label: &str, events: &[SimEvent]) -> String {
    let mut sends = 0u64;
    let mut bits = 0u64;
    let mut rounds = 0usize;
    let mut drops = 0u64;
    for ev in events {
        match ev {
            SimEvent::Send { bits: b, .. } => {
                sends += 1;
                bits += *b as u64;
            }
            SimEvent::RoundEnd { round, .. } => rounds = rounds.max(*round),
            SimEvent::Drop { .. } => drops += 1,
            _ => {}
        }
    }
    format!(
        "{label}: {} events, {sends} sends, {bits} bits, {rounds} rounds, {drops} drops",
        events.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn meta(n: usize, b: usize, seed: u64) -> SimEvent {
        SimEvent::Meta {
            n,
            bandwidth_bits: b,
            seed,
        }
    }

    fn send(round: usize, from: usize, bits: usize, msg_id: u64, deps: &[u64]) -> SimEvent {
        SimEvent::Send {
            round,
            from,
            port: 0,
            bits,
            msg_id,
            deps: Arc::from(deps),
        }
    }

    fn deliver(round: usize, from: usize, to: usize, bits: usize, msg_id: u64) -> SimEvent {
        SimEvent::Deliver {
            round,
            from,
            to,
            port: 0,
            bits,
            msg_id,
        }
    }

    fn round_end(round: usize, bits: u64, messages: u64) -> SimEvent {
        SimEvent::RoundEnd {
            round,
            bits,
            messages,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// round 1: node 0 sends msg 0 (8 bits) and node 1 sends msg 1
    /// (4 bits); both delivered to node 2. round 2: node 2 sends msg 2
    /// (16 bits) depending on both.
    fn two_round_chain() -> Vec<SimEvent> {
        vec![
            meta(3, 64, 7),
            SimEvent::RoundStart { round: 1 },
            send(1, 0, 8, 0, &[]),
            send(1, 1, 4, 1, &[]),
            deliver(1, 0, 2, 8, 0),
            deliver(1, 1, 2, 4, 1),
            round_end(1, 12, 2),
            SimEvent::RoundStart { round: 2 },
            send(2, 2, 16, 2, &[0, 1]),
            deliver(2, 2, 0, 16, 2),
            round_end(2, 16, 1),
        ]
    }

    #[test]
    fn critical_path_follows_the_heavier_dependency() {
        let s = critical_path(&two_round_chain());
        assert_eq!(s.segments.len(), 1);
        let seg = &s.segments[0];
        assert_eq!(seg.phase, "run");
        assert_eq!(seg.rounds, 2);
        assert_eq!(seg.messages, 3);
        assert_eq!(seg.total_bits, 28);
        // 8 (msg 0) + 16 (msg 2); the 4-bit msg 1 loses the max.
        assert_eq!(seg.path_bits, 24);
        assert_eq!(seg.path_len, 2);
        let ids: Vec<u64> = seg.chain.iter().map(|h| h.msg_id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn critical_path_matches_brute_force_on_a_random_dag() {
        // A layered DAG with arbitrary weights; the analyzer's streaming DP
        // must agree with explicit longest-path recursion.
        let mut events = vec![meta(4, 0, 0)];
        let mut deps_of: Vec<Vec<u64>> = Vec::new();
        let mut bits_of: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        let mut prev_layer: Vec<u64> = Vec::new();
        let weight = |id: u64| 3 + (id * 7 + 1) % 13;
        for round in 1..=5 {
            events.push(SimEvent::RoundStart { round });
            let mut layer = Vec::new();
            for v in 0..3usize {
                // Node v depends on a v-dependent subset of the previous
                // layer (deterministic, so the test is reproducible).
                let deps: Vec<u64> = prev_layer
                    .iter()
                    .copied()
                    .filter(|d| (d + v as u64).is_multiple_of(2))
                    .collect();
                let bits = weight(next_id);
                events.push(send(round, v, bits as usize, next_id, &deps));
                deps_of.push(deps);
                bits_of.push(bits);
                layer.push(next_id);
                next_id += 1;
            }
            events.push(round_end(round, 0, 3));
            prev_layer = layer;
        }
        fn longest(
            id: usize,
            deps_of: &[Vec<u64>],
            bits_of: &[u64],
            memo: &mut Vec<Option<u64>>,
        ) -> u64 {
            if let Some(v) = memo[id] {
                return v;
            }
            let best = deps_of[id]
                .iter()
                .map(|&d| longest(d as usize, deps_of, bits_of, memo))
                .max()
                .unwrap_or(0);
            let v = bits_of[id] + best;
            memo[id] = Some(v);
            v
        }
        let mut memo = vec![None; deps_of.len()];
        let brute = (0..deps_of.len())
            .map(|i| longest(i, &deps_of, &bits_of, &mut memo))
            .max()
            .unwrap();
        let s = critical_path(&events);
        assert_eq!(s.segments[0].path_bits, brute);
    }

    #[test]
    fn phases_label_segments_and_aggregate() {
        let mut events = Vec::new();
        for rep in 1..=2 {
            events.push(SimEvent::Phase {
                name: Arc::from("phase1"),
                repetition: rep,
            });
            events.extend(two_round_chain());
        }
        events.push(SimEvent::Phase {
            name: Arc::from("phase2"),
            repetition: 1,
        });
        events.extend(two_round_chain());
        let s = critical_path(&events);
        assert_eq!(s.segments.len(), 3);
        assert_eq!(s.segments[0].phase, "phase1");
        assert_eq!(s.segments[1].repetition, 2);
        assert_eq!(s.segments[2].phase, "phase2");
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phases[0].segments, 2);
        assert_eq!(s.phases[0].max_path_bits, 24);
        assert_eq!(s.phases[0].messages, 6);
        let json = s.to_json();
        assert!(json.contains(r#""name":"phase1","segments":2"#), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let human = s.render();
        assert!(human.contains("phase2"), "{human}");
        assert!(human.contains("critical chain"), "{human}");
    }

    #[test]
    fn check_passes_a_consistent_trace() {
        let v = check(&two_round_chain());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn check_flags_phantom_dependencies() {
        let mut events = two_round_chain();
        // msg 2 now claims a dep that was never delivered.
        events[8] = send(2, 2, 16, 2, &[0, 99]);
        let v = check(&events);
        assert!(v.iter().any(|m| m.contains("depends on msg 99")), "{v:?}");
    }

    #[test]
    fn check_flags_bandwidth_violation() {
        let events = vec![
            meta(2, 8, 0),
            SimEvent::RoundStart { round: 1 },
            send(1, 0, 6, 0, &[]),
            send(1, 0, 6, 1, &[]),
            round_end(1, 12, 2),
        ];
        let v = check(&events);
        assert!(v.iter().any(|m| m.contains("carried 12 bits")), "{v:?}");
    }

    #[test]
    fn check_flags_duplicate_ids_and_bad_rounds() {
        let events = vec![
            meta(2, 0, 0),
            SimEvent::RoundStart { round: 1 },
            send(1, 0, 4, 0, &[]),
            send(1, 1, 4, 0, &[]),
            round_end(1, 8, 2),
            SimEvent::RoundStart { round: 1 },
        ];
        let v = check(&events);
        assert!(v.iter().any(|m| m.contains("duplicate msg_id 0")), "{v:?}");
        assert!(
            v.iter().any(|m| m.contains("started after round 1")),
            "{v:?}"
        );
        assert!(v.iter().any(|m| m.contains("never ended")), "{v:?}");
    }

    #[test]
    fn check_flags_fault_tally_mismatch() {
        let events = vec![
            meta(2, 0, 0),
            SimEvent::RoundStart { round: 1 },
            send(1, 0, 4, 0, &[]),
            SimEvent::Drop {
                round: 1,
                from: 0,
                to: 1,
                port: 0,
                bits: 4,
                msg_id: 0,
            },
            round_end(1, 4, 1), // claims dropped: 0
        ];
        let v = check(&events);
        assert!(v.iter().any(|m| m.contains("1 drop events")), "{v:?}");
    }

    #[test]
    fn diff_reports_first_divergence_and_totals() {
        let a = two_round_chain();
        assert!(diff(&a, &a).is_empty());
        let mut b = a.clone();
        b[2] = send(1, 0, 9, 0, &[]);
        let d = diff(&a, &b);
        assert!(d[0].contains("event 2"), "{d:?}");
        assert!(d.iter().any(|l| l.contains("28 bits")), "{d:?}");
        let mut c = a.clone();
        c.truncate(5);
        let d = diff(&a, &c);
        assert!(d[0].contains("lengths differ"), "{d:?}");
    }

    #[test]
    fn idle_tail_counts_silent_trailing_rounds() {
        // Two busy rounds, then three silent clock ticks.
        let mut events = two_round_chain();
        for round in 3..=5 {
            events.push(SimEvent::RoundStart { round });
            events.push(round_end(round, 0, 0));
        }
        let s = idle_tail(&events);
        assert_eq!(s.segments.len(), 1);
        assert_eq!(s.segments[0].rounds, 5);
        assert_eq!(s.segments[0].last_busy_round, 2);
        assert_eq!(s.segments[0].idle_tail_rounds, 3);
        assert_eq!(s.total_rounds, 5);
        assert_eq!(s.total_idle_tail, 3);
        assert!((s.idle_fraction() - 0.6).abs() < 1e-9);
        let human = s.render();
        assert!(human.contains("3 of 5 rounds idle"), "{human}");
        // A fully busy trace has no tail.
        let busy = idle_tail(&two_round_chain());
        assert_eq!(busy.total_idle_tail, 0);
        assert_eq!(idle_tail(&[]).render(), "no rounds in trace\n");
    }

    #[test]
    fn heatmap_renders_rounds_and_hot_pairs() {
        let h = heatmap(&two_round_chain());
        assert!(h.contains("segment 0 (run rep 0)"), "{h}");
        assert!(h.contains("bandwidth=64 bits"), "{h}");
        assert!(h.contains("hottest pairs"), "{h}");
        assert!(h.contains("2->p0 16 bits"), "{h}");
        assert_eq!(heatmap(&[]), "empty trace\n");
    }
}
