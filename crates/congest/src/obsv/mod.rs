//! Observability spine shared by every simulator backend.
//!
//! The paper's claims are quantitative — Theorem 1.1's round bound and
//! Theorem 5.1's bandwidth bound only mean something if rounds, bits, and
//! per-edge congestion are *measured* and *exportable*. This module tree is
//! the one instrumentation layer all backends feed:
//!
//! * [`collect`] — a zero-cost-when-disabled structured tracing layer: the
//!   [`Collector`] trait receives span/event records (round start/end,
//!   per-node compute spans, send/drop/corrupt/crash, transport tallies)
//!   from the CONGEST engine, the congested-clique engine, and the reliable
//!   transport. [`crate::TraceBuffer`] implements it, so the legacy bounded
//!   trace is one collector among several.
//! * [`metrics`] — a registry of counters/gauges/histograms with
//!   *deterministic snapshot ordering* (sorted by name), so metric output is
//!   byte-identical under the work-stealing pool at any thread count.
//! * [`report`] — exporters: the schema-versioned run-report JSON, a
//!   JSON-lines trace dump ([`JsonlTrace`]), and a human summary table.
//!
//! Determinism contract: every event the engines emit is recorded from
//! sequential code in node order, so collectors observe an identical event
//! stream at any `RAYON_NUM_THREADS`. The single exception is wall-clock
//! compute-span timing ([`SimEvent::NodeCompute`]), which is only captured
//! when a collector opts in via [`Collector::wants_compute_spans`] and is
//! therefore excluded from the deterministic run report by default.

pub mod collect;
pub mod metrics;
pub mod report;

pub use collect::{Collector, ComputeTimer, Fanout, JsonlTrace, SimEvent};
pub use metrics::{Histogram, MetricValue, Metrics, MetricsSnapshot};
pub use report::{PhaseStat, RunReport, RUN_REPORT_SCHEMA, RUN_REPORT_VERSION};
