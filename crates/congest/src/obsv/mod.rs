//! Observability spine shared by every simulator backend.
//!
//! The paper's claims are quantitative — Theorem 1.1's round bound and
//! Theorem 5.1's bandwidth bound only mean something if rounds, bits, and
//! per-edge congestion are *measured* and *exportable*. This module tree is
//! the one instrumentation layer all backends feed:
//!
//! * [`collect`] — a zero-cost-when-disabled structured tracing layer: the
//!   [`Collector`] trait receives span/event records (round start/end,
//!   per-node compute spans, send/drop/corrupt/crash, transport tallies)
//!   from the CONGEST engine, the congested-clique engine, and the reliable
//!   transport. [`crate::TraceBuffer`] implements it, so the legacy bounded
//!   trace is one collector among several.
//! * [`metrics`] — a registry of counters/gauges/histograms with
//!   *deterministic snapshot ordering* (sorted by name), so metric output is
//!   byte-identical under the work-stealing pool at any thread count.
//! * [`report`] — exporters: the schema-versioned run-report JSON, a
//!   JSON-lines trace dump ([`JsonlTrace`]), and a human summary table.
//! * [`analyze`] — consumers of a recorded event stream: the happens-before
//!   DAG induced by the provenance on [`SimEvent::Send`], the weighted
//!   critical path through it, per-edge congestion heatmaps, a trace
//!   invariant checker, and a structural trace diff.
//! * [`profile`] — the engine self-profiler: cheap wall-clock spans around
//!   the engine's own stages (accounting, staging, delivery, node compute,
//!   ARQ retransmit scans), off unless a [`profile::Profiler`] is
//!   installed, exported as [`Metrics`] histograms or folded stacks.
//!
//! Determinism contract: every event the engines emit is recorded from
//! sequential code in node order, so collectors observe an identical event
//! stream at any `RAYON_NUM_THREADS`. The single exception is wall-clock
//! compute-span timing ([`SimEvent::NodeCompute`]), which is only captured
//! when a collector opts in via [`Collector::wants_compute_spans`] and is
//! therefore excluded from the deterministic run report by default.

pub mod analyze;
pub mod collect;
pub mod flight;
pub mod metrics;
pub mod profile;
pub mod report;

pub use analyze::{
    check, critical_path, diff, heatmap, idle_tail, CriticalPathSummary, IdleTailSummary,
    PhasePath, SegmentIdleTail, SegmentPath,
};
pub use collect::{Collector, ComputeTimer, EventLog, Fanout, JsonlTrace, SimEvent};
pub use flight::{
    FlightConfig, FlightRecorder, FlightTotals, RoundAgg, TopEntry, FLIGHT_RECORD_SCHEMA,
    FLIGHT_RECORD_VERSION,
};
pub use metrics::{Histogram, MetricValue, Metrics, MetricsSnapshot};
pub use profile::{Profiler, Section};
pub use report::{PhaseStat, RunReport, RUN_REPORT_SCHEMA, RUN_REPORT_VERSION};
