//! The structured tracing layer: events, the [`Collector`] trait, and the
//! stock collectors ([`Fanout`], [`JsonlTrace`], [`EventLog`],
//! [`ComputeTimer`]).
//!
//! Engines call [`Collector::record`] from *sequential* sections only, in
//! node order, so the event stream a collector sees is identical at any
//! thread count. Implementations still must be `Send + Sync` because a
//! collector handle may be shared with user threads.
//!
//! # Causal provenance
//!
//! Every message put on the wire carries a run-unique `msg_id`, assigned
//! in node order at accounting time, and every [`SimEvent::Send`] carries
//! `deps` — the ids of the messages the sending node *received* in the
//! previous round (its inbox when it computed this outbox). Together with
//! the explicit [`SimEvent::Deliver`] records this makes the event stream
//! a happens-before DAG over messages: `m1 → m2` iff `m1 ∈ deps(m2)`,
//! i.e. `m1` was delivered to `m2`'s sender one round before `m2` was
//! sent. Dropped deliveries never enter a `deps` set; corrupted ones do
//! (the corrupted payload still reached the algorithm). The DAG is what
//! [`crate::obsv::analyze`] walks to compute weighted critical paths.

use crate::obsv::metrics::Histogram;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// One structured event from a simulator backend.
///
/// `port` carries the CONGEST port index (`usize::MAX` for a broadcast);
/// the congested-clique engine has no ports, so there it carries the
/// destination node index instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// Run header: emitted once per engine run, before any round, so a
    /// trace is self-describing (the invariant checker reads the bandwidth
    /// bound from here).
    Meta {
        /// Number of nodes in the topology.
        n: usize,
        /// Per-edge-per-round bandwidth bound in bits (`0` = unbounded).
        bandwidth_bits: usize,
        /// Seed the run was keyed with.
        seed: u64,
    },
    /// A phase marker from a multi-run driver (e.g. the even-cycle
    /// detector): all events until the next marker belong to this phase.
    Phase {
        /// Phase label, e.g. `"phase1"`.
        name: Arc<str>,
        /// Repetition index within the driver's amplification loop.
        repetition: usize,
    },
    /// A communication round is about to execute.
    RoundStart {
        /// Round number (1-based).
        round: usize,
    },
    /// A communication round finished, with its traffic totals.
    RoundEnd {
        /// Round number (1-based).
        round: usize,
        /// Bits charged this round.
        bits: u64,
        /// Messages sent this round.
        messages: u64,
        /// Deliveries dropped by the fault layer this round.
        dropped: u64,
        /// Deliveries corrupted by the fault layer this round.
        corrupted: u64,
    },
    /// A message was put on the wire.
    Send {
        /// Round of the send.
        round: usize,
        /// Sending node.
        from: usize,
        /// Port (or clique destination); `usize::MAX` for a broadcast.
        port: usize,
        /// Message size in bits.
        bits: usize,
        /// Run-unique message id, assigned in node order at accounting
        /// time (a broadcast has one id even though it costs every port).
        msg_id: u64,
        /// Ids of the messages delivered to the sender in the previous
        /// round — the causal inputs this send may depend on. Empty for
        /// round-1 sends (produced by `init`, before any delivery). All
        /// sends of one node in one round share one `Arc`.
        deps: Arc<[u64]>,
    },
    /// A message reached its receiver's inbox intact.
    Deliver {
        /// Round of the delivery.
        round: usize,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Receiving port on the *receiver* (clique: the sender index).
        port: usize,
        /// Message size in bits.
        bits: usize,
        /// Id assigned to this message at send accounting.
        msg_id: u64,
    },
    /// A delivery was dropped by the fault model.
    Drop {
        /// Round of the (failed) delivery.
        round: usize,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Receiving port on the *receiver*.
        port: usize,
        /// Message size in bits.
        bits: usize,
        /// Id assigned to this message at send accounting.
        msg_id: u64,
    },
    /// A delivery was corrupted in flight (it still reaches the inbox, so
    /// it still enters the receiver's causal `deps`).
    Corrupt {
        /// Round of the delivery.
        round: usize,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Receiving port on the *receiver*.
        port: usize,
        /// Message size in bits.
        bits: usize,
        /// Id assigned to this message at send accounting.
        msg_id: u64,
    },
    /// A node crashed (crash-stop).
    Crash {
        /// Round of the crash.
        round: usize,
        /// The crashed node.
        node: usize,
    },
    /// A per-node compute span: how long one node's `init`/`on_round` call
    /// took. Only emitted when some collector opted in via
    /// [`Collector::wants_compute_spans`] — wall-clock values are
    /// inherently non-deterministic, so they never feed the deterministic
    /// run report.
    NodeCompute {
        /// Round of the step (`0` for `init`).
        round: usize,
        /// The node that computed.
        node: usize,
        /// Wall-clock nanoseconds the step took.
        nanos: u64,
    },
    /// End-of-run tallies from the reliable transport.
    TransportSummary {
        /// Data frames retransmitted across all nodes.
        retransmissions: u64,
        /// Frames never acknowledged within their retry budget.
        given_up: u64,
        /// Retransmissions that had entered exponential backoff
        /// (attempt three or later) before succeeding or giving up.
        backoff_events: u64,
    },
}

/// A sink for structured simulator events.
///
/// The engines hold an `Option<Arc<dyn Collector>>`; with no collector
/// installed the instrumentation is skipped entirely (no event values are
/// built, no message ids are assigned), so tracing is zero-cost when
/// disabled.
pub trait Collector: Send + Sync {
    /// Receives one event. Called from sequential engine code, in
    /// deterministic order.
    fn record(&self, ev: &SimEvent);

    /// Whether this collector wants [`SimEvent::NodeCompute`] spans. Timing
    /// costs two `Instant` reads per node per round, so engines only
    /// measure when some installed collector asks for it.
    fn wants_compute_spans(&self) -> bool {
        false
    }

    /// Whether this collector needs causal provenance — the `deps` sets on
    /// [`SimEvent::Send`]. Building them costs per-delivery id bookkeeping
    /// plus one `Arc<[u64]>` allocation per sender per round, so engines
    /// skip the work when no installed collector asks: sends then carry an
    /// empty `deps` (message ids are still assigned). Defaults to `true` —
    /// the full-trace collectors feed [`crate::obsv::analyze`], whose
    /// critical-path walk is provenance-driven. Bounded streaming
    /// collectors ([`crate::obsv::flight::FlightRecorder`]) opt out.
    fn wants_provenance(&self) -> bool {
        true
    }

    /// Events this collector discarded to honor a capacity bound. The
    /// simulation folds a non-zero total into the run metrics as
    /// `trace.dropped_events`, so truncation is reported instead of
    /// silent. Defaults to 0 (unbounded or non-buffering collectors).
    fn dropped_events(&self) -> u64 {
        0
    }
}

/// Broadcasts every event to several collectors.
pub struct Fanout(
    /// The collectors to fan out to, in record order.
    pub Vec<Arc<dyn Collector>>,
);

impl Collector for Fanout {
    fn record(&self, ev: &SimEvent) {
        for c in &self.0 {
            c.record(ev);
        }
    }

    fn wants_compute_spans(&self) -> bool {
        self.0.iter().any(|c| c.wants_compute_spans())
    }

    fn wants_provenance(&self) -> bool {
        self.0.iter().any(|c| c.wants_provenance())
    }

    fn dropped_events(&self) -> u64 {
        self.0.iter().map(|c| c.dropped_events()).sum()
    }
}

/// An unbounded in-memory event collector: keeps every [`SimEvent`] as a
/// value, in record order. The natural input for the
/// [`crate::obsv::analyze`] functions when the trace never needs to leave
/// the process (referee tests, the `congest-trace --canonical` gates).
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<SimEvent>>,
}

impl EventLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the recorded events, leaving the log empty.
    pub fn take(&self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Clones the recorded events.
    pub fn snapshot(&self) -> Vec<SimEvent> {
        self.events.lock().clone()
    }
}

impl Collector for EventLog {
    fn record(&self, ev: &SimEvent) {
        self.events.lock().push(ev.clone());
    }
}

/// A bounded JSON-lines trace exporter: every event becomes one JSON
/// object per line, in the order recorded. With compute spans disabled the
/// dump is byte-identical at any thread count.
#[derive(Debug, Default)]
pub struct JsonlTrace {
    inner: Mutex<JsonlInner>,
    capacity: usize,
    spans: bool,
}

#[derive(Debug, Default)]
struct JsonlInner {
    lines: Vec<String>,
    dropped: u64,
}

impl JsonlTrace {
    /// A trace keeping at most `capacity` lines (further events are
    /// counted, not stored).
    pub fn new(capacity: usize) -> Self {
        JsonlTrace {
            inner: Mutex::new(JsonlInner::default()),
            capacity,
            spans: false,
        }
    }

    /// Also captures (non-deterministic) per-node compute spans.
    pub fn with_compute_spans(mut self) -> Self {
        self.spans = true;
        self
    }

    /// Lines recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().lines.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// The dump: one JSON object per line, trailing newline included when
    /// non-empty.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = inner.lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Renders one event as its JSONL line (no trailing newline). Public
    /// so external serializers (e.g. the `congest-trace` toolkit) produce
    /// the exact on-disk format.
    pub fn render(ev: &SimEvent) -> String {
        Self::line(ev)
    }

    fn line(ev: &SimEvent) -> String {
        match ev {
            SimEvent::Meta {
                n,
                bandwidth_bits,
                seed,
            } => format!(r#"{{"ev":"meta","n":{n},"bandwidth":{bandwidth_bits},"seed":{seed}}}"#),
            SimEvent::Phase { name, repetition } => {
                format!(r#"{{"ev":"phase","name":"{name}","repetition":{repetition}}}"#)
            }
            SimEvent::RoundStart { round } => {
                format!(r#"{{"ev":"round_start","round":{round}}}"#)
            }
            SimEvent::RoundEnd {
                round,
                bits,
                messages,
                dropped,
                corrupted,
            } => format!(
                r#"{{"ev":"round_end","round":{round},"bits":{bits},"messages":{messages},"dropped":{dropped},"corrupted":{corrupted}}}"#
            ),
            SimEvent::Send {
                round,
                from,
                port,
                bits,
                msg_id,
                deps,
            } => {
                let mut out = format!(
                    r#"{{"ev":"send","round":{round},"from":{from},"port":{},"bits":{bits},"msg_id":{msg_id},"deps":["#,
                    PortRepr(*port)
                );
                for (i, d) in deps.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&d.to_string());
                }
                out.push_str("]}");
                out
            }
            SimEvent::Deliver {
                round,
                from,
                to,
                port,
                bits,
                msg_id,
            } => Self::delivery_line("deliver", *round, *from, *to, *port, *bits, *msg_id),
            SimEvent::Drop {
                round,
                from,
                to,
                port,
                bits,
                msg_id,
            } => Self::delivery_line("drop", *round, *from, *to, *port, *bits, *msg_id),
            SimEvent::Corrupt {
                round,
                from,
                to,
                port,
                bits,
                msg_id,
            } => Self::delivery_line("corrupt", *round, *from, *to, *port, *bits, *msg_id),
            SimEvent::Crash { round, node } => {
                format!(r#"{{"ev":"crash","round":{round},"node":{node}}}"#)
            }
            SimEvent::NodeCompute { round, node, nanos } => {
                format!(r#"{{"ev":"compute","round":{round},"node":{node},"nanos":{nanos}}}"#)
            }
            SimEvent::TransportSummary {
                retransmissions,
                given_up,
                backoff_events,
            } => format!(
                r#"{{"ev":"transport","retransmissions":{retransmissions},"given_up":{given_up},"backoff_events":{backoff_events}}}"#
            ),
        }
    }

    fn delivery_line(
        kind: &str,
        round: usize,
        from: usize,
        to: usize,
        port: usize,
        bits: usize,
        msg_id: u64,
    ) -> String {
        format!(
            r#"{{"ev":"{kind}","round":{round},"from":{from},"to":{to},"port":{},"bits":{bits},"msg_id":{msg_id}}}"#,
            PortRepr(port)
        )
    }
}

/// Renders `usize::MAX` (the broadcast marker) as `-1` so the JSON stays
/// portable.
struct PortRepr(usize);

impl std::fmt::Display for PortRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == usize::MAX {
            f.write_str("-1")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl Collector for JsonlTrace {
    fn record(&self, ev: &SimEvent) {
        let mut inner = self.inner.lock();
        if inner.lines.len() < self.capacity {
            let line = Self::line(ev);
            inner.lines.push(line);
        } else {
            inner.dropped += 1;
        }
    }

    fn wants_compute_spans(&self) -> bool {
        self.spans
    }

    fn dropped_events(&self) -> u64 {
        self.dropped()
    }
}

/// Accumulates [`SimEvent::NodeCompute`] spans into a histogram — the
/// "node-compute-time" metric. Installed internally by
/// [`Simulation::timed`](crate::Simulation::timed).
#[derive(Debug, Default)]
pub struct ComputeTimer {
    hist: Mutex<Histogram>,
}

impl ComputeTimer {
    /// A fresh timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the accumulated histogram, leaving an empty one.
    pub fn take(&self) -> Histogram {
        std::mem::take(&mut self.hist.lock())
    }
}

impl Collector for ComputeTimer {
    fn record(&self, ev: &SimEvent) {
        if let SimEvent::NodeCompute { nanos, .. } = ev {
            self.hist.lock().observe(*nanos);
        }
    }

    fn wants_compute_spans(&self) -> bool {
        true
    }

    // Only consumes compute spans — never make `timed(true)` alone pay for
    // provenance construction.
    fn wants_provenance(&self) -> bool {
        false
    }
}

/// Starts a compute span if `timing` is on; see [`span_nanos`].
#[inline]
pub(crate) fn span_start(timing: bool) -> Option<Instant> {
    if timing {
        Some(Instant::now())
    } else {
        None
    }
}

/// Closes a span opened by [`span_start`] (0 when timing was off).
#[inline]
pub(crate) fn span_nanos(start: Option<Instant>) -> u64 {
    start.map_or(0, |t| t.elapsed().as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(round: usize, from: usize, port: usize, bits: usize, msg_id: u64) -> SimEvent {
        SimEvent::Send {
            round,
            from,
            port,
            bits,
            msg_id,
            deps: Arc::from([]),
        }
    }

    #[test]
    fn jsonl_lines_are_objects() {
        let t = JsonlTrace::new(16);
        t.record(&SimEvent::RoundStart { round: 1 });
        t.record(&send(1, 0, usize::MAX, 64, 0));
        t.record(&SimEvent::Drop {
            round: 1,
            from: 1,
            to: 0,
            port: 0,
            bits: 8,
            msg_id: 1,
        });
        t.record(&SimEvent::RoundEnd {
            round: 1,
            bits: 72,
            messages: 2,
            dropped: 1,
            corrupted: 0,
        });
        let dump = t.to_jsonl();
        assert_eq!(dump.lines().count(), 4);
        assert!(dump.contains(r#""port":-1"#), "{dump}");
        for line in dump.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn jsonl_send_carries_provenance() {
        let t = JsonlTrace::new(4);
        t.record(&SimEvent::Send {
            round: 2,
            from: 3,
            port: 1,
            bits: 16,
            msg_id: 9,
            deps: Arc::from([4u64, 7]),
        });
        let dump = t.to_jsonl();
        assert!(dump.contains(r#""msg_id":9,"deps":[4,7]"#), "{dump}");
    }

    #[test]
    fn jsonl_bounded() {
        let t = JsonlTrace::new(1);
        t.record(&SimEvent::RoundStart { round: 1 });
        t.record(&SimEvent::RoundStart { round: 2 });
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn jsonl_capacity_eviction_keeps_dump_stable() {
        // Fill exactly to capacity, snapshot, then push more events: the
        // dump must not change and every overflow event must be counted.
        let t = JsonlTrace::new(3);
        for round in 1..=3 {
            t.record(&SimEvent::RoundStart { round });
        }
        assert_eq!(t.dropped(), 0, "at-capacity records are not drops");
        let at_boundary = t.to_jsonl();
        assert_eq!(at_boundary.lines().count(), 3);
        for round in 4..=8 {
            t.record(&SimEvent::RoundStart { round });
            t.record(&SimEvent::Crash { round, node: 0 });
        }
        assert_eq!(t.len(), 3, "capacity is a hard bound");
        assert_eq!(t.dropped(), 10);
        assert_eq!(t.to_jsonl(), at_boundary, "overflow must not evict");
    }

    #[test]
    fn zero_capacity_trace_counts_everything_as_dropped() {
        let t = JsonlTrace::new(0);
        t.record(&SimEvent::RoundStart { round: 1 });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn fanout_reaches_all_and_merges_span_wishes() {
        let a = Arc::new(JsonlTrace::new(8));
        let b = Arc::new(ComputeTimer::new());
        let f = Fanout(vec![a.clone(), b.clone()]);
        assert!(f.wants_compute_spans(), "ComputeTimer wants spans");
        f.record(&SimEvent::NodeCompute {
            round: 1,
            node: 0,
            nanos: 500,
        });
        assert_eq!(a.len(), 1);
        assert_eq!(b.take().count(), 1);
    }

    #[test]
    fn fanout_preserves_event_order_in_every_collector() {
        // Each collector must see the exact recorded sequence — fan-out
        // may not reorder, coalesce, or skip.
        let a = Arc::new(JsonlTrace::new(64));
        let b = Arc::new(JsonlTrace::new(64));
        let log = Arc::new(EventLog::new());
        let f = Fanout(vec![a.clone(), b.clone(), log.clone()]);
        let events = vec![
            SimEvent::RoundStart { round: 1 },
            send(1, 0, 1, 8, 0),
            send(1, 1, 0, 8, 1),
            SimEvent::Crash { round: 1, node: 2 },
            SimEvent::RoundEnd {
                round: 1,
                bits: 16,
                messages: 2,
                dropped: 0,
                corrupted: 0,
            },
        ];
        for ev in &events {
            f.record(ev);
        }
        let want: Vec<String> = events.iter().map(JsonlTrace::render).collect();
        let got_a: Vec<String> = a.to_jsonl().lines().map(str::to_string).collect();
        let got_b: Vec<String> = b.to_jsonl().lines().map(str::to_string).collect();
        assert_eq!(got_a, want, "first collector saw a different sequence");
        assert_eq!(got_b, want, "second collector saw a different sequence");
        assert_eq!(log.snapshot(), events, "event log saw a different sequence");
    }

    #[test]
    fn plain_jsonl_declines_spans() {
        assert!(!JsonlTrace::new(4).wants_compute_spans());
        assert!(JsonlTrace::new(4)
            .with_compute_spans()
            .wants_compute_spans());
    }

    #[test]
    fn event_log_takes_and_resets() {
        let log = EventLog::new();
        log.record(&SimEvent::RoundStart { round: 1 });
        assert_eq!(log.len(), 1);
        assert_eq!(log.take(), vec![SimEvent::RoundStart { round: 1 }]);
        assert!(log.is_empty());
    }
}
