//! The structured tracing layer: events, the [`Collector`] trait, and the
//! stock collectors ([`Fanout`], [`JsonlTrace`], [`ComputeTimer`]).
//!
//! Engines call [`Collector::record`] from *sequential* sections only, in
//! node order, so the event stream a collector sees is identical at any
//! thread count. Implementations still must be `Send + Sync` because a
//! collector handle may be shared with user threads.

use crate::obsv::metrics::Histogram;
use parking_lot::Mutex;
use std::time::Instant;

/// One structured event from a simulator backend.
///
/// `port` carries the CONGEST port index (`usize::MAX` for a broadcast);
/// the congested-clique engine has no ports, so there it carries the
/// destination node index instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A communication round is about to execute.
    RoundStart {
        /// Round number (1-based).
        round: usize,
    },
    /// A communication round finished, with its traffic totals.
    RoundEnd {
        /// Round number (1-based).
        round: usize,
        /// Bits charged this round.
        bits: u64,
        /// Messages sent this round.
        messages: u64,
        /// Deliveries dropped by the fault layer this round.
        dropped: u64,
        /// Deliveries corrupted by the fault layer this round.
        corrupted: u64,
    },
    /// A message was put on the wire.
    Send {
        /// Round of the send.
        round: usize,
        /// Sending node.
        from: usize,
        /// Port (or clique destination); `usize::MAX` for a broadcast.
        port: usize,
        /// Message size in bits.
        bits: usize,
    },
    /// A delivery was dropped by the fault model.
    Drop {
        /// Round of the (failed) delivery.
        round: usize,
        /// Sending node.
        from: usize,
        /// Receiving port on the *receiver*.
        port: usize,
        /// Message size in bits.
        bits: usize,
    },
    /// A delivery was corrupted in flight.
    Corrupt {
        /// Round of the delivery.
        round: usize,
        /// Sending node.
        from: usize,
        /// Receiving port on the *receiver*.
        port: usize,
        /// Message size in bits.
        bits: usize,
    },
    /// A node crashed (crash-stop).
    Crash {
        /// Round of the crash.
        round: usize,
        /// The crashed node.
        node: usize,
    },
    /// A per-node compute span: how long one node's `init`/`on_round` call
    /// took. Only emitted when some collector opted in via
    /// [`Collector::wants_compute_spans`] — wall-clock values are
    /// inherently non-deterministic, so they never feed the deterministic
    /// run report.
    NodeCompute {
        /// Round of the step (`0` for `init`).
        round: usize,
        /// The node that computed.
        node: usize,
        /// Wall-clock nanoseconds the step took.
        nanos: u64,
    },
    /// End-of-run tallies from the reliable transport.
    TransportSummary {
        /// Data frames retransmitted across all nodes.
        retransmissions: u64,
        /// Frames never acknowledged within their retry budget.
        given_up: u64,
    },
}

/// A sink for structured simulator events.
///
/// The engines hold an `Option<Arc<dyn Collector>>`; with no collector
/// installed the instrumentation is skipped entirely (no event values are
/// built), so tracing is zero-cost when disabled.
pub trait Collector: Send + Sync {
    /// Receives one event. Called from sequential engine code, in
    /// deterministic order.
    fn record(&self, ev: &SimEvent);

    /// Whether this collector wants [`SimEvent::NodeCompute`] spans. Timing
    /// costs two `Instant` reads per node per round, so engines only
    /// measure when some installed collector asks for it.
    fn wants_compute_spans(&self) -> bool {
        false
    }
}

/// Broadcasts every event to several collectors.
pub struct Fanout(
    /// The collectors to fan out to, in record order.
    pub Vec<std::sync::Arc<dyn Collector>>,
);

impl Collector for Fanout {
    fn record(&self, ev: &SimEvent) {
        for c in &self.0 {
            c.record(ev);
        }
    }

    fn wants_compute_spans(&self) -> bool {
        self.0.iter().any(|c| c.wants_compute_spans())
    }
}

/// A bounded JSON-lines trace exporter: every event becomes one JSON
/// object per line, in the order recorded. With compute spans disabled the
/// dump is byte-identical at any thread count.
#[derive(Debug, Default)]
pub struct JsonlTrace {
    inner: Mutex<JsonlInner>,
    capacity: usize,
    spans: bool,
}

#[derive(Debug, Default)]
struct JsonlInner {
    lines: Vec<String>,
    dropped: u64,
}

impl JsonlTrace {
    /// A trace keeping at most `capacity` lines (further events are
    /// counted, not stored).
    pub fn new(capacity: usize) -> Self {
        JsonlTrace {
            inner: Mutex::new(JsonlInner::default()),
            capacity,
            spans: false,
        }
    }

    /// Also captures (non-deterministic) per-node compute spans.
    pub fn with_compute_spans(mut self) -> Self {
        self.spans = true;
        self
    }

    /// Lines recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().lines.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// The dump: one JSON object per line, trailing newline included when
    /// non-empty.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = inner.lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    fn line(ev: &SimEvent) -> String {
        match *ev {
            SimEvent::RoundStart { round } => {
                format!(r#"{{"ev":"round_start","round":{round}}}"#)
            }
            SimEvent::RoundEnd {
                round,
                bits,
                messages,
                dropped,
                corrupted,
            } => format!(
                r#"{{"ev":"round_end","round":{round},"bits":{bits},"messages":{messages},"dropped":{dropped},"corrupted":{corrupted}}}"#
            ),
            SimEvent::Send {
                round,
                from,
                port,
                bits,
            } => Self::msg_line("send", round, from, port, bits),
            SimEvent::Drop {
                round,
                from,
                port,
                bits,
            } => Self::msg_line("drop", round, from, port, bits),
            SimEvent::Corrupt {
                round,
                from,
                port,
                bits,
            } => Self::msg_line("corrupt", round, from, port, bits),
            SimEvent::Crash { round, node } => {
                format!(r#"{{"ev":"crash","round":{round},"node":{node}}}"#)
            }
            SimEvent::NodeCompute { round, node, nanos } => {
                format!(r#"{{"ev":"compute","round":{round},"node":{node},"nanos":{nanos}}}"#)
            }
            SimEvent::TransportSummary {
                retransmissions,
                given_up,
            } => format!(
                r#"{{"ev":"transport","retransmissions":{retransmissions},"given_up":{given_up}}}"#
            ),
        }
    }

    fn msg_line(kind: &str, round: usize, from: usize, port: usize, bits: usize) -> String {
        // `usize::MAX` marks a broadcast; render it as -1 so the JSON stays
        // portable.
        if port == usize::MAX {
            format!(r#"{{"ev":"{kind}","round":{round},"from":{from},"port":-1,"bits":{bits}}}"#)
        } else {
            format!(
                r#"{{"ev":"{kind}","round":{round},"from":{from},"port":{port},"bits":{bits}}}"#
            )
        }
    }
}

impl Collector for JsonlTrace {
    fn record(&self, ev: &SimEvent) {
        let mut inner = self.inner.lock();
        if inner.lines.len() < self.capacity {
            let line = Self::line(ev);
            inner.lines.push(line);
        } else {
            inner.dropped += 1;
        }
    }

    fn wants_compute_spans(&self) -> bool {
        self.spans
    }
}

/// Accumulates [`SimEvent::NodeCompute`] spans into a histogram — the
/// "node-compute-time" metric. Installed internally by
/// [`Simulation::timed`](crate::Simulation::timed).
#[derive(Debug, Default)]
pub struct ComputeTimer {
    hist: Mutex<Histogram>,
}

impl ComputeTimer {
    /// A fresh timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the accumulated histogram, leaving an empty one.
    pub fn take(&self) -> Histogram {
        std::mem::take(&mut self.hist.lock())
    }
}

impl Collector for ComputeTimer {
    fn record(&self, ev: &SimEvent) {
        if let SimEvent::NodeCompute { nanos, .. } = ev {
            self.hist.lock().observe(*nanos);
        }
    }

    fn wants_compute_spans(&self) -> bool {
        true
    }
}

/// Starts a compute span if `timing` is on; see [`span_nanos`].
#[inline]
pub(crate) fn span_start(timing: bool) -> Option<Instant> {
    if timing {
        Some(Instant::now())
    } else {
        None
    }
}

/// Closes a span opened by [`span_start`] (0 when timing was off).
#[inline]
pub(crate) fn span_nanos(start: Option<Instant>) -> u64 {
    start.map_or(0, |t| t.elapsed().as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn jsonl_lines_are_objects() {
        let t = JsonlTrace::new(16);
        t.record(&SimEvent::RoundStart { round: 1 });
        t.record(&SimEvent::Send {
            round: 1,
            from: 0,
            port: usize::MAX,
            bits: 64,
        });
        t.record(&SimEvent::Drop {
            round: 1,
            from: 1,
            port: 0,
            bits: 8,
        });
        t.record(&SimEvent::RoundEnd {
            round: 1,
            bits: 72,
            messages: 2,
            dropped: 1,
            corrupted: 0,
        });
        let dump = t.to_jsonl();
        assert_eq!(dump.lines().count(), 4);
        assert!(dump.contains(r#""port":-1"#), "{dump}");
        for line in dump.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn jsonl_bounded() {
        let t = JsonlTrace::new(1);
        t.record(&SimEvent::RoundStart { round: 1 });
        t.record(&SimEvent::RoundStart { round: 2 });
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn fanout_reaches_all_and_merges_span_wishes() {
        let a = Arc::new(JsonlTrace::new(8));
        let b = Arc::new(ComputeTimer::new());
        let f = Fanout(vec![a.clone(), b.clone()]);
        assert!(f.wants_compute_spans(), "ComputeTimer wants spans");
        f.record(&SimEvent::NodeCompute {
            round: 1,
            node: 0,
            nanos: 500,
        });
        assert_eq!(a.len(), 1);
        assert_eq!(b.take().count(), 1);
    }

    #[test]
    fn plain_jsonl_declines_spans() {
        assert!(!JsonlTrace::new(4).wants_compute_spans());
        assert!(JsonlTrace::new(4)
            .with_compute_spans()
            .wants_compute_spans());
    }
}
