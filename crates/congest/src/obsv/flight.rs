//! The flight recorder: always-on, bounded-memory streaming telemetry.
//!
//! The PR-3/PR-5 observability stack ([`crate::TraceBuffer`],
//! [`JsonlTrace`]) keeps O(messages) state — exactly what an n = 10⁶
//! Theorem 1.1 run (billions of staged sends) or a long-lived
//! `congest-serve` process cannot afford. [`FlightRecorder`] is the
//! bounded replacement: it rides the same [`Collector`] seam but holds
//!
//! * a fixed-capacity **ring buffer** of the last K rounds of raw events
//!   (the "flight record" dumped when a run errors or degrades),
//! * **streaming per-round aggregates** — bits, messages, drops,
//!   corruptions folded from [`SimEvent::RoundEnd`] as each round closes,
//!   never materialized per event,
//! * a **space-saving top-k sketch** of the heaviest `(sender, port)`
//!   edges and senders by bits,
//! * a **seed-deterministic reservoir sample** of sends (Vitter's
//!   Algorithm R keyed off the run seed from [`SimEvent::Meta`]), so
//!   `congest-trace` analyses still have raw sends to chew on.
//!
//! Memory is O(K · ring_events_per_round + sample_capacity + top_k +
//! rounds), independent of message count.
//!
//! Determinism: engines record events from sequential code in node order,
//! so the recorder sees one fixed stream at any shards × threads. The
//! reservoir RNG is seeded from the run seed, therefore every field of
//! [`FlightRecorder::dump`] is byte-identical across thread counts —
//! wall-clock never enters the recorder.
//!
//! By default the recorder declines causal provenance
//! ([`Collector::wants_provenance`] returns `false`): engines then skip
//! building the per-send `deps` sets, which is what keeps the recorder's
//! overhead within the ≤5% budget the perf gate enforces on e1.

use crate::obsv::collect::{Collector, JsonlTrace, SimEvent};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Schema tag of a flight-record dump's header line.
pub const FLIGHT_RECORD_SCHEMA: &str = "congest.flight_record";
/// Version of the dump layout.
pub const FLIGHT_RECORD_VERSION: u32 = 1;

/// Salt xor-ed into the run seed for the reservoir RNG, so the sample
/// stream never aliases a node RNG stream.
const RESERVOIR_SALT: u64 = 0x666c_6967_6874; // "flight"

/// Capacity knobs for a [`FlightRecorder`]. The defaults bound the
/// recorder to a few hundred KiB regardless of run size.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// How many closed rounds of raw events the ring retains (K).
    pub ring_rounds: usize,
    /// Per-round cap on buffered raw events; overflow within a round is
    /// counted in `ring_dropped_events` (the round's `RoundStart` /
    /// `RoundEnd` brackets are always kept).
    pub ring_events_per_round: usize,
    /// Reservoir size for the seed-deterministic send sample.
    pub sample_capacity: usize,
    /// Number of counters in each space-saving sketch (heaviest edges,
    /// heaviest senders).
    pub top_k: usize,
    /// Whether the recorder asks engines for causal provenance (`deps` on
    /// sends). Off by default — provenance construction is the expensive
    /// part of tracing, and the recorder's analyses don't need it.
    pub provenance: bool,
    /// When set, the recorder dump is written here automatically on run
    /// error or fault-layer degradation (the "black box" behavior).
    pub dump_path: Option<String>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            ring_rounds: 8,
            ring_events_per_round: 2048,
            sample_capacity: 256,
            top_k: 8,
            provenance: false,
            dump_path: None,
        }
    }
}

/// Streaming aggregate of one closed round, folded from
/// [`SimEvent::RoundEnd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundAgg {
    /// Round number (1-based; restarts per trace segment).
    pub round: usize,
    /// Bits charged this round.
    pub bits: u64,
    /// Messages sent this round.
    pub messages: u64,
    /// Deliveries dropped by the fault layer this round.
    pub dropped: u64,
    /// Deliveries corrupted this round.
    pub corrupted: u64,
}

/// Running whole-run tallies maintained by the recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightTotals {
    /// Rounds closed (count of `RoundEnd` events).
    pub rounds: u64,
    /// Total bits across closed rounds.
    pub bits: u64,
    /// Total messages across closed rounds.
    pub messages: u64,
    /// Total fault-layer drops across closed rounds.
    pub dropped: u64,
    /// Total corruptions across closed rounds.
    pub corrupted: u64,
    /// Intact deliveries observed (streamed from `Deliver` events).
    pub delivered: u64,
    /// Node crashes observed.
    pub crashes: u64,
    /// Transport retransmissions (from `TransportSummary`).
    pub retransmissions: u64,
    /// Transport frames given up on.
    pub given_up: u64,
    /// Transport backoff events.
    pub backoff_events: u64,
}

/// One counter of a space-saving sketch: `(key, estimated count,
/// overestimation error)`. The true count is within `[count - err,
/// count]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopEntry<K> {
    /// The tracked key.
    pub key: K,
    /// Estimated total weight attributed to the key.
    pub count: u64,
    /// Maximum overestimation (the count the key inherited on eviction).
    pub err: u64,
}

/// Metwally et al.'s space-saving sketch over a fixed set of counters,
/// with deterministic (min count, then min key) eviction so the sketch
/// contents are identical for identical event streams.
#[derive(Debug, Clone)]
struct SpaceSaving<K> {
    cap: usize,
    entries: Vec<TopEntry<K>>,
}

impl<K: Ord + Copy> SpaceSaving<K> {
    fn new(cap: usize) -> Self {
        SpaceSaving {
            cap,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Adds `w` weight to `key`, evicting the lightest counter when full.
    fn observe(&mut self, key: K, w: u64) {
        if self.cap == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.count += w;
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.push(TopEntry { key, count: w, err: 0 });
            return;
        }
        // Deterministic victim: smallest count, ties by smallest key.
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.count, e.key))
            .map(|(i, _)| i)
            .expect("sketch is non-empty when full");
        let old = self.entries[victim].count;
        self.entries[victim] = TopEntry {
            key,
            count: old + w,
            err: old,
        };
    }

    /// Counters sorted heaviest-first (ties by key, ascending) — a stable,
    /// deterministic order for export.
    fn sorted(&self) -> Vec<TopEntry<K>> {
        let mut out = self.entries.clone();
        out.sort_by_key(|e| (std::cmp::Reverse(e.count), e.key));
        out
    }
}

#[derive(Debug)]
struct FlightInner {
    /// Run header from the first `Meta` (n, bandwidth bits, seed).
    meta: Option<(usize, usize, u64)>,
    /// Reservoir RNG, seeded from the first `Meta`'s seed.
    rng: Option<ChaCha8Rng>,
    /// Events of the currently open (unclosed) round.
    open: Vec<SimEvent>,
    /// Events the open round's cap already discarded.
    open_truncated: u64,
    /// Closed rounds, oldest first; each entry is that round's (possibly
    /// truncated) event buffer.
    ring: VecDeque<Vec<SimEvent>>,
    /// Events discarded by the per-round cap, cumulative over the run
    /// (aging a whole round out of the ring is not a drop and is not
    /// counted here).
    ring_dropped: u64,
    /// Per-round aggregates in stream order.
    aggs: Vec<RoundAgg>,
    totals: FlightTotals,
    /// Reservoir sample of `Send` events (Algorithm R).
    reservoir: Vec<SimEvent>,
    /// Total sends offered to the reservoir.
    sends_seen: u64,
    top_edges: SpaceSaving<(usize, usize)>,
    top_senders: SpaceSaving<usize>,
}

/// The bounded-memory streaming telemetry collector. See the module docs.
///
/// Install via [`Simulation::flight_recorder`](crate::Simulation::flight_recorder)
/// (composed with any other collector through [`Fanout`]) or hand it to an
/// engine directly as a [`Collector`].
///
/// [`Fanout`]: crate::obsv::Fanout
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    inner: Mutex<FlightInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(FlightConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder with the given capacity knobs.
    pub fn new(cfg: FlightConfig) -> Self {
        FlightRecorder {
            inner: Mutex::new(FlightInner {
                meta: None,
                rng: None,
                open: Vec::new(),
                open_truncated: 0,
                ring: VecDeque::with_capacity(cfg.ring_rounds + 1),
                ring_dropped: 0,
                aggs: Vec::new(),
                totals: FlightTotals::default(),
                reservoir: Vec::with_capacity(cfg.sample_capacity),
                sends_seen: 0,
                top_edges: SpaceSaving::new(cfg.top_k),
                top_senders: SpaceSaving::new(cfg.top_k),
            }),
            cfg,
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &FlightConfig {
        &self.cfg
    }

    /// The streaming per-round aggregates, in stream order.
    pub fn aggregates(&self) -> Vec<RoundAgg> {
        self.inner.lock().aggs.clone()
    }

    /// The running whole-run tallies.
    pub fn totals(&self) -> FlightTotals {
        self.inner.lock().totals
    }

    /// Sends offered to the reservoir so far.
    pub fn sends_seen(&self) -> u64 {
        self.inner.lock().sends_seen
    }

    /// Current reservoir occupancy (`min(sample_capacity, sends_seen)`).
    pub fn samples_len(&self) -> usize {
        self.inner.lock().reservoir.len()
    }

    /// Events the per-round ring cap discarded from retained rounds.
    pub fn ring_dropped_events(&self) -> u64 {
        let inner = self.inner.lock();
        inner.ring_dropped + inner.open_truncated
    }

    /// Closed rounds currently held in the ring.
    pub fn ring_len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// The heaviest `(sender, port)` pairs by bits, heaviest first.
    pub fn top_edges(&self) -> Vec<TopEntry<(usize, usize)>> {
        self.inner.lock().top_edges.sorted()
    }

    /// The heaviest senders by bits, heaviest first.
    pub fn top_senders(&self) -> Vec<TopEntry<usize>> {
        self.inner.lock().top_senders.sorted()
    }

    /// Serializes the recorder as a flight-record dump:
    ///
    /// 1. one header object (`"schema":"congest.flight_record"`) carrying
    ///    the run identity, streaming totals, and both top-k sketches,
    /// 2. the run's `meta` event line (when one was recorded),
    /// 3. the ring — raw event lines of the last K closed rounds plus any
    ///    open partial round (the crash case: an error mid-round leaves
    ///    its events in the partial tail),
    /// 4. the reservoir sample, one `"ev":"sample"` line per send, in
    ///    reservoir-slot order.
    ///
    /// Every line is JSONL in the [`JsonlTrace`] on-disk format (samples
    /// differ only in the `ev` tag). Byte-identical at any shards ×
    /// threads.
    pub fn dump(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        out.push_str(&Self::header_line(&self.cfg, &inner));
        out.push('\n');
        if let Some((n, bw, seed)) = inner.meta {
            let _ = writeln!(out, r#"{{"ev":"meta","n":{n},"bandwidth":{bw},"seed":{seed}}}"#);
        }
        for round in &inner.ring {
            for ev in round {
                out.push_str(&JsonlTrace::render(ev));
                out.push('\n');
            }
        }
        for ev in &inner.open {
            out.push_str(&JsonlTrace::render(ev));
            out.push('\n');
        }
        for ev in &inner.reservoir {
            let line = JsonlTrace::render(ev).replacen(r#""ev":"send""#, r#""ev":"sample""#, 1);
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Writes [`Self::dump`] to `path`.
    pub fn dump_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.dump())
    }

    /// The black-box hook: when [`FlightConfig::dump_path`] is set, write
    /// the dump there (logging, not propagating, any I/O failure — the
    /// recorder must never turn a degraded run into a failed one).
    pub(crate) fn dump_on_failure(&self, why: &str) {
        if let Some(path) = &self.cfg.dump_path {
            match self.dump_to(path) {
                Ok(()) => eprintln!("flight recorder: {why}; dump written to {path}"),
                Err(e) => eprintln!("flight recorder: {why}; FAILED to write {path}: {e}"),
            }
        }
    }

    fn header_line(cfg: &FlightConfig, inner: &FlightInner) -> String {
        let (n, bw, seed) = inner.meta.unwrap_or((0, 0, 0));
        let t = &inner.totals;
        let mut out = format!(
            r#"{{"schema":"{FLIGHT_RECORD_SCHEMA}","version":{FLIGHT_RECORD_VERSION},"n":{n},"bandwidth":{bw},"seed":{seed},"rounds":{},"bits":{},"messages":{},"dropped":{},"corrupted":{},"delivered":{},"crashes":{},"retransmissions":{},"given_up":{},"backoff_events":{},"ring_capacity":{},"ring_rounds":{},"ring_dropped_events":{},"sample_capacity":{},"samples":{},"sends_seen":{}"#,
            t.rounds,
            t.bits,
            t.messages,
            t.dropped,
            t.corrupted,
            t.delivered,
            t.crashes,
            t.retransmissions,
            t.given_up,
            t.backoff_events,
            cfg.ring_rounds,
            inner.ring.len(),
            inner.ring_dropped + inner.open_truncated,
            cfg.sample_capacity,
            inner.reservoir.len(),
            inner.sends_seen,
        );
        out.push_str(r#","top_edges":["#);
        for (i, e) in inner.top_edges.sorted().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let port: i64 = if e.key.1 == usize::MAX {
                -1
            } else {
                e.key.1 as i64
            };
            let _ = write!(
                out,
                r#"{{"from":{},"port":{port},"bits":{},"err":{}}}"#,
                e.key.0, e.count, e.err
            );
        }
        out.push_str(r#"],"top_senders":["#);
        for (i, e) in inner.top_senders.sorted().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#"{{"from":{},"bits":{},"err":{}}}"#,
                e.key, e.count, e.err
            );
        }
        out.push_str("]}");
        out
    }
}

impl FlightInner {
    /// Buffers a raw event into the open round, honoring the per-round cap.
    fn push_open(&mut self, cap: usize, ev: &SimEvent) {
        if self.open.len() < cap {
            self.open.push(ev.clone());
        } else {
            self.open_truncated += 1;
        }
    }
}

impl Collector for FlightRecorder {
    fn record(&self, ev: &SimEvent) {
        let mut inner = self.inner.lock();
        let cap = self.cfg.ring_events_per_round;
        match ev {
            SimEvent::Meta {
                n,
                bandwidth_bits,
                seed,
            } => {
                if inner.meta.is_none() {
                    inner.meta = Some((*n, *bandwidth_bits, *seed));
                    inner.rng = Some(ChaCha8Rng::seed_from_u64(*seed ^ RESERVOIR_SALT));
                }
            }
            SimEvent::Phase { .. } | SimEvent::NodeCompute { .. } => {}
            SimEvent::RoundStart { .. } => {
                // A fresh bracket; anything stranded in the open buffer
                // (events between runs) is dropped silently — only full
                // rounds and the final partial round are retained.
                inner.open.clear();
                inner.open_truncated = 0;
                inner.open.push(ev.clone());
            }
            SimEvent::Send {
                from, port, bits, ..
            } => {
                inner.sends_seen += 1;
                inner.top_edges.observe((*from, *port), *bits as u64);
                inner.top_senders.observe(*from, *bits as u64);
                // Vitter's Algorithm R: each send survives with
                // probability sample_capacity / sends_seen.
                let cap_s = self.cfg.sample_capacity;
                if inner.reservoir.len() < cap_s {
                    inner.reservoir.push(ev.clone());
                } else if cap_s > 0 {
                    let seen = inner.sends_seen;
                    if let Some(rng) = inner.rng.as_mut() {
                        let j = rng.gen_range(0..seen);
                        if (j as usize) < cap_s {
                            inner.reservoir[j as usize] = ev.clone();
                        }
                    }
                }
                inner.push_open(cap, ev);
            }
            SimEvent::Deliver { .. } => {
                inner.totals.delivered += 1;
                inner.push_open(cap, ev);
            }
            SimEvent::Drop { .. } | SimEvent::Corrupt { .. } => {
                inner.push_open(cap, ev);
            }
            SimEvent::Crash { .. } => {
                inner.totals.crashes += 1;
                inner.push_open(cap, ev);
            }
            SimEvent::RoundEnd {
                round,
                bits,
                messages,
                dropped,
                corrupted,
            } => {
                inner.aggs.push(RoundAgg {
                    round: *round,
                    bits: *bits,
                    messages: *messages,
                    dropped: *dropped,
                    corrupted: *corrupted,
                });
                inner.totals.rounds += 1;
                inner.totals.bits += bits;
                inner.totals.messages += messages;
                inner.totals.dropped += dropped;
                inner.totals.corrupted += corrupted;
                // Close the round: the bracket always lands in the ring
                // even when the cap truncated the round's interior.
                inner.open.push(ev.clone());
                let closed = std::mem::take(&mut inner.open);
                inner.ring_dropped += inner.open_truncated;
                inner.open_truncated = 0;
                inner.ring.push_back(closed);
                while inner.ring.len() > self.cfg.ring_rounds {
                    // Aging a whole round out is the ring working as
                    // designed, not data loss; `ring_dropped` only counts
                    // per-round-cap truncation, cumulatively over the
                    // recorder's lifetime (aged-out rounds keep their debt).
                    inner.ring.pop_front();
                }
            }
            SimEvent::TransportSummary {
                retransmissions,
                given_up,
                backoff_events,
            } => {
                inner.totals.retransmissions += retransmissions;
                inner.totals.given_up += given_up;
                inner.totals.backoff_events += backoff_events;
            }
        }
    }

    fn wants_provenance(&self) -> bool {
        self.cfg.provenance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn send(round: usize, from: usize, port: usize, bits: usize, msg_id: u64) -> SimEvent {
        SimEvent::Send {
            round,
            from,
            port,
            bits,
            msg_id,
            deps: Arc::from([]),
        }
    }

    fn round_end(round: usize, bits: u64, messages: u64) -> SimEvent {
        SimEvent::RoundEnd {
            round,
            bits,
            messages,
            dropped: 0,
            corrupted: 0,
        }
    }

    fn feed(rec: &FlightRecorder, rounds: usize, sends_per_round: usize) {
        rec.record(&SimEvent::Meta {
            n: 4,
            bandwidth_bits: 32,
            seed: 7,
        });
        for r in 1..=rounds {
            rec.record(&SimEvent::RoundStart { round: r });
            for s in 0..sends_per_round {
                rec.record(&send(r, s % 4, s % 3, 8, (r * 100 + s) as u64));
            }
            rec.record(&round_end(r, 8 * sends_per_round as u64, sends_per_round as u64));
        }
    }

    #[test]
    fn ring_keeps_last_k_rounds() {
        let rec = FlightRecorder::new(FlightConfig {
            ring_rounds: 3,
            ..FlightConfig::default()
        });
        feed(&rec, 10, 2);
        assert_eq!(rec.ring_len(), 3);
        let dump = rec.dump();
        assert!(dump.contains(r#""ev":"round_start","round":8"#), "{dump}");
        assert!(!dump.contains(r#""ev":"round_start","round":7"#), "{dump}");
        assert_eq!(rec.ring_dropped_events(), 0);
    }

    #[test]
    fn per_round_cap_truncates_and_counts() {
        let rec = FlightRecorder::new(FlightConfig {
            ring_rounds: 4,
            ring_events_per_round: 3, // round_start + 2 sends
            ..FlightConfig::default()
        });
        feed(&rec, 2, 5);
        // 5 sends per round, 2 fit beside the bracket: 3 truncated each.
        assert_eq!(rec.ring_dropped_events(), 6);
        let dump = rec.dump();
        // RoundEnd survives truncation so brackets stay balanced.
        assert!(dump.contains(r#""ev":"round_end","round":2"#), "{dump}");
    }

    #[test]
    fn aggregates_fold_from_round_end() {
        let rec = FlightRecorder::default();
        feed(&rec, 3, 4);
        let aggs = rec.aggregates();
        assert_eq!(aggs.len(), 3);
        assert_eq!(
            aggs[1],
            RoundAgg {
                round: 2,
                bits: 32,
                messages: 4,
                dropped: 0,
                corrupted: 0
            }
        );
        let t = rec.totals();
        assert_eq!((t.rounds, t.bits, t.messages), (3, 96, 12));
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let make = || {
            let rec = FlightRecorder::new(FlightConfig {
                sample_capacity: 16,
                ..FlightConfig::default()
            });
            feed(&rec, 20, 25);
            rec
        };
        let (a, b) = (make(), make());
        assert_eq!(a.samples_len(), 16);
        assert_eq!(a.sends_seen(), 500);
        assert_eq!(a.dump(), b.dump(), "identical streams, identical dumps");
    }

    #[test]
    fn space_saving_tracks_heavy_hitter_exactly_when_it_fits() {
        let mut sk = SpaceSaving::new(2);
        for _ in 0..10 {
            sk.observe(1usize, 8);
        }
        sk.observe(2, 8);
        sk.observe(3, 8); // evicts key 2 (count 8, smallest key wins tie? key 2 < nothing else at 8)
        let top = sk.sorted();
        assert_eq!(top[0].key, 1);
        assert_eq!(top[0].count, 80);
        assert_eq!(top[0].err, 0);
        assert_eq!(top[1].key, 3);
        assert_eq!(top[1].count, 16, "inherits the evicted count");
        assert_eq!(top[1].err, 8);
    }

    #[test]
    fn dump_header_is_first_line_and_valid_shape() {
        let rec = FlightRecorder::default();
        feed(&rec, 2, 3);
        rec.record(&SimEvent::TransportSummary {
            retransmissions: 5,
            given_up: 1,
            backoff_events: 2,
        });
        let dump = rec.dump();
        let header = dump.lines().next().unwrap();
        assert!(
            header.starts_with(r#"{"schema":"congest.flight_record","version":1"#),
            "{header}"
        );
        assert!(header.contains(r#""retransmissions":5"#), "{header}");
        assert!(header.contains(r#""top_edges":["#), "{header}");
        for line in dump.lines() {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        // Sample lines use the sample tag, not send.
        assert!(dump.contains(r#""ev":"sample""#), "{dump}");
    }

    #[test]
    fn partial_open_round_lands_in_dump() {
        let rec = FlightRecorder::default();
        rec.record(&SimEvent::Meta {
            n: 2,
            bandwidth_bits: 8,
            seed: 1,
        });
        rec.record(&SimEvent::RoundStart { round: 1 });
        rec.record(&send(1, 0, 0, 8, 0));
        // No RoundEnd — the error-mid-round case.
        let dump = rec.dump();
        assert!(dump.contains(r#""ev":"round_start","round":1"#), "{dump}");
        assert!(dump.contains(r#""ev":"send","round":1"#), "{dump}");
    }

    #[test]
    fn recorder_declines_provenance_by_default() {
        assert!(!FlightRecorder::default().wants_provenance());
        let cfg = FlightConfig {
            provenance: true,
            ..FlightConfig::default()
        };
        assert!(FlightRecorder::new(cfg).wants_provenance());
    }
}
