//! The machine-readable run report and the human summary table.
//!
//! A [`RunReport`] is the schema-versioned export of one simulation (or of
//! a multi-phase driver like the even-cycle detector): rounds, total and
//! per-round bits, max-edge congestion, fault tallies, a per-phase
//! breakdown, and the full metrics snapshot. The JSON it renders is built
//! from deterministic inputs only, so a seeded run's report is
//! byte-identical at any `RAYON_NUM_THREADS` — the property the golden and
//! cross-thread tests pin.

use crate::engine::Degraded;
use crate::faults::FaultReport;
use crate::obsv::analyze::CriticalPathSummary;
use crate::obsv::metrics::MetricsSnapshot;
use crate::stats::RunStats;
use std::fmt::Write as _;

/// Schema identifier embedded in every run-report JSON document.
pub const RUN_REPORT_SCHEMA: &str = "congest.run_report";
/// Version of the run-report schema. Bump when the JSON shape changes.
/// v2: per-round fault/retransmission arrays in `faults`, optional
/// `critical_path` block.
/// v3: transport-v2 tallies (`backoff_events`, `retransmissions_per_link`)
/// in `faults`, optional `degraded` block (surviving nodes + confidence).
pub const RUN_REPORT_VERSION: u32 = 3;

/// Round/bit totals of one named phase of a multi-phase driver (e.g. the
/// even-cycle detector's Phase I / Phase II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (e.g. `"phase1"`).
    pub name: String,
    /// Rounds the phase executed (summed over repetitions).
    pub rounds: usize,
    /// Bits the phase sent (summed over repetitions).
    pub bits: u64,
}

impl PhaseStat {
    /// A phase stat.
    pub fn new(name: &str, rounds: usize, bits: u64) -> Self {
        PhaseStat {
            name: name.to_string(),
            rounds,
            bits,
        }
    }
}

/// Fault tallies of one run, flattened for export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Messages delivered intact.
    pub delivered: u64,
    /// Deliveries dropped.
    pub dropped: u64,
    /// Deliveries corrupted.
    pub corrupted: u64,
    /// Nodes crashed.
    pub crashed: u64,
    /// Transport retransmissions.
    pub retransmissions: u64,
    /// Transport retransmissions at backoff stage ≥ 2 (third or later
    /// attempt).
    pub backoff_events: u64,
    /// Transport frames given up on.
    pub given_up: u64,
    /// Drops per round (empty when the run tracked none).
    pub dropped_per_round: Vec<u64>,
    /// Transport retransmissions per physical round (empty when the run
    /// had no reliable transport).
    pub retransmissions_per_round: Vec<u64>,
    /// Transport retransmissions per directed link in CSR order (empty
    /// when the run had no reliable transport).
    pub retransmissions_per_link: Vec<u64>,
}

impl From<&FaultReport> for FaultTally {
    fn from(f: &FaultReport) -> Self {
        FaultTally {
            delivered: f.delivered,
            dropped: f.dropped,
            corrupted: f.corrupted,
            crashed: f.crashed.len() as u64,
            retransmissions: f.retransmissions,
            backoff_events: f.backoff_events,
            given_up: f.given_up,
            dropped_per_round: f.dropped_per_round.clone(),
            retransmissions_per_round: f.retransmissions_per_round.clone(),
            retransmissions_per_link: f.retransmissions_per_link.clone(),
        }
    }
}

/// The schema-versioned export of one run. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Free-form label naming the run (e.g. `"even_cycle_k2"`).
    pub label: String,
    /// Rounds executed.
    pub rounds: usize,
    /// Total bits over all edges and rounds.
    pub total_bits: u64,
    /// Total messages.
    pub total_messages: u64,
    /// Maximum bits on one directed edge in one round.
    pub max_edge_round_bits: usize,
    /// Whether the run halted before the round limit.
    pub completed: bool,
    /// Bits sent in each round.
    pub per_round_bits: Vec<u64>,
    /// Fault tallies.
    pub faults: FaultTally,
    /// Per-phase breakdown (empty for single-phase runs).
    pub phases: Vec<PhaseStat>,
    /// Critical-path analysis of the run's trace, when one was recorded
    /// (see [`crate::obsv::analyze`]; attach with
    /// [`Self::with_critical_path`]).
    pub critical_path: Option<CriticalPathSummary>,
    /// Graceful-degradation verdict, when the run degraded (attach with
    /// [`Self::with_degradation`]; `n` is carried alongside so the quorum
    /// bit renders without the topology).
    pub degraded: Option<(Degraded, usize)>,
    /// Full metrics snapshot.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// A report assembled from run products (no phase breakdown; attach one
    /// with [`Self::with_phases`]).
    pub fn from_stats(
        label: &str,
        stats: &RunStats,
        faults: &FaultReport,
        completed: bool,
        metrics: MetricsSnapshot,
    ) -> Self {
        RunReport {
            label: label.to_string(),
            rounds: stats.rounds,
            total_bits: stats.total_bits,
            total_messages: stats.total_messages,
            max_edge_round_bits: stats.max_edge_round_bits,
            completed,
            per_round_bits: stats.per_round_bits.clone(),
            faults: FaultTally::from(faults),
            phases: Vec::new(),
            critical_path: None,
            degraded: None,
            metrics,
        }
    }

    /// Attaches a per-phase breakdown.
    pub fn with_phases(mut self, phases: Vec<PhaseStat>) -> Self {
        self.phases = phases;
        self
    }

    /// Attaches a critical-path analysis (computed by
    /// [`crate::obsv::analyze::critical_path`] over the run's trace). The
    /// summary is deterministic, so it is safe in golden reports.
    pub fn with_critical_path(mut self, cp: CriticalPathSummary) -> Self {
        self.critical_path = Some(cp);
        self
    }

    /// Attaches the graceful-degradation verdict of a run over `n` nodes
    /// (no-op when the run completed cleanly). Confidence is rendered with
    /// fixed precision, so the block is safe in golden reports.
    pub fn with_degradation(mut self, degraded: Option<Degraded>, n: usize) -> Self {
        self.degraded = degraded.map(|d| (d, n));
        self
    }

    /// The report as one schema-versioned JSON document (trailing newline
    /// included). Built from deterministic inputs only — see module docs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, r#"  "schema": "{RUN_REPORT_SCHEMA}","#);
        let _ = writeln!(out, r#"  "version": {RUN_REPORT_VERSION},"#);
        let _ = writeln!(out, r#"  "label": "{}","#, json_escape(&self.label));
        let _ = writeln!(out, r#"  "rounds": {},"#, self.rounds);
        let _ = writeln!(out, r#"  "total_bits": {},"#, self.total_bits);
        let _ = writeln!(out, r#"  "total_messages": {},"#, self.total_messages);
        let _ = writeln!(
            out,
            r#"  "max_edge_round_bits": {},"#,
            self.max_edge_round_bits
        );
        let _ = writeln!(out, r#"  "completed": {},"#, self.completed);
        let series: Vec<String> = self.per_round_bits.iter().map(u64::to_string).collect();
        let _ = writeln!(out, r#"  "per_round_bits": [{}],"#, series.join(","));
        let f = &self.faults;
        let join = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        let _ = writeln!(
            out,
            r#"  "faults": {{"delivered":{},"dropped":{},"corrupted":{},"crashed":{},"retransmissions":{},"backoff_events":{},"given_up":{},"dropped_per_round":[{}],"retransmissions_per_round":[{}],"retransmissions_per_link":[{}]}},"#,
            f.delivered,
            f.dropped,
            f.corrupted,
            f.crashed,
            f.retransmissions,
            f.backoff_events,
            f.given_up,
            join(&f.dropped_per_round),
            join(&f.retransmissions_per_round),
            join(&f.retransmissions_per_link)
        );
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    r#"{{"name":"{}","rounds":{},"bits":{}}}"#,
                    json_escape(&p.name),
                    p.rounds,
                    p.bits
                )
            })
            .collect();
        let _ = writeln!(out, r#"  "phases": [{}],"#, phases.join(","));
        if let Some(cp) = &self.critical_path {
            let _ = writeln!(out, r#"  "critical_path": {},"#, cp.to_json());
        }
        if let Some((d, n)) = &self.degraded {
            let surviving: Vec<String> = d.surviving.iter().map(usize::to_string).collect();
            let _ = writeln!(
                out,
                r#"  "degraded": {{"surviving":[{}],"confidence":{:.4},"quorum":{}}},"#,
                surviving.join(","),
                d.confidence,
                d.has_quorum(*n)
            );
        }
        let _ = writeln!(out, r#"  "metrics": {}"#, self.metrics.to_json());
        out.push_str("}\n");
        out
    }

    /// A compact human-readable summary table.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run report: {}", self.label);
        let w = 24;
        let mut row = |k: &str, v: String| {
            let _ = writeln!(out, "  {k:<w$} {v}");
        };
        row("rounds", self.rounds.to_string());
        row("total bits", self.total_bits.to_string());
        row("total messages", self.total_messages.to_string());
        row(
            "max edge congestion",
            format!("{} bits/round", self.max_edge_round_bits),
        );
        row("completed", self.completed.to_string());
        let f = &self.faults;
        row(
            "faults",
            format!(
                "{} delivered, {} dropped, {} corrupted, {} crashed",
                f.delivered, f.dropped, f.corrupted, f.crashed
            ),
        );
        if f.retransmissions > 0 || f.given_up > 0 {
            row(
                "transport",
                format!(
                    "{} retransmissions ({} backed off), {} given up",
                    f.retransmissions, f.backoff_events, f.given_up
                ),
            );
        }
        if let Some((d, n)) = &self.degraded {
            row(
                "degraded",
                format!(
                    "{} of {} nodes surviving (quorum: {}), confidence {:.4}",
                    d.surviving.len(),
                    n,
                    d.has_quorum(*n),
                    d.confidence
                ),
            );
        }
        for p in &self.phases {
            row(
                &format!("phase {}", p.name),
                format!("{} rounds, {} bits", p.rounds, p.bits),
            );
        }
        if let Some(cp) = &self.critical_path {
            for p in &cp.phases {
                row(
                    &format!("critical path {}", p.phase),
                    format!("{} bits over {} messages", p.max_path_bits, p.max_path_len),
                );
            }
        }
        if let Some(h) = self.metrics.hist("compute.node_nanos") {
            row(
                "node compute",
                format!(
                    "{} spans, mean {:.0} ns, max {} ns",
                    h.count(),
                    h.mean(),
                    h.max()
                ),
            );
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obsv::metrics::Metrics;
    use graphlib::generators;

    fn sample_report() -> RunReport {
        let g = generators::cycle(4);
        let mut stats = RunStats::new(&g);
        stats.rounds = 2;
        stats.total_bits = 96;
        stats.total_messages = 8;
        stats.max_edge_round_bits = 12;
        stats.per_round_bits = vec![64, 32];
        stats.per_round_messages = vec![6, 2];
        let faults = FaultReport::default();
        let metrics = Metrics::from_run(&stats, &faults).snapshot();
        RunReport::from_stats("sample", &stats, &faults, true, metrics)
            .with_phases(vec![PhaseStat::new("phase1", 2, 96)])
    }

    #[test]
    fn json_is_schema_versioned_and_balanced() {
        let json = sample_report().to_json();
        assert!(json.contains(r#""schema": "congest.run_report""#), "{json}");
        assert!(json.contains(&format!(r#""version": {RUN_REPORT_VERSION}"#)));
        assert!(json.contains(r#""per_round_bits": [64,32]"#));
        assert!(json.contains(r#""phases": [{"name":"phase1","rounds":2,"bits":96}]"#));
        assert!(json.contains(r#""dropped_per_round":[]"#), "{json}");
        assert!(json.contains(r#""bits.total":96"#));
        assert!(json.contains(r#""backoff_events":0"#), "{json}");
        assert!(json.contains(r#""retransmissions_per_link":[]"#), "{json}");
        assert!(!json.contains("critical_path"), "absent unless attached");
        assert!(!json.contains("degraded"), "absent unless attached");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn per_round_fault_arrays_and_critical_path_render() {
        let g = generators::cycle(4);
        let mut stats = RunStats::new(&g);
        stats.rounds = 2;
        let faults = FaultReport {
            dropped: 3,
            dropped_per_round: vec![2, 1],
            retransmissions: 4,
            retransmissions_per_round: vec![0, 4],
            ..FaultReport::default()
        };
        let metrics = Metrics::from_run(&stats, &faults).snapshot();
        let cp = crate::obsv::analyze::critical_path(&[]);
        let report =
            RunReport::from_stats("arq", &stats, &faults, true, metrics).with_critical_path(cp);
        let json = report.to_json();
        assert!(json.contains(r#""dropped_per_round":[2,1]"#), "{json}");
        assert!(
            json.contains(r#""retransmissions_per_round":[0,4]"#),
            "{json}"
        );
        assert!(
            json.contains(r#""critical_path": {"phases":[],"segments":[]}"#),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn degraded_block_renders_with_fixed_precision() {
        let g = generators::cycle(4);
        let mut stats = RunStats::new(&g);
        stats.rounds = 3;
        let faults = FaultReport {
            retransmissions: 7,
            backoff_events: 2,
            retransmissions_per_link: vec![3, 0, 4, 0, 0, 0, 0, 0],
            given_up: 1,
            ..FaultReport::default()
        };
        let metrics = Metrics::from_run(&stats, &faults).snapshot();
        let report = RunReport::from_stats("degraded", &stats, &faults, false, metrics)
            .with_degradation(
                Some(Degraded {
                    surviving: vec![0, 1, 2],
                    confidence: 0.75,
                }),
                4,
            );
        let json = report.to_json();
        assert!(
            json.contains(r#""degraded": {"surviving":[0,1,2],"confidence":0.7500,"quorum":true}"#),
            "{json}"
        );
        assert!(json.contains(r#""backoff_events":2"#), "{json}");
        assert!(
            json.contains(r#""retransmissions_per_link":[3,0,4,0,0,0,0,0]"#),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = report.summary_table();
        assert!(table.contains("3 of 4 nodes surviving"), "{table}");
        assert!(table.contains("confidence 0.7500"), "{table}");
        assert!(table.contains("2 backed off"), "{table}");
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let s = sample_report().summary_table();
        assert!(s.contains("sample"));
        assert!(s.contains("96"));
        assert!(s.contains("phase phase1"), "{s}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), r#"x\ny"#);
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
