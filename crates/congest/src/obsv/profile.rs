//! The engine self-profiler: cheap wall-clock spans around the hot
//! sections of both simulator backends and the ARQ transport.
//!
//! Off by default — the engines hold an `Option<Arc<Profiler>>` and the
//! disabled path is a single branch per section per round, so profiling
//! costs nothing measurable when not requested. When enabled, each
//! section's span durations accumulate into a [`Histogram`] (per round, or
//! per node per round for the ARQ scan), which feeds `profile.*_nanos`
//! metrics and a folded-stack export consumable by standard flamegraph
//! tools (`flamegraph.pl`, inferno, speedscope).
//!
//! Wall-clock values are inherently non-deterministic, so profiler output
//! never feeds the deterministic run report or the golden files — same
//! contract as [`SimEvent::NodeCompute`](crate::SimEvent::NodeCompute)
//! spans.

use crate::obsv::metrics::{Histogram, Metrics};
use parking_lot::Mutex;
use std::time::Instant;

/// The instrumented sections of the simulator hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `engine.rs`: per-round send accounting (bandwidth checks, traffic
    /// counters, trace emission). Recorded only on the pre-fusion
    /// three-pass reference path (`Simulation::fused(false)`).
    Account,
    /// `engine.rs`: `RoundRouter` staging — counting-sort of unicasts into
    /// the CSR arena and broadcast materialization. Pre-fusion path only.
    Stage,
    /// `engine.rs` / `cliquemodel.rs`: delivery — merging staged messages
    /// into inboxes, fault adjudication included. On the fused engine path
    /// only the clique backend records it.
    Deliver,
    /// `engine.rs`: the fused single-sweep round body (the default path) —
    /// account + stage in one outbox drain, then transpose + delivery, all
    /// under one span.
    Fused,
    /// Both backends: the node-compute section (`init`/`on_round` over all
    /// nodes, parallel schedule included).
    Compute,
    /// `reliable.rs`: the per-node ARQ retransmit scan (timeout checks and
    /// frame re-sends). Recorded from parallel node steps.
    ArqRetransmit,
}

/// All sections, in display order.
pub const SECTIONS: [Section; 6] = [
    Section::Account,
    Section::Stage,
    Section::Deliver,
    Section::Fused,
    Section::Compute,
    Section::ArqRetransmit,
];

impl Section {
    /// Stable lowercase name, used in metric keys and folded stacks.
    pub fn name(self) -> &'static str {
        match self {
            Section::Account => "account",
            Section::Stage => "stage",
            Section::Deliver => "deliver",
            Section::Fused => "fused",
            Section::Compute => "compute",
            Section::ArqRetransmit => "arq_retransmit",
        }
    }

    fn index(self) -> usize {
        match self {
            Section::Account => 0,
            Section::Stage => 1,
            Section::Deliver => 2,
            Section::Fused => 3,
            Section::Compute => 4,
            Section::ArqRetransmit => 5,
        }
    }
}

/// Accumulates wall-clock span durations per [`Section`].
///
/// Shared behind an `Arc` between the caller and the engines; `record` may
/// be called from parallel sections (the ARQ scan), hence the per-section
/// mutex. Lock contention is irrelevant at profiling granularity — spans
/// are recorded once per round (or per node-round), not per message.
#[derive(Debug, Default)]
pub struct Profiler {
    sections: [Mutex<SectionStats>; 6],
}

#[derive(Debug, Default)]
struct SectionStats {
    hist: Histogram,
    total_nanos: u64,
}

impl Profiler {
    /// A fresh profiler with empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span. Pair with [`Self::record`].
    #[inline]
    pub fn start(&self) -> Instant {
        Instant::now()
    }

    /// Closes a span opened by [`Self::start`], crediting `section`.
    #[inline]
    pub fn record(&self, section: Section, start: Instant) {
        self.record_nanos(section, start.elapsed().as_nanos() as u64);
    }

    /// Credits `section` with an already-measured duration.
    pub fn record_nanos(&self, section: Section, nanos: u64) {
        let mut s = self.sections[section.index()].lock();
        s.hist.observe(nanos);
        s.total_nanos += nanos;
    }

    /// Snapshot of one section's span histogram.
    pub fn histogram(&self, section: Section) -> Histogram {
        self.sections[section.index()].lock().hist.clone()
    }

    /// Total nanoseconds credited to one section.
    pub fn total_nanos(&self, section: Section) -> u64 {
        self.sections[section.index()].lock().total_nanos
    }

    /// Installs one `profile.<section>_nanos` histogram per non-empty
    /// section into `metrics` (mirrors how `compute.node_nanos` rides
    /// along: present only when measured, never in deterministic reports).
    pub fn install_into(&self, metrics: &mut Metrics) {
        for section in SECTIONS {
            let hist = self.histogram(section);
            if hist.count() > 0 {
                metrics.install_hist(&format!("profile.{}_nanos", section.name()), hist);
            }
        }
    }

    /// The folded-stack export: one `frame;frame;frame value` line per
    /// non-empty section, value = total nanoseconds. Feed directly to
    /// `flamegraph.pl` / `inferno-flamegraph`.
    pub fn folded_stacks(&self, root: &str) -> String {
        let mut out = String::new();
        for section in SECTIONS {
            let total = self.total_nanos(section);
            if total > 0 {
                let parent = match section {
                    Section::ArqRetransmit => "transport",
                    _ => "engine",
                };
                out.push_str(&format!("{root};{parent};{} {total}\n", section.name()));
            }
        }
        out
    }

    /// A human-readable per-section summary table (spans, total, mean).
    pub fn summary_table(&self) -> String {
        let mut out = String::from("section          spans      total_ms    mean_us\n");
        for section in SECTIONS {
            let (count, total) = {
                let s = self.sections[section.index()].lock();
                (s.hist.count(), s.total_nanos)
            };
            if count == 0 {
                continue;
            }
            let mean_us = total as f64 / count as f64 / 1_000.0;
            out.push_str(&format!(
                "{:<16} {:>6} {:>12.3} {:>10.2}\n",
                section.name(),
                count,
                total as f64 / 1_000_000.0,
                mean_us
            ));
        }
        out
    }
}

/// Opens a span when a profiler is installed; see [`prof_record`].
#[inline]
pub(crate) fn prof_start(prof: Option<&Profiler>) -> Option<Instant> {
    prof.map(|p| p.start())
}

/// Closes a span opened by [`prof_start`] (no-op when disabled).
#[inline]
pub(crate) fn prof_record(prof: Option<&Profiler>, section: Section, start: Option<Instant>) {
    if let (Some(p), Some(t)) = (prof, start) {
        p.record(section, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_per_section() {
        let p = Profiler::new();
        p.record_nanos(Section::Stage, 1_000);
        p.record_nanos(Section::Stage, 3_000);
        p.record_nanos(Section::Deliver, 500);
        assert_eq!(p.histogram(Section::Stage).count(), 2);
        assert_eq!(p.total_nanos(Section::Stage), 4_000);
        assert_eq!(p.histogram(Section::Deliver).count(), 1);
        assert_eq!(p.histogram(Section::Account).count(), 0);
    }

    #[test]
    fn folded_stacks_skip_empty_sections() {
        let p = Profiler::new();
        p.record_nanos(Section::Compute, 42);
        p.record_nanos(Section::Fused, 9);
        p.record_nanos(Section::ArqRetransmit, 7);
        let folded = p.folded_stacks("congest");
        assert_eq!(
            folded,
            "congest;engine;fused 9\ncongest;engine;compute 42\ncongest;transport;arq_retransmit 7\n"
        );
    }

    #[test]
    fn metrics_installation_is_gated_on_observations() {
        let p = Profiler::new();
        p.record_nanos(Section::Account, 10);
        let mut m = Metrics::new();
        p.install_into(&mut m);
        let snap = m.snapshot();
        assert!(snap.get("profile.account_nanos").is_some());
        assert!(snap.get("profile.stage_nanos").is_none());
    }

    #[test]
    fn summary_table_lists_only_active_sections() {
        let p = Profiler::new();
        p.record_nanos(Section::Stage, 2_000_000);
        let table = p.summary_table();
        assert!(table.contains("stage"), "{table}");
        assert!(!table.contains("deliver"), "{table}");
    }

    #[test]
    fn disabled_helpers_are_noops() {
        assert!(prof_start(None).is_none());
        prof_record(None, Section::Stage, None);
        let p = Profiler::new();
        let t = prof_start(Some(&p));
        prof_record(Some(&p), Section::Stage, t);
        assert_eq!(p.histogram(Section::Stage).count(), 1);
    }
}
