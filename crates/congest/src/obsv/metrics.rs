//! The metrics registry: counters, gauges, and power-of-two-bucket
//! histograms, with deterministic snapshot ordering.
//!
//! Registries are plain values (no global state); the [`Simulation`]
//! builder populates one from a finished run and snapshots it into the
//! [`Outcome`]. Snapshots sort entries by name (`BTreeMap` iteration
//! order), so serialized metrics are byte-identical across thread counts —
//! the reproducibility contract the PR-2 pool established extends through
//! the observability layer.
//!
//! [`Simulation`]: crate::Simulation
//! [`Outcome`]: crate::Outcome

use crate::faults::FaultReport;
use crate::stats::RunStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram over `u64` samples with power-of-two buckets: bucket `i`
/// counts samples whose bit length is `i` (bucket 0 holds exact zeros, so
/// bucket boundaries are `[2^(i-1), 2^i)`).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u32, u64>,
}

// Zero-count buckets are invisible (a reset histogram keeps its bucket keys
// so batched reuse never reallocates), so equality must ignore them too.
impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.buckets().eq(other.buckets())
    }
}

impl Eq for Histogram {}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(64 - v.leading_zeros()).or_default() += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 < q <= 1.0`): the
    /// inclusive upper edge of the power-of-two bucket holding the sample
    /// of that rank, clamped to the observed max. Exact to within one
    /// bucket — good enough for a `p99` line, with no per-sample storage.
    /// Returns 0 when the histogram is empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, c) in self.buckets() {
            seen += c;
            if seen >= rank {
                // Bucket `b` spans `[2^(b-1), 2^b)`; its inclusive upper
                // edge is `2^b - 1` (bucket 0 holds exact zeros).
                let edge = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
                return edge.min(self.max);
            }
        }
        self.max
    }

    /// `(bit_length, count)` pairs for the non-empty buckets, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets
            .iter()
            .filter(|&(_, &c)| c > 0)
            .map(|(&b, &c)| (b, c))
    }

    /// Clears all samples in place, keeping bucket-key storage allocated so
    /// batched runs reuse it instead of rebuilding the tree.
    pub fn reset(&mut self) {
        self.count = 0;
        self.sum = 0;
        self.min = 0;
        self.max = 0;
        for c in self.buckets.values_mut() {
            *c = 0;
        }
    }

    /// The histogram as one JSON object.
    pub fn to_json(&self) -> String {
        let mut body = String::new();
        for (i, (b, c)) in self.buckets().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let _ = write!(body, r#""{b}":{c}"#);
        }
        format!(
            r#"{{"count":{},"sum":{},"min":{},"max":{},"buckets":{{{body}}}}}"#,
            self.count, self.sum, self.min, self.max
        )
    }
}

/// One metric value in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time measurement.
    Gauge(f64),
    /// A sample distribution.
    Hist(Histogram),
}

impl MetricValue {
    fn to_json(&self) -> String {
        match self {
            MetricValue::Counter(v) => v.to_string(),
            // Fixed precision keeps gauge rendering platform-independent.
            MetricValue::Gauge(v) => format!("{v:.3}"),
            MetricValue::Hist(h) => h.to_json(),
        }
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_default() += by;
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records a sample into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().observe(v);
    }

    /// Installs a pre-built histogram under `name` (merging by re-observe
    /// is lossy for min/max, so whole histograms move in one piece).
    pub fn install_hist(&mut self, name: &str, h: Histogram) {
        self.hists.insert(name.to_string(), h);
    }

    /// The standard registry for a finished run: traffic, congestion,
    /// fault, and transport series. Every backend's [`Outcome`] metrics
    /// snapshot starts from this set, so keys are stable across backends.
    ///
    /// [`Outcome`]: crate::Outcome
    pub fn from_run(stats: &RunStats, faults: &FaultReport) -> Metrics {
        let mut m = Metrics::new();
        m.record_run(stats, faults);
        m
    }

    /// Clears the registry in place: counters and gauges are dropped,
    /// histograms keep their bucket storage (values zeroed) so a reused
    /// registry produces snapshots identical to a fresh one without
    /// reallocating. Empty histograms are skipped by [`Metrics::snapshot`].
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        for h in self.hists.values_mut() {
            h.reset();
        }
    }

    /// [`Metrics::from_run`] into an existing registry: resets in place,
    /// then repopulates the standard run series. This is the batched-run
    /// path ([`Prepared`] keeps one scratch registry per topology).
    ///
    /// [`Prepared`]: crate::Prepared
    pub fn record_run(&mut self, stats: &RunStats, faults: &FaultReport) {
        self.reset();
        let m = self;
        m.inc("bits.total", stats.total_bits);
        m.inc("messages.total", stats.total_messages);
        m.inc("rounds.total", stats.rounds as u64);
        m.inc(
            "congestion.max_edge_round_bits",
            stats.max_edge_round_bits as u64,
        );
        m.set_gauge("bits.per_round.avg", stats.avg_bits_per_round());
        for &b in &stats.per_round_bits {
            m.observe("bits.per_round", b);
        }
        for &c in &stats.per_round_messages {
            m.observe("messages.per_round", c);
        }
        m.inc("faults.delivered", faults.delivered);
        m.inc("faults.dropped", faults.dropped);
        m.inc("faults.corrupted", faults.corrupted);
        m.inc("faults.crashed", faults.crashed.len() as u64);
        m.inc("transport.retransmissions", faults.retransmissions);
        m.inc("transport.given_up", faults.given_up);
        m.inc("transport.backoff_events", faults.backoff_events);
        // Per-round fault/transport series (present only when the run
        // tracked them): these localize *when* a loss burst happened —
        // under a Gilbert–Elliott bad state the per-round histograms go
        // bimodal while the end-of-run tallies only show the average.
        for &d in &faults.dropped_per_round {
            m.observe("faults.dropped.per_round", d);
        }
        for &c in &faults.corrupted_per_round {
            m.observe("faults.corrupted.per_round", c);
        }
        for &r in &faults.retransmissions_per_round {
            m.observe("transport.retransmissions.per_round", r);
        }
        // Per-link histogram: a single hot link (one flaky edge under a
        // localized outage) shows up as a heavy tail here while the
        // per-round series stays flat.
        for &r in &faults.retransmissions_per_link {
            m.observe("transport.retransmissions.per_link", r);
        }
    }

    /// Freezes the registry into a deterministically ordered snapshot.
    /// Histograms with no samples are omitted: they only arise from
    /// [`Metrics::reset`] reuse, and a fresh registry would not have them.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(String, MetricValue)> = Vec::new();
        for (k, &v) in &self.counters {
            entries.push((k.clone(), MetricValue::Counter(v)));
        }
        for (k, &v) in &self.gauges {
            entries.push((k.clone(), MetricValue::Gauge(v)));
        }
        for (k, h) in &self.hists {
            if h.count() > 0 {
                entries.push((k.clone(), MetricValue::Hist(h.clone())));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }
}

/// A frozen, name-sorted view of a [`Metrics`] registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The entries, sorted by name.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram by name (`None` if absent or not a histogram).
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        match self.get(name)? {
            MetricValue::Hist(h) => Some(h),
            _ => None,
        }
    }

    /// Whether the snapshot has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The snapshot in Prometheus text-exposition format: a `# TYPE` line
    /// per metric, dotted names flattened to underscores, histograms as
    /// cumulative `_bucket{le="..."}` series (bucket edges are the
    /// power-of-two upper bounds) plus `_sum`/`_count`. Deterministic:
    /// entries render in snapshot (name-sorted) order.
    pub fn to_prometheus(&self) -> String {
        let sanitize = |name: &str| -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        };
        let mut out = String::new();
        for (k, v) in &self.entries {
            let name = sanitize(k);
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {g:.3}");
                }
                MetricValue::Hist(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (b, c) in h.buckets() {
                        cumulative += c;
                        let le = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// The snapshot as one JSON object (keys in sorted order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#""{}":{}"#,
                crate::obsv::report::json_escape(k),
                v.to_json()
            );
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        let buckets: Vec<(u32, u64)> = h.buckets().collect();
        // 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1024 -> 11.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]);
        assert!((h.mean() - 1034.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_upper_bound_brackets_the_rank_sample() {
        let mut h = Histogram::new();
        // 99 samples of 100 (bucket 7: [64,128)), one of 5000 (bucket 13).
        for _ in 0..99 {
            h.observe(100);
        }
        h.observe(5000);
        // p50 and p99 land in the dense bucket; its edge is 127.
        assert_eq!(h.quantile_upper_bound(0.5), 127);
        assert_eq!(h.quantile_upper_bound(0.99), 127);
        // p100 must cover the outlier, clamped to the observed max.
        assert_eq!(h.quantile_upper_bound(1.0), 5000);
        assert_eq!(Histogram::new().quantile_upper_bound(0.99), 0);
        // A single sample answers every quantile with its own bucket edge
        // clamped to itself.
        let mut one = Histogram::new();
        one.observe(7);
        assert_eq!(one.quantile_upper_bound(0.01), 7);
        assert_eq!(one.quantile_upper_bound(0.99), 7);
    }

    #[test]
    fn prometheus_exposition_renders_all_kinds() {
        let mut m = Metrics::new();
        m.inc("serve.queries", 3);
        m.set_gauge("bits.per_round.avg", 1.5);
        m.observe("latency", 100);
        m.observe("latency", 5000);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE bits_per_round_avg gauge\nbits_per_round_avg 1.500\n"));
        assert!(text.contains("# TYPE serve_queries counter\nserve_queries 3\n"));
        assert!(text.contains("# TYPE latency histogram\n"));
        // Buckets are cumulative: the 5000 sample's bucket counts both.
        assert!(text.contains("latency_bucket{le=\"127\"} 1\n"), "{text}");
        assert!(text.contains("latency_bucket{le=\"8191\"} 2\n"), "{text}");
        assert!(text.contains("latency_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("latency_sum 5100\n"));
        assert!(text.contains("latency_count 2\n"));
    }

    #[test]
    fn snapshot_sorted_and_queryable() {
        let mut m = Metrics::new();
        m.inc("z.last", 3);
        m.inc("a.first", 1);
        m.set_gauge("m.mid", 2.5);
        m.observe("h.hist", 7);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a.first", "h.hist", "m.mid", "z.last"]);
        assert_eq!(snap.counter("z.last"), Some(3));
        assert_eq!(snap.counter("m.mid"), None, "gauge is not a counter");
        assert_eq!(snap.hist("h.hist").unwrap().count(), 1);
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn snapshot_json_shape() {
        let mut m = Metrics::new();
        m.inc("bits.total", 640);
        m.set_gauge("avg", 1.5);
        m.observe("per_round", 64);
        let json = m.snapshot().to_json();
        assert!(json.contains(r#""bits.total":640"#), "{json}");
        assert!(json.contains(r#""avg":1.500"#), "{json}");
        assert!(json.contains(r#""per_round":{"count":1"#), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.inc("x", 2);
        m.inc("x", 5);
        assert_eq!(m.snapshot().counter("x"), Some(7));
    }

    #[test]
    fn reset_reuse_matches_fresh_registry() {
        let mut reused = Metrics::new();
        // Dirty the registry with series a later run will not touch.
        reused.inc("stale.counter", 9);
        reused.set_gauge("stale.gauge", 4.5);
        reused.observe("stale.hist", 1 << 20);
        reused.observe("h", 3);

        reused.reset();
        reused.inc("bits.total", 64);
        reused.observe("h", 500);

        let mut fresh = Metrics::new();
        fresh.inc("bits.total", 64);
        fresh.observe("h", 500);

        assert_eq!(reused.snapshot(), fresh.snapshot());
        assert_eq!(reused.snapshot().to_json(), fresh.snapshot().to_json());
    }

    #[test]
    fn histogram_reset_hides_old_buckets() {
        let mut h = Histogram::new();
        h.observe(7);
        h.observe(1 << 30);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.buckets().count(), 0, "zeroed buckets stay invisible");
        h.observe(2);
        let fresh = {
            let mut f = Histogram::new();
            f.observe(2);
            f
        };
        assert_eq!(h, fresh);
        assert_eq!(h.to_json(), fresh.to_json());
    }
}
