//! Message payloads with exact bit accounting.
//!
//! The CONGEST model charges `B` bits per edge per round. Instead of
//! serializing every message, algorithms declare the exact number of bits a
//! message would occupy on the wire via [`BitSize`]; the engine enforces the
//! bandwidth bound and accumulates traffic statistics from these declared
//! sizes. Declared sizes must be faithful — the unit tests of each algorithm
//! check them against the information actually carried.

/// Number of bits a value occupies on the wire.
pub trait BitSize {
    /// Exact size of this message in bits.
    fn bit_size(&self) -> usize;

    /// Flips one on-the-wire bit in place (fault injection), returning
    /// whether the payload actually changed. The default is a no-op
    /// returning `false`: most message types are structured Rust values
    /// whose wire encoding is only declared, not materialized, so the
    /// engine delivers them intact (and counts no corruption). Types that
    /// carry literal bits (e.g. [`BitString`]) override this.
    fn corrupt_bit(&mut self, bit_index: usize) -> bool {
        let _ = bit_index;
        false
    }
}

/// Bits needed to address a value in a domain of the given size
/// (`ceil(log2(domain))`, and at least 1).
pub fn bits_for_domain(domain: usize) -> usize {
    if domain <= 2 {
        1
    } else {
        (usize::BITS - (domain - 1).leading_zeros()) as usize
    }
}

impl BitSize for () {
    fn bit_size(&self) -> usize {
        0
    }
}

impl BitSize for bool {
    fn bit_size(&self) -> usize {
        1
    }
}

impl BitSize for u8 {
    fn bit_size(&self) -> usize {
        8
    }
}

impl BitSize for u32 {
    fn bit_size(&self) -> usize {
        32
    }
}

impl BitSize for u64 {
    fn bit_size(&self) -> usize {
        64
    }
}

impl<T: BitSize> BitSize for Vec<T> {
    fn bit_size(&self) -> usize {
        self.iter().map(BitSize::bit_size).sum()
    }
}

impl<T: BitSize, U: BitSize> BitSize for (T, U) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size()
    }
}

impl<T: BitSize> BitSize for Option<T> {
    fn bit_size(&self) -> usize {
        1 + self.as_ref().map_or(0, BitSize::bit_size)
    }
}

/// A raw bit-string message: the payload used by the §4 fooling experiments,
/// where the *exact* bit count (not a word count) matters.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    bits: Vec<bool>,
}

impl BitString {
    /// The empty bit string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a slice of bits.
    pub fn from_bits(bits: &[bool]) -> Self {
        BitString {
            bits: bits.to_vec(),
        }
    }

    /// The low `width` bits of `value`, most significant first.
    pub fn from_uint(value: u64, width: usize) -> Self {
        assert!(width <= 64);
        let bits = (0..width).rev().map(|i| (value >> i) & 1 == 1).collect();
        BitString { bits }
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Appends another bit string.
    pub fn extend(&mut self, other: &BitString) {
        self.bits.extend_from_slice(&other.bits);
    }

    /// The bits, most significant first for uint-derived strings.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &BitString) -> bool {
        self.len() <= other.len() && self.bits == other.bits[..self.len()]
    }

    /// Interprets the bits as an unsigned integer (most significant first).
    pub fn to_uint(&self) -> u64 {
        assert!(self.len() <= 64);
        self.bits
            .iter()
            .fold(0u64, |acc, &b| (acc << 1) | (b as u64))
    }
}

impl BitSize for BitString {
    fn bit_size(&self) -> usize {
        self.len()
    }

    fn corrupt_bit(&mut self, bit_index: usize) -> bool {
        if self.bits.is_empty() {
            return false;
        }
        let i = bit_index % self.bits.len();
        self.bits[i] = !self.bits[i];
        true
    }
}

/// A delivered message payload: either a private copy or a reference into a
/// shared broadcast buffer.
///
/// A CONGEST broadcast reaches every neighbor with the *same* bits, so the
/// engine materializes a broadcast once and hands each receiver an `Arc`
/// into it instead of a deep copy per edge ([`Payload::Shared`]). Unicasts,
/// and payloads a fault actually mutated, arrive as [`Payload::Owned`].
/// Algorithms read payloads through [`std::ops::Deref`] (field access and
/// method calls need no change; pattern matches use `&**payload`), which
/// keeps delivery allocation-free on the hot path without letting one
/// receiver's view alias another's mutations.
#[derive(Debug, Clone)]
pub enum Payload<M> {
    /// A payload this receiver exclusively owns (unicast or fault-mutated).
    Owned(M),
    /// A view into a broadcast payload shared by all its receivers.
    Shared(std::sync::Arc<M>),
}

impl<M> std::ops::Deref for Payload<M> {
    type Target = M;
    fn deref(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(m) => m,
        }
    }
}

impl<M> Payload<M> {
    /// The shared broadcast handle, or `None` if this receiver exclusively
    /// owns the payload (unicast, or a broadcast that was deep-copied for
    /// fault mutation). Lets tests assert sharing via `Arc::ptr_eq`.
    pub fn as_shared(&self) -> Option<&std::sync::Arc<M>> {
        match self {
            Payload::Owned(_) => None,
            Payload::Shared(m) => Some(m),
        }
    }
}

impl<M: Clone> Payload<M> {
    /// Extracts the message, cloning only if it is still shared with other
    /// receivers.
    pub fn into_owned(self) -> M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(m) => std::sync::Arc::try_unwrap(m).unwrap_or_else(|m| (*m).clone()),
        }
    }
}

impl<M: PartialEq> PartialEq for Payload<M> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<M: Eq> Eq for Payload<M> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_bits() {
        assert_eq!(bits_for_domain(2), 1);
        assert_eq!(bits_for_domain(3), 2);
        assert_eq!(bits_for_domain(4), 2);
        assert_eq!(bits_for_domain(5), 3);
        assert_eq!(bits_for_domain(1024), 10);
        assert_eq!(bits_for_domain(1025), 11);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((7u32, true).bit_size(), 33);
        assert_eq!(vec![1u8, 2, 3].bit_size(), 24);
        assert_eq!(Some(5u32).bit_size(), 33);
        assert_eq!(Option::<u32>::None.bit_size(), 1);
    }

    #[test]
    fn bitstring_roundtrip() {
        let b = BitString::from_uint(0b1011, 4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.to_uint(), 0b1011);
        assert_eq!(b.bits(), &[true, false, true, true]);
    }

    #[test]
    fn bitstring_width_pads() {
        let b = BitString::from_uint(1, 8);
        assert_eq!(b.len(), 8);
        assert_eq!(b.to_uint(), 1);
    }

    #[test]
    fn prefix_relation() {
        let a = BitString::from_bits(&[true, false]);
        let b = BitString::from_bits(&[true, false, true]);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(BitString::new().is_prefix_of(&a));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = BitString::from_uint(0b10, 2);
        a.extend(&BitString::from_uint(0b11, 2));
        assert_eq!(a.to_uint(), 0b1011);
    }

    #[test]
    fn corrupt_bit_flips_exactly_one_bit() {
        let orig = BitString::from_uint(0b1010, 4);
        let mut c = orig.clone();
        assert!(c.corrupt_bit(1));
        assert_ne!(c, orig);
        let differing = orig
            .bits()
            .iter()
            .zip(c.bits())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(differing, 1);
        // Flipping the same bit again restores the original.
        assert!(c.corrupt_bit(1));
        assert_eq!(c, orig);
    }

    #[test]
    fn corrupt_bit_wraps_index_and_handles_empty() {
        let mut b = BitString::from_uint(0b1, 1);
        assert!(b.corrupt_bit(7)); // 7 % 1 == 0
        assert_eq!(b.to_uint(), 0);
        let mut empty = BitString::new();
        assert!(!empty.corrupt_bit(3));

        // Structured payloads use the no-op default.
        let mut x = 5u32;
        assert!(!x.corrupt_bit(0));
        assert_eq!(x, 5);
    }
}
