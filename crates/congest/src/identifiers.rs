//! Identifier namespaces.
//!
//! §4 and §5 of the paper treat a node and its identifier as separate
//! entities: the adversary (or the input distribution) assigns identifiers
//! from a namespace, and an algorithm's behavior may depend only on the ids
//! it sees. These helpers produce the assignments those sections need.

use rand::seq::SliceRandom;
use rand::Rng;

/// Identity assignment: `id(v) = v`.
pub fn identity(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// Distinct identifiers drawn uniformly at random from `[0, namespace)`.
///
/// # Panics
/// Panics if `namespace < n`.
pub fn random_distinct<R: Rng>(n: usize, namespace: u64, rng: &mut R) -> Vec<u64> {
    assert!(namespace >= n as u64, "namespace too small");
    let mut chosen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = rng.gen_range(0..namespace);
        if chosen.insert(id) {
            out.push(id);
        }
    }
    out
}

/// Identifiers drawn uniformly *with replacement* from `[0, namespace)` —
/// the §5 distribution (duplicates possible, with probability `O(n²/N)`).
pub fn random_iid<R: Rng>(n: usize, namespace: u64, rng: &mut R) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..namespace)).collect()
}

/// A random permutation of `0..n` as the id space (distinct, dense).
pub fn random_permutation<R: Rng>(n: usize, rng: &mut R) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..n as u64).collect();
    ids.shuffle(rng);
    ids
}

/// Splits the namespace `[0, 3n)` into the three §4 parts
/// `N_0 = [0, n)`, `N_1 = [n, 2n)`, `N_2 = [2n, 3n)`.
pub fn tripartite_namespace(n: u64) -> [std::ops::Range<u64>; 3] {
    [0..n, n..2 * n, 2 * n..3 * n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_ids() {
        assert_eq!(identity(3), vec![0, 1, 2]);
    }

    #[test]
    fn distinct_ids_are_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ids = random_distinct(100, 150, &mut rng);
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 100);
        assert!(ids.iter().all(|&x| x < 150));
    }

    #[test]
    fn permutation_is_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ids = random_permutation(50, &mut rng);
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn iid_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ids = random_iid(1000, 10, &mut rng);
        assert!(ids.iter().all(|&x| x < 10));
        // With namespace 10 and 1000 draws, duplicates are certain.
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert!(set.len() < 1000);
    }

    #[test]
    fn namespace_parts_disjoint() {
        let [a, b, c] = tripartite_namespace(5);
        assert_eq!(a, 0..5);
        assert_eq!(b, 5..10);
        assert_eq!(c, 10..15);
    }
}
