//! The synchronous sharded round engine.
//!
//! Drives a [`NodeAlgorithm`] over a topology, enforcing the CONGEST
//! bandwidth bound per directed edge per round and recording exact traffic
//! statistics. Nodes are partitioned into contiguous *shards*, each owning
//! its own staging arena and inbox slab, so account → stage → deliver →
//! step all run shard-parallel over the rayon pool with zero cross-shard
//! locking (see the private `Shard` struct for the layout and the
//! determinism argument).
//!
//! Instrumentation flows through the [`Collector`] trait
//! (see [`crate::obsv`]): with no collector installed, no event values are
//! even built. All events are buffered per shard and drained from
//! sequential code in shard (= node) order, so a collector observes an
//! identical stream at any thread count and any shard count. With a
//! collector installed the engine also assigns every message a run-unique
//! `msg_id` (in node order, at accounting time) and stamps each send with
//! the ids delivered to its sender one round earlier — the causal
//! provenance that makes the trace a happens-before DAG (see
//! [`crate::obsv::collect`]). An optional [`Profiler`] adds wall-clock
//! spans around the accounting/staging/delivery/compute sections; with
//! none installed each section costs one branch per round.
//!
//! The [`Simulation`](crate::Simulation) builder is the public entry point;
//! it fronts this engine, the reliable transport, and the clique backend
//! behind one API.

use crate::faults::{Delivery, DeliveryCtx, FaultModel, FaultReport, FaultSpec};
use crate::message::{BitSize, Payload};
use crate::node::{Decision, NodeAlgorithm, NodeContext, Outbox, Outgoing};
use crate::obsv::collect::{span_nanos, span_start, Collector, SimEvent};
use crate::obsv::profile::{prof_record, prof_start, Profiler, Section};
use crate::stats::RunStats;
use graphlib::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::fmt;
use std::sync::Arc;

/// One shard of the sharded round engine: a contiguous node range with its
/// own staging arena, inbox slab, tallies, and event buffers, reused across
/// rounds.
///
/// Nodes are partitioned into `S` contiguous ranges (`starts[k] = k·n/S`),
/// so a shard also owns a contiguous band of receiver-side directed-edge
/// slots (`offsets[start]..offsets[end]` — the CSR offsets are monotone).
/// Account, stage, deliver, and step each run one job per shard with zero
/// cross-shard locking; the only data crossing a shard boundary are the
/// per-`(src, dst)` mailboxes, which the destination shard merges in source
/// shard order.
///
/// Why sharding is invisible in the output: a receiver-side slot identifies
/// exactly one sender (one directed edge), and that sender lives in exactly
/// one shard, so every slot bucket lists that sender's messages in outbox
/// order no matter how mailboxes were concatenated. Fault randomness is a
/// pure function of absolute [`DeliveryCtx`] coordinates, per-node RNG
/// streams depend only on `(seed, node)`, and all tallies/events are
/// reduced sequentially in shard (= node) order. Decisions, stats, fault
/// streams, and traces are therefore byte-identical at any shard count and
/// any thread count.
///
/// Unicasts are bucketed by shard-relative receiver slot with a counting
/// sort into a flat CSR index whose descriptors are *epoch-stamped*: slots
/// untouched this round are never visited, not even to be zeroed. Broadcast
/// payloads are materialized once behind an `Arc` per sender. Inboxes are
/// one arena slab per shard (`inbox_data` plus per-node bounds), so a round
/// allocates nothing per receiver in steady state.
struct Shard<M> {
    /// First node of the range.
    start: u32,
    /// One past the last node of the range.
    end: u32,
    /// First receiver-side slot of the range (`offsets[start]`); all slot
    /// indices below are relative to it.
    slot_base: u32,
    /// Staged unicasts addressed to this shard, concatenated in source
    /// shard order: `(sender outbox index, payload)`.
    unicasts: Vec<(u32, M)>,
    /// Shard-relative receiver slot of each staged unicast, parallel to
    /// `unicasts`.
    slots: Vec<u32>,
    /// Per-slot bucket start into `order`, valid only when the slot's
    /// epoch stamp is current.
    slot_start: Vec<u32>,
    /// Per-slot bucket length (same validity rule).
    slot_len: Vec<u32>,
    /// Scatter cursor scratch (same validity rule).
    slot_cursor: Vec<u32>,
    /// Round stamp of each slot's bucket descriptor.
    slot_epoch: Vec<u64>,
    /// Slots touched this round, deduplicated in first-touch order.
    touched: Vec<u32>,
    /// Indices into `unicasts`, bucketed by slot; the counting sort is
    /// stable, so outbox order is preserved within each bucket.
    order: Vec<u32>,
    /// Round stamp per local receiver: current iff some staged message is
    /// addressed to it, letting delivery skip idle receivers without
    /// scanning their ports.
    active: Vec<u64>,
    /// Current round stamp (bumped once per delivery pass).
    epoch: u64,
    /// Arena-slab inbox: every local receiver's `(port, payload)` pairs for
    /// this round, back to back.
    inbox_data: Vec<(u32, Payload<M>)>,
    /// Per local node `(start, end)` window into `inbox_data`.
    inbox_bounds: Vec<(u32, u32)>,
    /// Fault-layer tallies for this shard's receivers this round.
    delivered: u64,
    dropped: u64,
    corrupted: u64,
    /// Delivery events buffered in local receiver order; drained
    /// sequentially in shard order (= node order) after the parallel pass.
    events: Vec<SimEvent>,
    /// Ids delivered to each local node last round (provenance-tracing
    /// only) — the `deps` set of its sends this round.
    prev_ids: Vec<Vec<u64>>,
    /// Ids delivered this round (provenance-tracing only); swapped into
    /// `prev_ids` at the end of the delivery pass.
    cur_ids: Vec<Vec<u64>>,
    /// Accounting scratch: per-port *unicast* bit sums of the sender being
    /// accounted, in `u64` words. Broadcast bits are batched separately in
    /// a single scalar accumulator (every port carries the same broadcast
    /// load), so a broadcast-only sender never touches this array at all.
    port_bits: Vec<u64>,
    /// `Send` events buffered during shard-parallel accounting.
    acct_events: Vec<SimEvent>,
    /// Accounting tallies, merged sequentially after the parallel pass.
    acct_bits: u64,
    acct_msgs: u64,
    acct_max: usize,
    /// First error this shard's accounting hit (the merge keeps only the
    /// lowest shard's, which is the lowest node's).
    acct_err: Option<CongestError>,
}

/// A unicast crossing (or staying inside) a shard boundary: `(receiver,
/// receiver-side absolute slot, sender outbox index, payload)`. Payloads
/// move through the mailbox — they are never cloned.
type Mail<M> = Vec<(u32, u32, u32, M)>;

/// A staged message as seen by one receiver during the merge.
enum StagedMsg<'a, M> {
    Unicast(&'a M),
    Broadcast(&'a Arc<M>),
}

impl<M> Shard<M> {
    fn new(start: u32, end: u32, slot_base: u32, slot_end: u32, provenance: bool) -> Self {
        let len = (end - start) as usize;
        let nslots = (slot_end - slot_base) as usize;
        Shard {
            start,
            end,
            slot_base,
            unicasts: Vec::new(),
            slots: Vec::new(),
            slot_start: vec![0; nslots],
            slot_len: vec![0; nslots],
            slot_cursor: vec![0; nslots],
            slot_epoch: vec![0; nslots],
            touched: Vec::new(),
            order: Vec::new(),
            active: vec![0; len],
            epoch: 0,
            inbox_data: Vec::new(),
            inbox_bounds: vec![(0, 0); len],
            delivered: 0,
            dropped: 0,
            corrupted: 0,
            events: Vec::new(),
            prev_ids: if provenance {
                vec![Vec::new(); len]
            } else {
                Vec::new()
            },
            cur_ids: if provenance {
                vec![Vec::new(); len]
            } else {
                Vec::new()
            },
            port_bits: Vec::new(),
            acct_events: Vec::new(),
            acct_bits: 0,
            acct_msgs: 0,
            acct_max: 0,
            acct_err: None,
        }
    }
}

/// Which shard owns node `v`, given the `S + 1` ascending shard boundaries.
#[inline]
fn shard_of(starts: &[u32], v: u32) -> usize {
    starts.partition_point(|&s| s <= v) - 1
}

/// Splits `data` into consecutive per-shard windows delimited by `bounds`
/// (ascending, `bounds[0] = 0`, last entry = `data.len()`), so each shard
/// job owns a disjoint `&mut` view of a global per-node or per-slot array.
fn split_by_bounds<'a, T>(mut data: &'a mut [T], bounds: &[u32]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
    for w in bounds.windows(2) {
        let (head, tail) = data.split_at_mut((w[1] - w[0]) as usize);
        out.push(head);
        data = tail;
    }
    out
}

/// Counting sort of one shard's staged unicasts by shard-relative receiver
/// slot: bucket sizes on first touch, one contiguous region per touched
/// slot, then a stable scatter. O(staged messages) — untouched slots are
/// never visited (not even to be zeroed) thanks to the epoch stamps.
#[allow(clippy::too_many_arguments)]
fn index_slots(
    epoch: u64,
    slots: &[u32],
    slot_epoch: &mut [u64],
    slot_start: &mut [u32],
    slot_len: &mut [u32],
    slot_cursor: &mut [u32],
    touched: &mut Vec<u32>,
    order: &mut Vec<u32>,
) {
    touched.clear();
    for &s in slots {
        let s = s as usize;
        if slot_epoch[s] != epoch {
            slot_epoch[s] = epoch;
            slot_len[s] = 0;
            touched.push(s as u32);
        }
        slot_len[s] += 1;
    }
    let mut cum = 0u32;
    for &s in touched.iter() {
        let s = s as usize;
        slot_start[s] = cum;
        slot_cursor[s] = cum;
        cum += slot_len[s];
    }
    order.resize(slots.len(), 0);
    for (i, &s) in slots.iter().enumerate() {
        let c = &mut slot_cursor[s as usize];
        order[*c as usize] = i as u32;
        *c += 1;
    }
}

/// The staged unicasts addressed to shard-relative slot `rel_slot`, as
/// indices into the shard's `unicasts` arena, in sender outbox order.
#[inline]
fn bucket<'a>(
    epoch: u64,
    rel_slot: usize,
    slot_epoch: &[u64],
    slot_start: &[u32],
    slot_len: &[u32],
    order: &'a [u32],
) -> &'a [u32] {
    if slot_epoch[rel_slot] != epoch {
        return &[];
    }
    let start = slot_start[rel_slot] as usize;
    &order[start..start + slot_len[rel_slot] as usize]
}

/// Stages one source shard's round of sends, draining its outboxes in
/// place: unicast payloads move into the per-destination mailboxes, each
/// broadcast payload is materialized once behind an `Arc`, and senders
/// that broadcast are listed in `bcasters` so destination shards can stamp
/// receiver activity. Returns the number of staged entries (unicasts plus
/// broadcasts, each counted once). Allocation-free in steady state.
#[allow(clippy::too_many_arguments)]
fn stage_shard<M>(
    start: u32,
    g: &Graph,
    offsets: &[u32],
    rev_port: &[u32],
    starts: &[u32],
    outboxes: &mut [Outbox<M>],
    bcasts: &mut [Vec<(u32, Arc<M>)>],
    mail_row: &mut [Mail<M>],
    bcasters: &mut Vec<u32>,
) -> usize {
    let mut staged = 0usize;
    bcasters.clear();
    for (local, outbox) in outboxes.iter_mut().enumerate() {
        let u = start as usize + local;
        let bc = &mut bcasts[local];
        bc.clear();
        for (idx, out) in outbox.drain(..).enumerate() {
            match out {
                Outgoing::Unicast(p, m) => {
                    // Ports were validated during bandwidth accounting.
                    let to = g.neighbors(u)[p as usize] as usize;
                    let to_port = rev_port[offsets[u] as usize + p as usize];
                    let slot = offsets[to] + to_port;
                    let dst = shard_of(starts, to as u32);
                    mail_row[dst].push((to as u32, slot, idx as u32, m));
                }
                Outgoing::Broadcast(m) => bc.push((idx as u32, Arc::new(m))),
            }
        }
        if !bc.is_empty() {
            bcasters.push(u as u32);
        }
        staged += bc.len();
    }
    staged + mail_row.iter().map(Vec::len).sum::<usize>()
}

/// Merges one destination shard's incoming mailboxes (in source shard
/// order), adjudicates every delivery through the fault model, and fills
/// the shard's inbox slab. Sequential within the shard; the engine runs one
/// such job per shard in parallel. Every [`DeliveryCtx`] field is absolute
/// (node indices, ports, link slots), so the fault stream is independent of
/// both the shard count and the thread count.
#[allow(clippy::too_many_arguments)]
fn deliver_shard<M: BitSize + Clone>(
    shard: &mut Shard<M>,
    mail_col: &mut [Mail<M>],
    g: &Graph,
    offsets: &[u32],
    rev_port: &[u32],
    broadcasts: &[Vec<(u32, Arc<M>)>],
    bcasters: &[Vec<u32>],
    model: &dyn FaultModel,
    crashed: &[Option<usize>],
    id_base: &[u64],
    tracing: bool,
    provenance: bool,
    round: usize,
    seed: u64,
) {
    shard.epoch += 1;
    let ep = shard.epoch;
    let (start, end, slot_base) = (shard.start, shard.end, shard.slot_base);
    shard.unicasts.clear();
    shard.slots.clear();
    shard.inbox_data.clear();
    shard.delivered = 0;
    shard.dropped = 0;
    shard.corrupted = 0;
    shard.events.clear();
    // Concatenate the incoming mailboxes in source shard order. Each slot's
    // bucket still ends up in that (single) sender's outbox order, so the
    // concatenation order never shows in the output.
    for col in mail_col.iter_mut() {
        for (to, slot, obx, payload) in col.drain(..) {
            shard.active[(to - start) as usize] = ep;
            shard.slots.push(slot - slot_base);
            shard.unicasts.push((obx, payload));
        }
    }
    // Broadcast receiver activity: a sender's neighbors inside this shard
    // form one contiguous run of its sorted adjacency list.
    for list in bcasters {
        for &u in list {
            let nbrs = g.neighbors(u as usize);
            let lo = nbrs.partition_point(|&x| x < start);
            let hi = nbrs.partition_point(|&x| x < end);
            for &v in &nbrs[lo..hi] {
                shard.active[(v - start) as usize] = ep;
            }
        }
    }
    index_slots(
        ep,
        &shard.slots,
        &mut shard.slot_epoch,
        &mut shard.slot_start,
        &mut shard.slot_len,
        &mut shard.slot_cursor,
        &mut shard.touched,
        &mut shard.order,
    );
    // Per-receiver merge, identical logic (and byte-identical outcomes) to
    // the pre-sharding router: each port's unicast bucket is interleaved
    // with the sending neighbor's broadcast list by sender outbox index, so
    // a receiver sees sends in exactly the order the sender produced them.
    let Shard {
        unicasts,
        slot_start,
        slot_len,
        slot_epoch,
        order,
        active,
        inbox_data,
        inbox_bounds,
        delivered,
        dropped,
        corrupted,
        events,
        prev_ids,
        cur_ids,
        ..
    } = shard;
    for local in 0..(end - start) as usize {
        let v = start as usize + local;
        let bstart = inbox_data.len() as u32;
        if provenance {
            cur_ids[local].clear();
        }
        if active[local] == ep {
            let receiver_down = crashed[v].is_some();
            for (p, &u) in g.neighbors(v).iter().enumerate() {
                let u = u as usize;
                let rel_slot = (offsets[v] - slot_base) as usize + p;
                let uni = bucket(ep, rel_slot, slot_epoch, slot_start, slot_len, order);
                let bcs: &[(u32, Arc<M>)] = &broadcasts[u];
                if uni.is_empty() && bcs.is_empty() {
                    continue;
                }
                let their_port = rev_port[offsets[v] as usize + p] as usize;
                let (mut i, mut j) = (0usize, 0usize);
                while i < uni.len() || j < bcs.len() {
                    let from_uni = match (uni.get(i), bcs.get(j)) {
                        (Some(&ui), Some(&(bidx, _))) => unicasts[ui as usize].0 < bidx,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    let (idx, staged) = if from_uni {
                        let (idx, ref m) = unicasts[uni[i] as usize];
                        i += 1;
                        (idx, StagedMsg::Unicast(m))
                    } else {
                        let (idx, ref m) = bcs[j];
                        j += 1;
                        (idx, StagedMsg::Broadcast(m))
                    };
                    let m: &M = match staged {
                        StagedMsg::Unicast(m) => m,
                        StagedMsg::Broadcast(m) => m.as_ref(),
                    };
                    // The id the accounting pass assigned this outbox entry
                    // (only meaningful when tracing; `id_base` is empty
                    // otherwise).
                    let msg_id = if tracing { id_base[u] + idx as u64 } else { 0 };
                    // Messages to a crashed node are lost.
                    if receiver_down {
                        *dropped += 1;
                        continue;
                    }
                    let ctx = DeliveryCtx {
                        seed,
                        round,
                        from: u,
                        to: v,
                        to_port: p,
                        link_slot: offsets[u] as usize + their_port,
                        msg_index: idx as usize,
                        bits: m.bit_size(),
                    };
                    match model.delivery(&ctx) {
                        Delivery::Deliver => {
                            // Zero-copy for broadcasts: share the Arc'd
                            // payload. Unicasts cost the one clone they
                            // always did, never one per edge.
                            let payload = match staged {
                                StagedMsg::Unicast(m) => Payload::Owned(m.clone()),
                                StagedMsg::Broadcast(m) => Payload::Shared(Arc::clone(m)),
                            };
                            inbox_data.push((p as u32, payload));
                            *delivered += 1;
                            if provenance {
                                cur_ids[local].push(msg_id);
                            }
                            if tracing {
                                events.push(SimEvent::Deliver {
                                    round,
                                    from: u,
                                    to: v,
                                    port: p,
                                    bits: ctx.bits,
                                    msg_id,
                                });
                            }
                        }
                        Delivery::Drop => {
                            *dropped += 1;
                            if tracing {
                                events.push(SimEvent::Drop {
                                    round,
                                    from: u,
                                    to: v,
                                    port: p,
                                    bits: ctx.bits,
                                    msg_id,
                                });
                            }
                        }
                        Delivery::Corrupt(bit) => {
                            // The corrupt path is the one place a fault
                            // mutates bytes, so only here does a broadcast
                            // payload get deep-copied.
                            let mut damaged = m.clone();
                            if damaged.corrupt_bit(bit) {
                                *corrupted += 1;
                                if tracing {
                                    events.push(SimEvent::Corrupt {
                                        round,
                                        from: u,
                                        to: v,
                                        port: p,
                                        bits: ctx.bits,
                                        msg_id,
                                    });
                                }
                            } else {
                                // Payload has no materialized wire bits to
                                // flip — delivered intact.
                                *delivered += 1;
                                if tracing {
                                    events.push(SimEvent::Deliver {
                                        round,
                                        from: u,
                                        to: v,
                                        port: p,
                                        bits: ctx.bits,
                                        msg_id,
                                    });
                                }
                            }
                            // Either way the payload reached the algorithm,
                            // so it enters the receiver's causal deps.
                            if provenance {
                                cur_ids[local].push(msg_id);
                            }
                            inbox_data.push((p as u32, Payload::Owned(damaged)));
                        }
                    }
                }
            }
        }
        inbox_bounds[local] = (bstart, inbox_data.len() as u32);
        if provenance {
            // This round's deliveries become the node's deps next round.
            std::mem::swap(&mut prev_ids[local], &mut cur_ids[local]);
        }
    }
}

/// Per-edge-per-round bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bandwidth {
    /// CONGEST with `B` bits per directed edge per round.
    Bits(usize),
    /// The LOCAL model: unbounded messages (traffic is still counted).
    Unbounded,
}

impl Bandwidth {
    /// The standard `B = Θ(log n)` setting (exactly `ceil(log2 n)`, min 1).
    pub fn log_of(n: usize) -> Bandwidth {
        Bandwidth::Bits(crate::message::bits_for_domain(n.max(2)))
    }
}

/// Errors the engine can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// A node tried to push more bits through an edge than the bandwidth
    /// allows in one round.
    BandwidthExceeded {
        /// Sending node index.
        node: usize,
        /// Port the violation happened on.
        port: usize,
        /// Bits the node attempted to send this round on that port.
        attempted: usize,
        /// The configured limit.
        limit: usize,
        /// The round of the violation.
        round: usize,
    },
    /// A node addressed a port it does not have.
    InvalidPort {
        /// Sending node index.
        node: usize,
        /// The bad port.
        port: usize,
        /// The node's degree.
        degree: usize,
    },
    /// A node unicast a message while the engine runs in broadcast-CONGEST
    /// mode (the model variant of \[DKO14\] where every node must send the
    /// same message on all of its edges).
    UnicastForbidden {
        /// Sending node index.
        node: usize,
        /// The round of the violation.
        round: usize,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::BandwidthExceeded {
                node,
                port,
                attempted,
                limit,
                round,
            } => write!(
                f,
                "bandwidth exceeded: node {node} port {port} sent {attempted} bits \
                 (limit {limit}) in round {round}"
            ),
            CongestError::InvalidPort { node, port, degree } => {
                write!(f, "invalid port {port} on node {node} (degree {degree})")
            }
            CongestError::UnicastForbidden { node, round } => {
                write!(
                    f,
                    "node {node} unicast in round {round} under broadcast-CONGEST"
                )
            }
        }
    }
}

impl std::error::Error for CongestError {}

/// Graceful-degradation verdict for a run that did not go perfectly:
/// the round-budget watchdog tripped (`max_rounds` hit), the transport
/// gave frames up, or nodes crashed. The decision is still usable — it
/// covers the *surviving* subgraph and stays loss-sound (faults only
/// remove information) — but the caller should know how much of the
/// network it speaks for.
#[derive(Debug, Clone, PartialEq)]
pub struct Degraded {
    /// Nodes that never crashed, in index order.
    pub surviving: Vec<usize>,
    /// Rough quality estimate in `[0, 1]`: the surviving-node fraction
    /// times the fraction of fault-layer deliveries that succeeded.
    pub confidence: f64,
}

impl Degraded {
    /// Whether a strict majority of the `n` nodes survived — the quorum
    /// under which a surviving-subgraph decision is conventionally
    /// considered representative.
    pub fn has_quorum(&self, n: usize) -> bool {
        2 * self.surviving.len() > n
    }
}

/// Result of a completed (or round-limited) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-node decisions at the end of the run.
    pub decisions: Vec<Decision>,
    /// Traffic and round statistics.
    pub stats: RunStats,
    /// Whether every live node halted before the round limit (crashed nodes
    /// count as halted — they can never halt voluntarily).
    pub completed: bool,
    /// What the fault layer did to this run (all-zeros for fault-free runs).
    pub faults: FaultReport,
    /// `Some` when the run degraded instead of completing cleanly (round
    /// budget exhausted, transport give-ups, or crashed nodes); the
    /// decisions then cover the surviving subgraph only.
    pub degraded: Option<Degraded>,
}

impl RunOutcome {
    /// Whether this run degraded (see [`Degraded`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// (Re-)derives the degradation verdict from the current fault report
    /// and completion flag, for a network of `n` nodes. Called by the
    /// engine at the end of every run and again by the reliable transport
    /// after folding its give-up tallies in.
    pub(crate) fn assess_degradation(&mut self, n: usize) {
        let crashed = self.faults.crashed_nodes();
        if self.completed && crashed.is_empty() && self.faults.given_up == 0 {
            self.degraded = None;
            return;
        }
        let surviving: Vec<usize> = (0..n)
            .filter(|v| crashed.binary_search(v).is_err())
            .collect();
        let surviving_frac = if n == 0 {
            1.0
        } else {
            surviving.len() as f64 / n as f64
        };
        let attempts = self.faults.delivered + self.faults.dropped;
        let delivered_frac = if attempts == 0 {
            1.0
        } else {
            self.faults.delivered as f64 / attempts as f64
        };
        self.degraded = Some(Degraded {
            surviving,
            confidence: surviving_frac * delivered_frac,
        });
    }
    /// Definition 1 semantics: the network "detects H" iff some node rejects.
    pub fn network_rejects(&self) -> bool {
        self.decisions.contains(&Decision::Reject)
    }

    /// Convenience inverse of [`Self::network_rejects`].
    pub fn network_accepts(&self) -> bool {
        !self.network_rejects()
    }

    /// Whether the run was cut off by the engine's round limit rather than
    /// halting cleanly — the explicit negation of [`Self::completed`], so
    /// callers distinguish "all nodes halted" from "the simulation gave up".
    pub fn hit_round_limit(&self) -> bool {
        !self.completed
    }

    /// Whether some node that never crashed rejects. Under crash faults
    /// this is the meaningful detection signal: a crashed node's last
    /// decision is frozen pre-crash state, not an output of the protocol.
    pub fn surviving_node_rejects(&self) -> bool {
        let crashed = self.faults.crashed_nodes();
        self.decisions
            .iter()
            .enumerate()
            .any(|(v, d)| *d == Decision::Reject && crashed.binary_search(&v).is_err())
    }
}

/// Staged, topology-only routing state: everything `run_nodes_impl` would
/// otherwise recompute per run that depends only on `(graph, shards knob)`.
/// [`Prepared`](crate::Prepared) builds one behind an `Arc` and replays it
/// across a batch; a plan built inline for a one-shot run is bit-for-bit the
/// same, so staging never changes results.
#[derive(Debug)]
pub(crate) struct EnginePlan {
    /// Shard boundaries: `starts[k] = k·n/S`, length `S + 1`.
    pub(crate) starts: Vec<u32>,
    /// Reverse-port table: `rev_port[slot(v, p)]` is the port of `v` in the
    /// adjacency list of `v`'s `p`-th neighbor (unicast routing).
    pub(crate) rev_port: Vec<u32>,
}

impl EnginePlan {
    /// Builds the plan for `g`. A `shards` knob of `0` uses one shard per
    /// rayon worker thread; any value is clamped to `1..=n`.
    pub(crate) fn build(g: &Graph, shards: usize) -> Self {
        let n = g.n();
        let nshards = if shards == 0 {
            rayon::current_num_threads().clamp(1, n.max(1))
        } else {
            shards.clamp(1, n.max(1))
        };
        let starts: Vec<u32> = (0..=nshards).map(|k| (k * n / nshards) as u32).collect();
        let rev_port: Vec<u32> = (0..n)
            .into_par_iter()
            .flat_map_iter(|v| {
                g.neighbors(v).iter().map(move |&u| {
                    g.neighbors(u as usize)
                        .binary_search(&(v as u32))
                        .expect("undirected adjacency must be symmetric") as u32
                })
            })
            .collect();
        EnginePlan { starts, rev_port }
    }

    /// The shard count the plan was built for.
    pub(crate) fn nshards(&self) -> usize {
        self.starts.len() - 1
    }
}

/// Simulator configuration for one topology.
pub struct Engine<'g> {
    topology: &'g Graph,
    ids: Arc<[u64]>,
    /// Pre-staged routing plan (see [`EnginePlan`]); built inline when
    /// absent.
    plan: Option<Arc<EnginePlan>>,
    bandwidth: Bandwidth,
    max_rounds: usize,
    seed: u64,
    broadcast_only: bool,
    collector: Option<Arc<dyn Collector>>,
    profiler: Option<Arc<Profiler>>,
    /// Fault configuration applied to every run (see [`crate::faults`]).
    /// Bits are still charged for lost messages (they were sent); only
    /// delivery fails.
    faults: FaultSpec,
    /// Shard count for the sharded round engine; `0` (the default) uses
    /// one shard per rayon worker thread. See `Shard`.
    shards: usize,
    /// Whether rounds run through the fused single-sweep body (the
    /// default) or the pre-fusion three-pass reference path. Both produce
    /// byte-identical outcomes; the reference path exists as the oracle
    /// for the fused-pass referee tests and as the "before" side of the
    /// profiler comparison.
    fused: bool,
    /// Causal early termination (off by default): when nothing is in
    /// flight and every live node reports [`NodeAlgorithm::quiescent`],
    /// the remaining rounds of the run are skipped.
    early_termination: bool,
}

impl<'g> Engine<'g> {
    /// An engine over `topology` with identifiers `id(v) = v`, bandwidth
    /// `Θ(log n)`, and a generous default round limit.
    pub fn new(topology: &'g Graph) -> Self {
        Engine {
            ids: (0..topology.n() as u64).collect(),
            plan: None,
            bandwidth: Bandwidth::log_of(topology.n()),
            max_rounds: 16 * (topology.n() + 2) * (topology.n() + 2),
            seed: 0,
            broadcast_only: false,
            collector: None,
            profiler: None,
            faults: FaultSpec::None,
            shards: 0,
            fused: true,
            early_termination: false,
            topology,
        }
    }

    /// Selects the round-body implementation: `true` (the default) runs
    /// the fused single-sweep pass (account + stage in one outbox drain,
    /// then delivery, under one `profile.fused_nanos` span); `false` runs
    /// the pre-fusion three-pass reference (separate account/stage/deliver
    /// sweeps and spans). Outcomes, traces, and fault streams are
    /// byte-identical either way — the reference path is kept as the
    /// oracle the fused-pass referee tests compare against.
    pub fn fused(mut self, on: bool) -> Self {
        self.fused = on;
        self
    }

    /// Enables causal early termination: once no message is in flight and
    /// every non-crashed node reports [`NodeAlgorithm::quiescent`] (it
    /// will never send again nor change its decision on empty input), the
    /// engine skips the remaining rounds instead of clock-ticking to the
    /// round limit. Decisions are unchanged; executed-round counts and the
    /// per-round stat/fault series reflect the truncated run, and any
    /// fault schedule past the truncation point (e.g. late crashes) never
    /// fires. Off by default; intended for fault-free performance runs.
    pub fn early_termination(mut self, on: bool) -> Self {
        self.early_termination = on;
        self
    }

    /// Sets the shard count of the sharded round engine (`0`, the default,
    /// uses one shard per rayon worker thread; the count is clamped to
    /// `1..=n`). Sharding is purely an execution-layout knob: decisions,
    /// stats, fault streams, and traces are byte-identical at any shard
    /// count and any thread count (see the engine's `Shard` internals).
    pub fn shards(mut self, s: usize) -> Self {
        self.shards = s;
        self
    }

    /// Injects failures: each message delivery is independently lost with
    /// probability `p` (deterministic given the engine seed). Senders are
    /// still charged for the bits. Randomized detectors must stay *sound*
    /// under loss (they can only miss, never hallucinate, a subgraph).
    ///
    /// Sugar for `faults(FaultSpec::IndependentLoss(p))`; existing seeded
    /// runs replay unchanged because the loss hash is keyed identically.
    pub fn loss_rate(self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss rate must be a probability");
        if p == 0.0 {
            self.faults(FaultSpec::None)
        } else {
            self.faults(FaultSpec::IndependentLoss(p))
        }
    }

    /// Installs a fault model (loss, bursty loss, crashes, link outages,
    /// payload corruption, or a stack of them — see [`crate::faults`]).
    /// Each run builds a fresh model from this spec, so repeated runs of the
    /// same engine stay independent and seed-reproducible.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = spec;
        self
    }

    /// Attaches a bounded message trace (see [`crate::trace`]). Sugar for
    /// installing the buffer as the run's [`Collector`].
    pub fn trace(self, buf: crate::trace::TraceBuffer) -> Self {
        self.collector(Arc::new(buf))
    }

    /// Installs a structured-event [`Collector`] (see [`crate::obsv`]).
    /// With none installed, instrumentation costs nothing.
    pub fn collector(mut self, c: Arc<dyn Collector>) -> Self {
        self.collector = Some(c);
        self
    }

    /// The installed collector, for sibling layers (the reliable transport
    /// emits its end-of-run summary through it).
    pub(crate) fn collector_handle(&self) -> Option<&dyn Collector> {
        self.collector.as_deref()
    }

    /// Installs the engine self-profiler (see [`crate::obsv::profile`]).
    /// Off by default; the disabled path is one branch per hot section per
    /// round.
    pub fn profiler(mut self, p: Arc<Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// The installed profiler, for the reliable transport's ARQ spans.
    pub(crate) fn profiler_handle(&self) -> Option<&Arc<Profiler>> {
        self.profiler.as_ref()
    }

    /// The engine seed, for sibling layers deriving deterministic
    /// randomness (the reliable transport's retransmission jitter).
    pub(crate) fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The per-edge-per-round bit budget, if bounded — what the reliable
    /// transport's batched send pass packs against.
    pub(crate) fn bandwidth_limit(&self) -> Option<usize> {
        match self.bandwidth {
            Bandwidth::Bits(b) => Some(b),
            Bandwidth::Unbounded => None,
        }
    }

    /// Switches to broadcast-CONGEST (the \[DKO14\] variant the paper's
    /// related-work section discusses): nodes must send the same message on
    /// all edges, so any `Outgoing::Unicast` is rejected.
    pub fn broadcast_only(mut self, on: bool) -> Self {
        self.broadcast_only = on;
        self
    }

    /// Sets the per-edge bandwidth.
    pub fn bandwidth(mut self, b: Bandwidth) -> Self {
        self.bandwidth = b;
        self
    }

    /// Sets the identifier assignment (must be `n` values).
    pub fn with_ids(mut self, ids: Vec<u64>) -> Self {
        assert_eq!(ids.len(), self.topology.n());
        self.ids = ids.into();
        self
    }

    /// Shares an identifier assignment already behind an `Arc` (the batched
    /// [`Prepared`](crate::Prepared) path — no per-run copy).
    pub(crate) fn with_ids_arc(mut self, ids: Arc<[u64]>) -> Self {
        assert_eq!(ids.len(), self.topology.n());
        self.ids = ids;
        self
    }

    /// Installs a staged routing plan. The caller guarantees it was built
    /// by [`EnginePlan::build`] for this exact topology and shards knob.
    pub(crate) fn with_plan(mut self, plan: Arc<EnginePlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Caps the number of communication rounds.
    pub fn max_rounds(mut self, r: usize) -> Self {
        self.max_rounds = r;
        self
    }

    /// Seeds all node RNGs (each node gets an independent stream derived
    /// from this seed and its index).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// The actual round loop behind [`Simulation`](crate::Simulation), the
    /// single public entry point.
    pub(crate) fn run_nodes_impl<A, F>(&self, make: F) -> Result<(RunOutcome, Vec<A>), CongestError>
    where
        A: NodeAlgorithm,
        F: Fn(usize) -> A + Sync,
    {
        let g = self.topology;
        let n = g.n();
        let mut stats = RunStats::new(g);
        let collector = self.collector.as_deref();
        let tracing = collector.is_some();
        let timing = collector.is_some_and(Collector::wants_compute_spans);
        // Provenance (per-send `deps` sets) is the expensive half of
        // tracing: per-delivery id bookkeeping plus one `Arc<[u64]>` per
        // active sender per round. Bounded streaming collectors (the
        // flight recorder) decline it, so sends then carry this one shared
        // empty set while ids and every event keep flowing.
        let provenance = collector.is_some_and(Collector::wants_provenance);
        let empty_deps: Arc<[u64]> = Arc::from([]);
        let rec = |ev: SimEvent| {
            if let Some(c) = collector {
                c.record(&ev);
            }
        };

        // Shard layout + reverse-port table: staged by `Prepared` across a
        // batch, or built inline for a one-shot run — identical either way
        // (see [`EnginePlan`]). Any shard count is observationally identical
        // (see [`Shard`]); it only changes the parallel grain.
        let built_plan;
        let plan: &EnginePlan = match &self.plan {
            Some(p) => p,
            None => {
                built_plan = EnginePlan::build(g, self.shards);
                &built_plan
            }
        };
        let nshards = plan.nshards();
        let starts: &[u32] = &plan.starts;
        let rev_port: &[u32] = &plan.rev_port;

        let mut contexts: Vec<NodeContext> = (0..n)
            .map(|v| NodeContext {
                index: v,
                id: self.ids[v],
                neighbor_ids: g
                    .neighbors(v)
                    .iter()
                    .map(|&u| self.ids[u as usize])
                    .collect(),
                n,
                round: 0,
            })
            .collect();

        let mut rngs: Vec<ChaCha8Rng> = (0..n)
            .map(|v| {
                let mut seeder = ChaCha8Rng::seed_from_u64(self.seed);
                let salt: u64 = seeder.gen::<u64>() ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15);
                ChaCha8Rng::seed_from_u64(salt)
            })
            .collect();

        let mut nodes: Vec<A> = (0..n).map(&make).collect();

        // Fresh fault model per run: stateful models (Markov chains, crash
        // schedules) re-derive everything from (topology, seed).
        let mut model = self.faults.build();
        model.reset(g, self.seed);
        let mut report = FaultReport::default();
        // crashed[v] = round v crashed at; crash-stop, so never cleared.
        let mut crashed: Vec<Option<usize>> = vec![None; n];

        let prof = self.profiler.as_deref();

        // Run header so the trace is self-describing (the invariant
        // checker reads the bandwidth bound and node count from it).
        if tracing {
            rec(SimEvent::Meta {
                n,
                bandwidth_bits: match self.bandwidth {
                    Bandwidth::Bits(b) => b,
                    Bandwidth::Unbounded => 0,
                },
                seed: self.seed,
            });
        }

        // Round 0: init. Compute spans (wall-clock, so inherently
        // non-deterministic) are measured in the parallel section but
        // emitted afterwards in node order, and only when a collector
        // opted in.
        let t_init = prof_start(prof);
        let init: Vec<(Outbox<A::Msg>, u64)> = nodes
            .par_iter_mut()
            .zip(contexts.par_iter())
            .zip(rngs.par_iter_mut())
            .map(|((node, ctx), rng)| {
                let t = span_start(timing);
                let out = node.init(ctx, rng);
                (out, span_nanos(t))
            })
            .collect();
        prof_record(prof, Section::Compute, t_init);
        if timing {
            for (v, (_, nanos)) in init.iter().enumerate() {
                rec(SimEvent::NodeCompute {
                    round: 0,
                    node: v,
                    nanos: *nanos,
                });
            }
        }
        let mut outboxes: Vec<Outbox<A::Msg>> = init.into_iter().map(|(o, _)| o).collect();

        let mut completed = nodes.iter().all(|nd| nd.halted());

        // Per-shard state, allocated once and reused (cleared in place)
        // every round, so steady-state rounds do not allocate: each shard
        // owns its slot band's routing arena and its node range's inbox
        // slab, tallies, and event buffers. The mailbox matrix and its
        // transpose scratch swap Vec headers every round, so mailbox
        // capacity survives the transpose too.
        let slot_bounds: Vec<u32> = starts.iter().map(|&s| stats.offsets[s as usize]).collect();
        let mut shards: Vec<Shard<A::Msg>> = (0..nshards)
            .map(|k| {
                Shard::new(
                    starts[k],
                    starts[k + 1],
                    slot_bounds[k],
                    slot_bounds[k + 1],
                    provenance,
                )
            })
            .collect();
        let mut mail: Vec<Vec<Mail<A::Msg>>> = (0..nshards)
            .map(|_| (0..nshards).map(|_| Vec::new()).collect())
            .collect();
        let mut mail_t: Vec<Vec<Mail<A::Msg>>> = (0..nshards)
            .map(|_| (0..nshards).map(|_| Vec::new()).collect())
            .collect();
        let mut broadcasts: Vec<Vec<(u32, Arc<A::Msg>)>> = (0..n).map(|_| Vec::new()).collect();
        let mut bcasters: Vec<Vec<u32>> = (0..nshards).map(|_| Vec::new()).collect();
        let mut staged_counts: Vec<usize> = vec![0; nshards];
        let mut refill_counts: Vec<usize> = vec![0; nshards];
        let mut step_nanos: Vec<u64> = vec![u64::MAX; n];

        // Causal provenance (tracing only): every outbox entry gets a
        // run-unique id at accounting time, in node order, and each shard's
        // `prev_ids` holds the ids that reached its nodes' inboxes last
        // round — the `deps` sets stamped on their sends this round.
        let mut next_msg_id: u64 = 0;
        let mut id_base: Vec<u64> = Vec::new();

        // Amortized quiescence-scan cursor: the node that blocked the last
        // early-termination attempt. Schedule-driven algorithms keep the
        // same node non-quiescent across long idle stretches, so probing it
        // first turns the usual failed check into O(1); only the final,
        // successful check (and the rare blocker hand-offs) pay O(n). The
        // break condition "every live node quiescent" is scan-order
        // independent, so the cut round is unchanged.
        let mut et_cursor = 0usize;
        // True while the inbox slabs are known-empty (set by an idle
        // round's reset, invalidated by any delivery), so back-to-back
        // idle rounds skip the O(slots) reset.
        let mut inboxes_clear = false;
        // Number of nonempty outboxes, maintained incrementally (init
        // fills, the send sweep drains, `on_round` refills, a crash
        // discards), so the per-round all-idle test is O(1) instead of an
        // O(n) header scan — and an all-idle round can skip the send
        // sweep entirely.
        let mut outbox_nonempty: usize = outboxes.iter().filter(|o| !o.is_empty()).count();
        for round in 1..=self.max_rounds {
            if outbox_nonempty == 0 {
                if completed {
                    break;
                }
                // Causal early termination: nothing is in flight and every
                // live node is quiescent, so every remaining round would
                // deliver nothing and change nothing — skip them. Checked
                // only on all-idle rounds, so the scan runs exactly where
                // it can pay for itself.
                if self.early_termination {
                    let blocker = (et_cursor..n)
                        .chain(0..et_cursor)
                        .find(|&v| crashed[v].is_none() && !nodes[v].quiescent());
                    match blocker {
                        None => break,
                        Some(v) => et_cursor = v,
                    }
                }
            }
            rec(SimEvent::RoundStart { round });

            // Single-threaded fault bookkeeping: advance per-round model
            // state, then apply this round's crashes. A node crashing in
            // round r sends nothing from round r on — its pending outbox
            // (produced at the end of round r-1) is discarded before
            // accounting, so crashed nodes are charged no bits.
            model.begin_round(round);
            for (v, slot) in crashed.iter_mut().enumerate() {
                if slot.is_none() && model.crashed(v, round, self.seed) {
                    *slot = Some(round);
                    if !outboxes[v].is_empty() {
                        outbox_nonempty -= 1;
                    }
                    outboxes[v].clear();
                    report.crashed.push((v, round));
                    rec(SimEvent::Crash { round, node: v });
                }
            }

            // Assign this round's message ids: one per outbox entry (a
            // broadcast gets one id even though it costs every port), in
            // node order, so the id sequence is schedule-independent.
            if tracing {
                id_base.clear();
                let mut next = next_msg_id;
                for ob in &outboxes {
                    id_base.push(next);
                    next += ob.len() as u64;
                }
                next_msg_id = next;
            }

            // Account traffic + enforce bandwidth for this round's sends,
            // one job per shard: each job owns its shard's window of the
            // per-slot counters (disjoint splits of one flat array) and
            // buffers its `Send` events. On the fused path (the default)
            // the same sweep also stages the payloads; the reference path
            // runs the original separate account and stage passes.
            let before_bits = stats.total_bits;
            let before_msgs = stats.total_messages;
            let (prof_fused, prof_legacy) = if self.fused {
                (prof, None)
            } else {
                (None, prof)
            };
            let t_fused = prof_start(prof_fused);
            let mut staged = 0usize;
            if outbox_nonempty == 0 {
                // Every outbox is empty: the sweep would only walk empty
                // headers, and the shard `acct_*` fields still hold the
                // last busy round's already-merged values — skip both the
                // send passes and the merge below.
            } else if self.fused {
                // Fused account+stage: one parallel sweep per source shard
                // drains each sender's outbox, charging bits, buffering
                // `Send` events, and moving payloads into the mailboxes /
                // broadcast lists in the same touch — see
                // [`Engine::fused_send_shard`].
                {
                    let RunStats {
                        offsets,
                        directed_edge_bits,
                        ..
                    } = &mut stats;
                    let offsets: &[u32] = offsets;
                    let bit_windows = split_by_bounds(directed_edge_bits, &slot_bounds);
                    let ob_windows = split_by_bounds(&mut outboxes, starts);
                    let bc_windows = split_by_bounds(&mut broadcasts, starts);
                    let id_base_ref = &id_base;
                    let empty_deps_ref = &empty_deps;
                    shards
                        .par_iter_mut()
                        .zip(bit_windows.into_par_iter())
                        .zip(mail.par_iter_mut())
                        .zip(bcasters.par_iter_mut())
                        .zip(staged_counts.par_iter_mut())
                        .zip(ob_windows.into_par_iter())
                        .zip(bc_windows.into_par_iter())
                        .for_each(
                            |((((((shard, ebits), mail_row), bcst), count), obs), bcs)| {
                                *count = self.fused_send_shard(
                                    shard,
                                    obs,
                                    bcs,
                                    mail_row,
                                    bcst,
                                    offsets,
                                    rev_port,
                                    starts,
                                    ebits,
                                    round,
                                    tracing,
                                    provenance,
                                    empty_deps_ref,
                                    id_base_ref,
                                );
                            },
                        );
                }
                staged = staged_counts.iter().sum();
            } else {
                // Reference path, pass 1/3: account only.
                let t_acct = prof_start(prof_legacy);
                {
                    let RunStats {
                        offsets,
                        directed_edge_bits,
                        ..
                    } = &mut stats;
                    let offsets: &[u32] = offsets;
                    let bit_windows = split_by_bounds(directed_edge_bits, &slot_bounds);
                    let outboxes_ref = &outboxes;
                    let id_base_ref = &id_base;
                    let empty_deps_ref = &empty_deps;
                    shards
                        .par_iter_mut()
                        .zip(bit_windows.into_par_iter())
                        .for_each(|(shard, ebits)| {
                            self.account_shard(
                                shard,
                                outboxes_ref,
                                offsets,
                                ebits,
                                round,
                                tracing,
                                provenance,
                                empty_deps_ref,
                                id_base_ref,
                            );
                        });
                }
                prof_record(prof_legacy, Section::Account, t_acct);
            }
            // Merge in shard (= node) order: totals, buffered Send events,
            // and the lowest shard's error. Event buffers of shards past
            // the erroring one are discarded — a sequential scan would
            // never have reached those nodes.
            if outbox_nonempty > 0 {
                let mut acct_err = None;
                for shard in shards.iter_mut() {
                    stats.total_bits += shard.acct_bits;
                    stats.total_messages += shard.acct_msgs;
                    stats.max_edge_round_bits = stats.max_edge_round_bits.max(shard.acct_max);
                    for ev in shard.acct_events.drain(..) {
                        rec(ev);
                    }
                    if shard.acct_err.is_some() {
                        acct_err = shard.acct_err.take();
                        break;
                    }
                }
                if let Some(e) = acct_err {
                    prof_record(prof_fused, Section::Fused, t_fused);
                    return Err(e);
                }
            }
            let round_bits = stats.total_bits - before_bits;
            let round_msgs = stats.total_messages - before_msgs;
            stats.per_round_bits.push(round_bits);
            stats.per_round_messages.push(round_msgs);
            stats.rounds = round;

            if outbox_nonempty > 0 && !self.fused {
                // Reference path, pass 2/3: stage this round's sends
                // shard-parallel, draining the outboxes: unicast payloads
                // move (no copy) into the per-(src, dst) mailboxes; each
                // broadcast payload is materialized once behind an `Arc`
                // instead of being cloned per receiving edge.
                let t_stage = prof_start(prof_legacy);
                {
                    let offsets: &[u32] = &stats.offsets;
                    let starts_ref = &starts;
                    let rev_port_ref = &rev_port;
                    let ob_windows = split_by_bounds(&mut outboxes, starts);
                    let bc_windows = split_by_bounds(&mut broadcasts, starts);
                    mail.par_iter_mut()
                        .zip(bcasters.par_iter_mut())
                        .zip(staged_counts.par_iter_mut())
                        .zip(ob_windows.into_par_iter())
                        .zip(bc_windows.into_par_iter())
                        .enumerate()
                        .for_each(|(k, ((((mail_row, bcst), count), obs), bcs))| {
                            *count = stage_shard(
                                starts_ref[k],
                                g,
                                offsets,
                                rev_port_ref,
                                starts_ref,
                                obs,
                                bcs,
                                mail_row,
                                bcst,
                            );
                        });
                }
                staged = staged_counts.iter().sum();
                prof_record(prof_legacy, Section::Stage, t_stage);
            }

            // Deliver shard-parallel: each destination shard merges its
            // incoming mailboxes (in source shard order), adjudicates every
            // delivery through the fault model, and fills its inbox slab —
            // see [`deliver_shard`]. Fault randomness is a deterministic
            // function of the engine seed and absolute coordinates, so the
            // run stays reproducible; per-shard fault counts and structured
            // events are reduced *after* the parallel section, in shard
            // (= node) order, so any collector sees the same stream at any
            // thread count and any shard count.
            let (mut round_dropped, mut round_corrupted) = (0u64, 0u64);
            let t_deliver = prof_start(prof_legacy);
            if staged == 0 {
                // All-idle round (nodes computing, nothing in flight):
                // skip the delivery pass entirely. Nothing was delivered,
                // so next round's sends have empty deps sets. Consecutive
                // idle rounds skip even the slab reset — the inboxes were
                // already cleared by the previous idle round.
                if !inboxes_clear {
                    shards.par_iter_mut().for_each(|shard| {
                        shard.inbox_data.clear();
                        for b in shard.inbox_bounds.iter_mut() {
                            *b = (0, 0);
                        }
                        for prev in shard.prev_ids.iter_mut() {
                            prev.clear();
                        }
                    });
                    inboxes_clear = true;
                }
            } else {
                inboxes_clear = false;
                // Transpose the mailbox matrix (Vec-header swaps only) so
                // each destination shard owns its incoming column.
                for s in 0..nshards {
                    for d in 0..nshards {
                        std::mem::swap(&mut mail_t[d][s], &mut mail[s][d]);
                    }
                }
                {
                    let offsets: &[u32] = &stats.offsets;
                    let broadcasts_ref = &broadcasts;
                    let bcasters_ref = &bcasters;
                    let crashed_ref = &crashed;
                    let id_base_ref = &id_base;
                    let model_ref: &dyn FaultModel = &*model;
                    let rev_port_ref = &rev_port;
                    shards
                        .par_iter_mut()
                        .zip(mail_t.par_iter_mut())
                        .for_each(|(shard, col)| {
                            deliver_shard(
                                shard,
                                col,
                                g,
                                offsets,
                                rev_port_ref,
                                broadcasts_ref,
                                bcasters_ref,
                                model_ref,
                                crashed_ref,
                                id_base_ref,
                                tracing,
                                provenance,
                                round,
                                self.seed,
                            );
                        });
                }
                // Swap the (now drained) mailboxes back so their capacity
                // is reused next round.
                for s in 0..nshards {
                    for d in 0..nshards {
                        std::mem::swap(&mut mail[s][d], &mut mail_t[d][s]);
                    }
                }
                // Reduce tallies and drain events in shard (= node) order.
                for shard in shards.iter_mut() {
                    report.delivered += shard.delivered;
                    round_dropped += shard.dropped;
                    round_corrupted += shard.corrupted;
                    for ev in shard.events.drain(..) {
                        rec(ev);
                    }
                }
            }
            prof_record(prof_legacy, Section::Deliver, t_deliver);
            prof_record(prof_fused, Section::Fused, t_fused);
            report.dropped += round_dropped;
            report.corrupted += round_corrupted;
            report.dropped_per_round.push(round_dropped);
            report.corrupted_per_round.push(round_corrupted);

            // Step all live (non-halted, non-crashed) nodes, writing each
            // node's new outbox in place (staging drained the old ones, so
            // no per-round collect is needed). One job per shard: each job
            // reads its shard's inbox slab and owns its node range's
            // windows of the per-node arrays. The shared context is
            // updated in place (`round` is its only per-round field)
            // instead of being cloned per node per round.
            let t_step = prof_start(prof);
            {
                let crashed_ref = &crashed;
                let node_windows = split_by_bounds(&mut nodes, starts);
                let ob_windows = split_by_bounds(&mut outboxes, starts);
                let ctx_windows = split_by_bounds(&mut contexts, starts);
                let rng_windows = split_by_bounds(&mut rngs, starts);
                let nanos_windows = split_by_bounds(&mut step_nanos, starts);
                shards
                    .par_iter()
                    .zip(node_windows.into_par_iter())
                    .zip(ob_windows.into_par_iter())
                    .zip(ctx_windows.into_par_iter())
                    .zip(rng_windows.into_par_iter())
                    .zip(nanos_windows.into_par_iter())
                    .zip(refill_counts.par_iter_mut())
                    .for_each(|((((((shard, nds), obs), ctxs), rgs), nanos), refill)| {
                        // The send passes drained every outbox, so the
                        // shard's nonempty count is exactly the nodes whose
                        // `on_round` returns sends this round.
                        let mut cnt = 0usize;
                        for (local, node) in nds.iter_mut().enumerate() {
                            let v = shard.start as usize + local;
                            if node.halted() || crashed_ref[v].is_some() {
                                if timing {
                                    nanos[local] = u64::MAX;
                                }
                            } else {
                                ctxs[local].round = round;
                                let (b0, b1) = shard.inbox_bounds[local];
                                let inbox = &shard.inbox_data[b0 as usize..b1 as usize];
                                let t = span_start(timing);
                                obs[local] = node.on_round(&ctxs[local], inbox, &mut rgs[local]);
                                if timing {
                                    nanos[local] = span_nanos(t);
                                }
                                if !obs[local].is_empty() {
                                    cnt += 1;
                                }
                            }
                        }
                        *refill = cnt;
                    });
            }
            outbox_nonempty = refill_counts.iter().sum();
            prof_record(prof, Section::Compute, t_step);
            if timing {
                for (v, &nanos) in step_nanos.iter().enumerate() {
                    if nanos != u64::MAX {
                        rec(SimEvent::NodeCompute {
                            round,
                            node: v,
                            nanos,
                        });
                    }
                }
            }

            rec(SimEvent::RoundEnd {
                round,
                bits: round_bits,
                messages: round_msgs,
                dropped: round_dropped,
                corrupted: round_corrupted,
            });

            completed = nodes
                .iter()
                .zip(crashed.iter())
                .all(|(nd, down)| nd.halted() || down.is_some());
        }

        let mut outcome = RunOutcome {
            decisions: nodes.iter().map(|nd| nd.decision()).collect(),
            stats,
            completed,
            faults: report,
            degraded: None,
        };
        outcome.assess_degradation(n);
        Ok((outcome, nodes))
    }

    /// Sums per-port bits for one shard's senders, charges the shard's
    /// window of the per-slot counters, enforces the bandwidth limit, and
    /// buffers `Send` events — the per-shard job of the accounting pass.
    ///
    /// Writes only shard-owned state: `edge_bits` is the shard's disjoint
    /// window of `RunStats::directed_edge_bits` (starting at slot
    /// `shard.slot_base`), and the `acct_*` fields carry this shard's
    /// totals, buffered events, and first error out of the parallel
    /// section for the caller's in-order merge.
    #[allow(clippy::too_many_arguments)]
    fn account_shard<M: BitSize>(
        &self,
        shard: &mut Shard<M>,
        outboxes: &[Outbox<M>],
        offsets: &[u32],
        edge_bits: &mut [u64],
        round: usize,
        tracing: bool,
        provenance: bool,
        empty_deps: &Arc<[u64]>,
        id_base: &[u64],
    ) {
        let g = self.topology;
        // Destructure for disjoint field borrows: `port_bits` scratch and
        // `prev_ids` are read while the `acct_*` outputs are written.
        let Shard {
            start,
            end,
            slot_base,
            prev_ids,
            port_bits,
            acct_events,
            acct_bits,
            acct_msgs,
            acct_max,
            acct_err,
            ..
        } = shard;
        *acct_bits = 0;
        *acct_msgs = 0;
        *acct_max = 0;
        *acct_err = None;
        acct_events.clear();
        let start = *start as usize;
        let end = *end as usize;
        let slot_base = *slot_base as usize;
        for (local, outbox) in outboxes[start..end].iter().enumerate() {
            if outbox.is_empty() {
                continue;
            }
            let v = start + local;
            let deg = g.degree(v);
            port_bits.clear();
            port_bits.resize(deg, 0);
            let mut msgs = 0u64;
            // All of v's sends this round read the same inbox, so they
            // share one deps set (one Arc per active sender per round);
            // without provenance every send shares the one empty set.
            let sender_prov: Option<(u64, Arc<[u64]>)> = if tracing {
                let deps = if provenance {
                    Arc::from(prev_ids[local].as_slice())
                } else {
                    Arc::clone(empty_deps)
                };
                Some((id_base[v], deps))
            } else {
                None
            };
            for (idx, out) in outbox.iter().enumerate() {
                match out {
                    Outgoing::Unicast(p, m) => {
                        if self.broadcast_only {
                            *acct_err = Some(CongestError::UnicastForbidden { node: v, round });
                            return;
                        }
                        if *p as usize >= deg {
                            *acct_err = Some(CongestError::InvalidPort {
                                node: v,
                                port: *p as usize,
                                degree: deg,
                            });
                            return;
                        }
                        port_bits[*p as usize] += m.bit_size() as u64;
                        msgs += 1;
                        if let Some((base, deps)) = &sender_prov {
                            acct_events.push(SimEvent::Send {
                                round,
                                from: v,
                                port: *p as usize,
                                bits: m.bit_size(),
                                msg_id: base + idx as u64,
                                deps: Arc::clone(deps),
                            });
                        }
                    }
                    Outgoing::Broadcast(m) => {
                        let sz = m.bit_size();
                        for pb in port_bits.iter_mut() {
                            *pb += sz as u64;
                        }
                        msgs += deg as u64;
                        if let Some((base, deps)) = &sender_prov {
                            acct_events.push(SimEvent::Send {
                                round,
                                from: v,
                                port: usize::MAX,
                                bits: sz,
                                msg_id: base + idx as u64,
                                deps: Arc::clone(deps),
                            });
                        }
                    }
                }
            }
            for (p, &bits) in port_bits.iter().enumerate() {
                if let Bandwidth::Bits(limit) = self.bandwidth {
                    if bits > limit as u64 {
                        *acct_err = Some(CongestError::BandwidthExceeded {
                            node: v,
                            port: p,
                            attempted: bits as usize,
                            limit,
                            round,
                        });
                        return;
                    }
                }
                edge_bits[offsets[v] as usize + p - slot_base] += bits;
                *acct_bits += bits;
                *acct_max = (*acct_max).max(bits as usize);
            }
            *acct_msgs += msgs;
        }
    }

    /// The fused account+stage job of one source shard: a single drain of
    /// each sender's outbox validates the port, charges the bits, buffers
    /// the `Send` event, and moves the payload into its destination
    /// mailbox (or the sender's broadcast `Arc` list) — one touch per
    /// message where the reference path takes two full sweeps.
    ///
    /// Bit accounting is word-parallel: broadcast bits accumulate in a
    /// single `u64` (every port carries the same broadcast load — O(1) per
    /// broadcast instead of O(degree)), unicast bits in the lazy `u64`
    /// per-port scratch, and the settlement loop for a broadcast-only
    /// sender is one limit check plus a vectorizable `+=` over its
    /// contiguous `directed_edge_bits` window.
    ///
    /// Error identity matches the reference path exactly: per-entry errors
    /// (forbidden unicast, invalid port) fire in outbox order, bandwidth
    /// violations in port order after the sender's entries, and the `Send`
    /// events buffered before the error are kept — the caller's in-order
    /// merge then reproduces the sequential first-error semantics.
    /// Returns the staged-entry count (unicasts plus broadcasts).
    #[allow(clippy::too_many_arguments)]
    fn fused_send_shard<M: BitSize>(
        &self,
        shard: &mut Shard<M>,
        outboxes: &mut [Outbox<M>],
        bcasts: &mut [Vec<(u32, Arc<M>)>],
        mail_row: &mut [Mail<M>],
        bcasters: &mut Vec<u32>,
        offsets: &[u32],
        rev_port: &[u32],
        starts: &[u32],
        edge_bits: &mut [u64],
        round: usize,
        tracing: bool,
        provenance: bool,
        empty_deps: &Arc<[u64]>,
        id_base: &[u64],
    ) -> usize {
        let g = self.topology;
        let limit = match self.bandwidth {
            Bandwidth::Bits(b) => Some(b as u64),
            Bandwidth::Unbounded => None,
        };
        let Shard {
            start,
            slot_base,
            prev_ids,
            port_bits,
            acct_events,
            acct_bits,
            acct_msgs,
            acct_max,
            acct_err,
            ..
        } = shard;
        *acct_bits = 0;
        *acct_msgs = 0;
        *acct_max = 0;
        *acct_err = None;
        acct_events.clear();
        bcasters.clear();
        let start = *start as usize;
        let slot_base = *slot_base as usize;
        let mut staged = 0usize;
        for (local, outbox) in outboxes.iter_mut().enumerate() {
            let bc = &mut bcasts[local];
            bc.clear();
            if outbox.is_empty() {
                continue;
            }
            let v = start + local;
            let deg = g.degree(v);
            let mut bcast_bits = 0u64;
            let mut have_uni = false;
            let mut msgs = 0u64;
            // All of v's sends this round read the same inbox, so they
            // share one deps set (one Arc per active sender per round);
            // without provenance every send shares the one empty set.
            let sender_prov: Option<(u64, Arc<[u64]>)> = if tracing {
                let deps = if provenance {
                    Arc::from(prev_ids[local].as_slice())
                } else {
                    Arc::clone(empty_deps)
                };
                Some((id_base[v], deps))
            } else {
                None
            };
            for (idx, out) in outbox.drain(..).enumerate() {
                match out {
                    Outgoing::Unicast(p, m) => {
                        if self.broadcast_only {
                            *acct_err = Some(CongestError::UnicastForbidden { node: v, round });
                            return staged;
                        }
                        let p = p as usize;
                        if p >= deg {
                            *acct_err = Some(CongestError::InvalidPort {
                                node: v,
                                port: p,
                                degree: deg,
                            });
                            return staged;
                        }
                        if !have_uni {
                            have_uni = true;
                            port_bits.clear();
                            port_bits.resize(deg, 0);
                        }
                        let sz = m.bit_size();
                        port_bits[p] += sz as u64;
                        msgs += 1;
                        if let Some((base, deps)) = &sender_prov {
                            acct_events.push(SimEvent::Send {
                                round,
                                from: v,
                                port: p,
                                bits: sz,
                                msg_id: base + idx as u64,
                                deps: Arc::clone(deps),
                            });
                        }
                        let to = g.neighbors(v)[p] as usize;
                        let to_port = rev_port[offsets[v] as usize + p];
                        let slot = offsets[to] + to_port;
                        let dst = shard_of(starts, to as u32);
                        mail_row[dst].push((to as u32, slot, idx as u32, m));
                        staged += 1;
                    }
                    Outgoing::Broadcast(m) => {
                        let sz = m.bit_size();
                        bcast_bits += sz as u64;
                        msgs += deg as u64;
                        if let Some((base, deps)) = &sender_prov {
                            acct_events.push(SimEvent::Send {
                                round,
                                from: v,
                                port: usize::MAX,
                                bits: sz,
                                msg_id: base + idx as u64,
                                deps: Arc::clone(deps),
                            });
                        }
                        bc.push((idx as u32, Arc::new(m)));
                        staged += 1;
                    }
                }
            }
            // Settle the sender's bandwidth in port order (a degree-0
            // sender has no ports, hence nothing to check or charge —
            // same as the reference path's empty port loop).
            let ebase = offsets[v] as usize - slot_base;
            if !have_uni {
                if deg > 0 {
                    if let Some(limit) = limit {
                        if bcast_bits > limit {
                            *acct_err = Some(CongestError::BandwidthExceeded {
                                node: v,
                                port: 0,
                                attempted: bcast_bits as usize,
                                limit: limit as usize,
                                round,
                            });
                            return staged;
                        }
                    }
                    for eb in &mut edge_bits[ebase..ebase + deg] {
                        *eb += bcast_bits;
                    }
                    *acct_bits += bcast_bits * deg as u64;
                    *acct_max = (*acct_max).max(bcast_bits as usize);
                }
            } else {
                for (p, pb) in port_bits.iter().enumerate() {
                    let total = pb + bcast_bits;
                    if let Some(limit) = limit {
                        if total > limit {
                            *acct_err = Some(CongestError::BandwidthExceeded {
                                node: v,
                                port: p,
                                attempted: total as usize,
                                limit: limit as usize,
                                round,
                            });
                            return staged;
                        }
                    }
                    edge_bits[ebase + p] += total;
                    *acct_bits += total;
                    *acct_max = (*acct_max).max(total as usize);
                }
            }
            *acct_msgs += msgs;
            if !bc.is_empty() {
                bcasters.push(v as u32);
            }
        }
        staged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::node::Inbox;
    use crate::simulation::Simulation;
    use crate::trace::TraceKind;
    use graphlib::generators;

    /// Flood: every node broadcasts its id once; after one round, each node
    /// has heard all neighbor ids and halts, rejecting iff some neighbor id
    /// is larger than its own.
    struct Flood {
        sent: bool,
        done: bool,
        reject: bool,
    }

    impl NodeAlgorithm for Flood {
        type Msg = u64;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<u64> {
            self.sent = true;
            if ctx.degree() == 0 {
                self.done = true;
                return Vec::new();
            }
            vec![Outgoing::Broadcast(ctx.id)]
        }

        fn on_round(
            &mut self,
            ctx: &NodeContext,
            inbox: &Inbox<u64>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<u64> {
            self.reject = inbox.iter().any(|(_, id)| **id > ctx.id);
            self.done = true;
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            if self.reject {
                Decision::Reject
            } else {
                Decision::Accept
            }
        }
    }

    fn flood() -> Flood {
        Flood {
            sent: false,
            done: false,
            reject: false,
        }
    }

    #[test]
    fn flood_on_cycle() {
        let g = generators::cycle(5);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert!(out.completed);
        assert_eq!(out.stats.rounds, 1);
        // Every node except the max-id one rejects.
        let rejects = out
            .decisions
            .iter()
            .filter(|d| **d == Decision::Reject)
            .count();
        assert_eq!(rejects, 4);
        // 5 nodes broadcast 64 bits over 2 ports each.
        assert_eq!(out.stats.total_bits, 5 * 2 * 64);
        assert_eq!(out.stats.total_messages, 10);
    }

    #[test]
    fn bandwidth_enforced() {
        let g = generators::cycle(4);
        let err = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(8))
            .run(|_| flood())
            .unwrap_err();
        match err {
            SimError::Congest(CongestError::BandwidthExceeded {
                attempted, limit, ..
            }) => {
                assert_eq!(attempted, 64);
                assert_eq!(limit, 8);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn local_model_unbounded() {
        let g = generators::star(50);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Unbounded)
            .run(|_| flood())
            .unwrap();
        assert!(out.completed);
    }

    #[test]
    fn custom_ids_visible() {
        // With descending ids, the first node holds the max id and accepts.
        let g = generators::path(3);
        let ids = vec![100, 50, 10];
        let out = Simulation::on(&g)
            .with_ids(ids)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert_eq!(out.decisions[0], Decision::Accept);
        assert_eq!(out.decisions[1], Decision::Reject);
        assert_eq!(out.decisions[2], Decision::Reject);
    }

    /// Ping-pong along one edge: checks unicast routing + round counting.
    struct PingPong {
        hops_left: usize,
        done: bool,
    }

    impl NodeAlgorithm for PingPong {
        type Msg = u32;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<u32> {
            if ctx.index == 0 {
                vec![Outgoing::Unicast(0, self.hops_left as u32)]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext,
            inbox: &Inbox<u32>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<u32> {
            if let Some((port, hops)) = inbox.first() {
                if **hops == 0 {
                    self.done = true;
                    return Vec::new();
                }
                return vec![Outgoing::Unicast(*port, **hops - 1)];
            }
            // A node with nothing to do halts once the token passed it.
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            Decision::Accept
        }
    }

    #[test]
    fn ping_pong_rounds() {
        let g = generators::path(2);
        let hops = 6;
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(32))
            .max_rounds(100)
            .run(|_| PingPong {
                hops_left: hops,
                done: false,
            })
            .unwrap();
        // Token makes `hops + 1` trips (counting down 6..=0).
        assert_eq!(out.stats.total_messages, hops as u64 + 1);
    }

    #[test]
    fn round_limit_reported() {
        // PingPong on a path never sets `done` for node 1... give it a huge
        // hop count and a tiny round limit instead.
        let g = generators::path(2);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(32))
            .max_rounds(3)
            .run(|_| PingPong {
                hops_left: 1000,
                done: false,
            })
            .unwrap();
        assert!(!out.completed);
        assert_eq!(out.stats.rounds, 3);
    }

    #[test]
    fn per_round_series_sums_to_total() {
        let g = generators::cycle(5);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert_eq!(
            out.stats.per_round_bits.iter().sum::<u64>(),
            out.stats.total_bits
        );
        assert_eq!(out.stats.per_round_bits.len(), out.stats.rounds);
        assert_eq!(out.stats.per_round_bits[0], 5 * 2 * 64);
        // The message series is aligned with the bit series.
        assert_eq!(
            out.stats.per_round_messages.iter().sum::<u64>(),
            out.stats.total_messages
        );
        assert_eq!(out.stats.per_round_messages.len(), out.stats.rounds);
    }

    #[test]
    fn full_loss_delivers_nothing() {
        let g = generators::cycle(5);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::IndependentLoss(1.0))
            .run(|_| flood())
            .unwrap();
        // Bits were still charged...
        assert_eq!(out.stats.total_bits, 5 * 2 * 64);
        // ...but nobody heard a larger id, so everyone accepts.
        assert!(out.decisions.iter().all(|d| *d == Decision::Accept));
        // The fault report shows the losses instead of hiding them.
        assert_eq!(out.faults.dropped, 10);
        assert_eq!(out.faults.delivered, 0);
        assert!(out.faults.any_faults());
    }

    #[test]
    fn partial_loss_is_deterministic_and_partial() {
        let g = generators::clique(8);
        let run = || {
            Simulation::on(&g)
                .bandwidth(Bandwidth::Bits(64))
                .seed(9)
                .faults(FaultSpec::IndependentLoss(0.5))
                .run(|_| flood())
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.decisions, b.decisions, "loss is seeded");
        // With 56 deliveries at 50% loss, some but not all rejections of
        // the loss-free run should survive.
        let rejects = a
            .decisions
            .iter()
            .filter(|d| **d == Decision::Reject)
            .count();
        assert!(rejects > 0 && rejects <= 7, "rejects = {rejects}");
    }

    #[test]
    fn zero_loss_matches_default() {
        let g = generators::cycle(6);
        let a = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        let b = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::None)
            .run(|_| flood())
            .unwrap();
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn trace_captures_sends() {
        let g = generators::cycle(3);
        let buf = crate::trace::TraceBuffer::new(100);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .collector(buf.clone())
            .run(|_| flood())
            .unwrap();
        assert!(out.completed);
        // Three broadcasts, one trace event each.
        let evs = buf.events();
        assert_eq!(evs.len(), 3);
        assert!(evs
            .iter()
            .all(|e| e.port == usize::MAX && e.bits == 64 && e.kind == TraceKind::Send));
        assert!(buf.summary().contains("3 sends"));
    }

    #[test]
    fn trace_buffer_overflows_gracefully_under_fault_load() {
        // A 2-event buffer on a clique flood with heavy loss: the engine
        // emits far more Send + Drop events than fit, and the buffer must
        // cap its memory while still counting the overflow.
        let g = generators::clique(5);
        let buf = crate::trace::TraceBuffer::new(2);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::IndependentLoss(0.5))
            .seed(3)
            .collector(buf.clone())
            .run(|_| flood())
            .unwrap();
        assert!(out.faults.dropped > 0, "the loss model should have fired");
        assert_eq!(buf.events().len(), 2);
        assert!(buf.dropped() > 0);
        assert!(buf.summary().contains("dropped events"));
    }

    #[test]
    fn drop_events_are_traced_with_kind() {
        let g = generators::path(2);
        let buf = crate::trace::TraceBuffer::new(100);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::IndependentLoss(1.0))
            .collector(buf.clone())
            .max_rounds(3)
            .run(|_| flood())
            .unwrap();
        assert_eq!(out.faults.delivered, 0);
        let drops = buf.events_of(TraceKind::Drop);
        assert_eq!(drops.len(), out.faults.dropped as usize);
        assert!(!drops.is_empty());
    }

    #[test]
    fn broadcast_only_rejects_unicast() {
        let g = generators::path(2);
        let err = Simulation::on(&g)
            .broadcast_only(true)
            .bandwidth(Bandwidth::Bits(32))
            .run(|_| PingPong {
                hops_left: 3,
                done: false,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Congest(CongestError::UnicastForbidden { .. })
        ));
    }

    #[test]
    fn broadcast_only_allows_broadcasts() {
        let g = generators::cycle(4);
        let out = Simulation::on(&g)
            .broadcast_only(true)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert!(out.completed);
    }

    #[test]
    fn determinism_across_runs() {
        let g = generators::cycle(7);
        let run = || {
            Simulation::on(&g)
                .seed(42)
                .bandwidth(Bandwidth::Bits(64))
                .run(|_| flood())
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.stats.total_bits, b.stats.total_bits);
        assert_eq!(a.metrics, b.metrics, "metric snapshots are deterministic");
    }

    #[test]
    fn shard_count_is_invisible() {
        // The shard count is a parallel-grain knob, never an observable:
        // decisions, traffic totals, and fault outcomes must be
        // byte-identical at every shard count (the dedicated referee in
        // tests/sharding.rs additionally pins inboxes and trace streams).
        use crate::faults::FaultSpec;
        let g = generators::clique(8);
        let run_with = |shards: usize| {
            Simulation::on(&g)
                .bandwidth(Bandwidth::Bits(64))
                .seed(9)
                .shards(shards)
                .faults(FaultSpec::IndependentLoss(0.5))
                .run(|_| flood())
                .unwrap()
        };
        let reference = run_with(1);
        for shards in [2, 3, 7, 64] {
            let out = run_with(shards);
            assert_eq!(out.decisions, reference.decisions, "shards={shards}");
            assert_eq!(
                out.stats.total_bits, reference.stats.total_bits,
                "shards={shards}"
            );
            assert_eq!(out.faults.dropped, reference.faults.dropped);
            assert_eq!(out.faults.delivered, reference.faults.delivered);
            assert_eq!(
                out.faults.dropped_per_round, reference.faults.dropped_per_round,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn hit_round_limit_distinguishes_clean_halt() {
        let g = generators::cycle(5);
        let clean = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert!(clean.completed && !clean.hit_round_limit());

        let g2 = generators::path(2);
        let cut = Simulation::on(&g2)
            .bandwidth(Bandwidth::Bits(32))
            .max_rounds(3)
            .run(|_| PingPong {
                hops_left: 1000,
                done: false,
            })
            .unwrap();
        assert!(!cut.completed && cut.hit_round_limit());
    }

    /// Broadcasts once, then idles until a scheduled halt round far in the
    /// future — but declares itself quiescent from round 1 on, since the
    /// idle tail neither sends nor changes the decision.
    struct IdleTail {
        halt_round: usize,
        started: bool,
        done: bool,
    }

    impl NodeAlgorithm for IdleTail {
        type Msg = u64;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<u64> {
            vec![Outgoing::Broadcast(ctx.id)]
        }

        fn on_round(
            &mut self,
            ctx: &NodeContext,
            _inbox: &Inbox<u64>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<u64> {
            self.started = true;
            if ctx.round >= self.halt_round {
                self.done = true;
            }
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn quiescent(&self) -> bool {
            self.started
        }

        fn decision(&self) -> Decision {
            Decision::Accept
        }
    }

    #[test]
    fn early_termination_skips_quiescent_tail() {
        let g = generators::cycle(6);
        let halt_round = 50;
        let run_with = |et: bool| {
            Simulation::on(&g)
                .bandwidth(Bandwidth::Bits(64))
                .early_termination(et)
                .run(|_| IdleTail {
                    halt_round,
                    started: false,
                    done: false,
                })
                .unwrap()
        };
        let full = run_with(false);
        let cut = run_with(true);
        // The full run clock-ticks to the scheduled halt; the terminated
        // run stops as soon as the network drains (round 1's broadcasts
        // deliver in round 1; round 2 finds everything idle).
        assert_eq!(full.stats.rounds, halt_round);
        assert!(cut.stats.rounds <= 2, "rounds = {}", cut.stats.rounds);
        // Traffic and decisions are unchanged — only the idle tail went.
        assert_eq!(cut.decisions, full.decisions);
        assert_eq!(cut.stats.total_bits, full.stats.total_bits);
        assert_eq!(cut.stats.total_messages, full.stats.total_messages);
    }

    #[test]
    fn early_termination_waits_for_pending_decisions() {
        // With the default `quiescent` (= halted), early termination can
        // only fire where the engine would stop anyway: the clock-driven
        // PingPong run is byte-identical with the flag on.
        let g = generators::path(2);
        let run_with = |et: bool| {
            Simulation::on(&g)
                .bandwidth(Bandwidth::Bits(32))
                .early_termination(et)
                .max_rounds(100)
                .run(|_| PingPong {
                    hops_left: 6,
                    done: false,
                })
                .unwrap()
        };
        let full = run_with(false);
        let cut = run_with(true);
        assert_eq!(cut.stats.rounds, full.stats.rounds);
        assert_eq!(cut.stats.total_messages, full.stats.total_messages);
    }

    #[test]
    fn crash_stop_silences_node_and_is_reported() {
        use crate::faults::{CrashStop, FaultSpec};
        // Star center crashes before round 1: no message ever flows, and
        // every leaf (degree 1, only neighbor dead) hears nothing.
        let g = generators::star(5); // center 0 + 5 leaves
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::CrashStop(CrashStop::at(vec![(0, 1)])))
            .run(|_| flood())
            .unwrap();
        // The center's round-0 broadcast is discarded before accounting:
        // only the 5 leaves are charged for their (lost) broadcasts.
        assert_eq!(out.stats.total_bits, 5 * 64);
        assert_eq!(out.faults.crashed, vec![(0, 1)]);
        assert_eq!(out.faults.crashed_nodes(), vec![0]);
        // Leaves heard nothing, so all decisions are Accept; node 0 is
        // crashed so it cannot be a "surviving" rejecter either.
        assert!(!out.surviving_node_rejects());
        // The leaves' sends toward the dead center count as dropped.
        assert_eq!(out.faults.dropped, 5);
        // Crashed nodes count as halted, so the run still completes.
        assert!(out.completed);
    }

    #[test]
    fn crash_events_traced() {
        use crate::faults::{CrashStop, FaultSpec};
        use crate::trace::TraceBuffer;
        let g = generators::cycle(4);
        let buf = TraceBuffer::new(100);
        Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .collector(buf.clone())
            .faults(FaultSpec::CrashStop(CrashStop::at(vec![(2, 1)])))
            .run(|_| flood())
            .unwrap();
        let crashes = buf.events_of(TraceKind::Crash);
        assert_eq!(crashes.len(), 1);
        assert_eq!((crashes[0].from, crashes[0].round), (2, 1));
        assert!(!buf.events_of(TraceKind::Send).is_empty());
    }

    #[test]
    fn link_failure_blocks_exactly_that_edge() {
        use crate::faults::{FaultSpec, LinkFailure};
        // Path 0-1-2 with ids 0 < 1 < 2. Fault-free, nodes 0 and 1 reject.
        // Severing {1, 2} in round 1 hides id 2 from node 1, so only node 0
        // (which still hears id 1) rejects.
        let g = generators::path(3);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::LinkFailure(LinkFailure::single(1, 2, 1, 1)))
            .run(|_| flood())
            .unwrap();
        assert_eq!(out.decisions[0], Decision::Reject);
        assert_eq!(out.decisions[1], Decision::Accept);
        assert_eq!(out.decisions[2], Decision::Accept);
        // Both directions of the severed edge dropped.
        assert_eq!(out.faults.dropped, 2);
        assert_eq!(out.faults.delivered, 2);
    }

    /// Node 0 broadcasts a fixed 16-bit pattern; every other node rejects
    /// iff it receives something different (a corruption detector).
    struct PatternCheck {
        pattern: u64,
        corrupted: bool,
        done: bool,
    }

    impl NodeAlgorithm for PatternCheck {
        type Msg = crate::message::BitString;

        fn init(
            &mut self,
            ctx: &NodeContext,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<crate::message::BitString> {
            if ctx.index == 0 {
                self.done = true;
                vec![Outgoing::Broadcast(crate::message::BitString::from_uint(
                    self.pattern,
                    16,
                ))]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext,
            inbox: &Inbox<crate::message::BitString>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<crate::message::BitString> {
            for (_, m) in inbox {
                if m.to_uint() != self.pattern {
                    self.corrupted = true;
                }
            }
            self.done = true;
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            if self.corrupted {
                Decision::Reject
            } else {
                Decision::Accept
            }
        }
    }

    #[test]
    fn bit_flip_corrupts_bitstring_payloads() {
        use crate::faults::FaultSpec;
        let g = generators::star(4); // node 0 center, 4 leaves
        let mk = || PatternCheck {
            pattern: 0xA5A5,
            corrupted: false,
            done: false,
        };
        let clean = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| mk())
            .unwrap();
        assert!(clean.network_accepts());
        assert_eq!(clean.faults.corrupted, 0);

        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .seed(11)
            .faults(FaultSpec::BitFlip(1.0))
            .run(|_| mk())
            .unwrap();
        // Every delivery corrupted: all four leaves see a damaged pattern.
        assert_eq!(out.faults.corrupted, 4);
        assert!(out.network_rejects());
    }

    #[test]
    fn fault_runs_reproducible_from_seed() {
        use crate::faults::{CrashStop, FaultSpec};
        let g = generators::clique(9);
        // Crashes land in round 1 (the flood only runs one real round).
        let spec = FaultSpec::Stack(vec![
            FaultSpec::GilbertElliott(0.2, 0.3, 0.05, 0.9),
            FaultSpec::CrashStop(CrashStop::random(2, 1)),
            FaultSpec::BitFlip(0.1),
        ]);
        let run = |seed: u64| {
            Simulation::on(&g)
                .bandwidth(Bandwidth::Bits(64))
                .seed(seed)
                .faults(spec.clone())
                .run(|_| flood())
                .unwrap()
        };
        let (a, b) = (run(13), run(13));
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.stats.total_bits, b.stats.total_bits);
        assert_eq!(a.faults.crashed_nodes().len(), 2);
        // A different seed crashes (almost surely) different nodes or at
        // least produces a different delivery history.
        let c = run(14);
        assert!(
            c.faults != a.faults,
            "distinct seeds should give distinct fault histories"
        );
    }

    #[test]
    fn per_round_fault_series_match_rounds() {
        use crate::faults::FaultSpec;
        let g = generators::clique(6);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .seed(3)
            .faults(FaultSpec::IndependentLoss(0.4))
            .run(|_| flood())
            .unwrap();
        assert_eq!(out.faults.dropped_per_round.len(), out.stats.rounds);
        assert_eq!(out.faults.corrupted_per_round.len(), out.stats.rounds);
        assert_eq!(
            out.faults.dropped_per_round.iter().sum::<u64>(),
            out.faults.dropped
        );
        assert_eq!(
            out.faults.delivered + out.faults.dropped,
            out.stats.total_messages
        );
    }

    #[test]
    fn round_events_bracket_every_round() {
        use crate::obsv::JsonlTrace;
        let g = generators::cycle(4);
        let trace = std::sync::Arc::new(JsonlTrace::new(1 << 12));
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .collector_arc(trace.clone())
            .run(|_| flood())
            .unwrap();
        let dump = trace.to_jsonl();
        let starts = dump.matches(r#""ev":"round_start""#).count();
        let ends = dump.matches(r#""ev":"round_end""#).count();
        assert_eq!(starts, out.stats.rounds);
        assert_eq!(ends, out.stats.rounds);
        // No compute spans unless someone opted in.
        assert_eq!(dump.matches(r#""ev":"compute""#).count(), 0);
    }

    #[test]
    fn compute_spans_emitted_when_requested() {
        use crate::obsv::ComputeTimer;
        let g = generators::cycle(6);
        let timer = std::sync::Arc::new(ComputeTimer::new());
        Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .collector_arc(timer.clone())
            .run(|_| flood())
            .unwrap();
        // 6 init spans + 6 round-1 spans (every node computes once).
        assert_eq!(timer.take().count(), 12);
    }
}
