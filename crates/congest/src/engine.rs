//! The synchronous round engine.
//!
//! Drives a [`NodeAlgorithm`] over a topology, enforcing the CONGEST
//! bandwidth bound per directed edge per round and recording exact traffic
//! statistics. Node steps within a round are independent, so the engine
//! evaluates them with rayon (data-parallel, race-free — the pattern the
//! hpc guides recommend).
//!
//! Instrumentation flows through the [`Collector`] trait
//! (see [`crate::obsv`]): with no collector installed, no event values are
//! even built. All events are recorded from sequential code in node order,
//! so a collector observes an identical stream at any thread count. With a
//! collector installed the engine also assigns every message a run-unique
//! `msg_id` (in node order, at accounting time) and stamps each send with
//! the ids delivered to its sender one round earlier — the causal
//! provenance that makes the trace a happens-before DAG (see
//! [`crate::obsv::collect`]). An optional [`Profiler`] adds wall-clock
//! spans around the accounting/staging/delivery/compute sections; with
//! none installed each section costs one branch per round.
//!
//! The `run`/`run_nodes` entry points are deprecated in favor of the
//! [`Simulation`](crate::Simulation) builder, which fronts this engine, the
//! reliable transport, and the clique backend behind one API.

use crate::faults::{Delivery, DeliveryCtx, FaultReport, FaultSpec};
use crate::message::{BitSize, Payload};
use crate::node::{Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing};
use crate::obsv::collect::{span_nanos, span_start, Collector, SimEvent};
use crate::obsv::profile::{prof_record, prof_start, Profiler, Section};
use crate::stats::RunStats;
use graphlib::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::fmt;
use std::sync::Arc;

/// One round's staged traffic, reused across rounds (the routing arena).
///
/// Unicasts are bucketed by *receiver-side* directed-edge slot with a
/// counting sort into a flat CSR index, so every receiver walks exactly its
/// own incoming messages instead of rescanning whole neighbor outboxes
/// (the old path was `O(deg(v) · |outbox_u|)` per receiver). Broadcast
/// payloads are materialized once behind an `Arc` per sender, so handing
/// them to `deg(u)` receivers is allocation- and copy-free. Every staged
/// message keeps its sender outbox index, letting receivers interleave
/// unicasts and broadcasts in exactly the order the sender produced them —
/// the ordering (and the fault randomness keyed on it) is byte-identical
/// to the old scan.
struct RoundRouter<M> {
    /// Staged unicasts in sender-then-outbox order: `(outbox index, payload)`.
    unicasts: Vec<(u32, M)>,
    /// Receiver-side directed-edge slot of each staged unicast
    /// (`offsets[to] + to's port toward the sender`), parallel to `unicasts`.
    slots: Vec<u32>,
    /// Per-slot bucket start into `order`, valid only when the slot's
    /// epoch stamp is current. Epoch stamping keeps the counting sort
    /// O(staged messages) per round: slots untouched this round are never
    /// visited, not even to be zeroed.
    slot_start: Vec<u32>,
    /// Per-slot bucket length (same validity rule).
    slot_len: Vec<u32>,
    /// Scatter cursor scratch (same validity rule).
    slot_cursor: Vec<u32>,
    /// Round stamp of each slot's bucket descriptor.
    slot_epoch: Vec<u64>,
    /// Slots touched this round, deduplicated in first-touch order —
    /// the counting sort's iteration domain.
    touched_slots: Vec<u32>,
    /// Round stamp per *receiver*: stamped current iff some staged message
    /// is addressed to it, letting delivery skip idle receivers without
    /// scanning their ports.
    active: Vec<u64>,
    /// Current round stamp (bumped once per [`Self::stage`] call).
    epoch: u64,
    /// Indices into `unicasts`, bucketed by receiver slot; the counting
    /// sort is stable, so outbox order is preserved within each bucket.
    order: Vec<u32>,
    /// Per-sender broadcasts: `(outbox index, shared payload)`.
    broadcasts: Vec<Vec<(u32, Arc<M>)>>,
    /// Entries staged this round (unicasts plus broadcasts, counted once
    /// each, not per receiving edge). Zero means the round is all-idle.
    staged: usize,
}

/// A staged message as seen by one receiver during the merge.
enum StagedMsg<'a, M> {
    Unicast(&'a M),
    Broadcast(&'a Arc<M>),
}

impl<M> RoundRouter<M> {
    fn new(n: usize, directed_edges: usize) -> Self {
        RoundRouter {
            unicasts: Vec::new(),
            slots: Vec::new(),
            slot_start: vec![0; directed_edges],
            slot_len: vec![0; directed_edges],
            slot_cursor: vec![0; directed_edges],
            slot_epoch: vec![0; directed_edges],
            touched_slots: Vec::new(),
            active: vec![0; n],
            epoch: 0,
            order: Vec::new(),
            broadcasts: (0..n).map(|_| Vec::new()).collect(),
            staged: 0,
        }
    }

    /// Stages one round of sends, draining the outboxes in place, and
    /// builds the per-slot unicast index. Sequential and allocation-free in
    /// steady state (the buffers keep their capacity between rounds).
    fn stage(
        &mut self,
        g: &Graph,
        offsets: &[usize],
        rev_port: &[u32],
        outboxes: &mut [Outbox<M>],
    ) {
        self.epoch += 1;
        let epoch = self.epoch;
        self.unicasts.clear();
        self.slots.clear();
        self.staged = 0;
        for (u, outbox) in outboxes.iter_mut().enumerate() {
            let bcast = &mut self.broadcasts[u];
            bcast.clear();
            for (idx, out) in outbox.drain(..).enumerate() {
                match out {
                    Outgoing::Unicast(p, m) => {
                        // Ports were validated during bandwidth accounting.
                        let to = g.neighbors(u)[p] as usize;
                        let to_port = rev_port[offsets[u] + p] as usize;
                        self.unicasts.push((idx as u32, m));
                        self.slots.push((offsets[to] + to_port) as u32);
                        self.active[to] = epoch;
                    }
                    Outgoing::Broadcast(m) => bcast.push((idx as u32, Arc::new(m))),
                }
            }
            if !bcast.is_empty() {
                for &v in g.neighbors(u) {
                    self.active[v as usize] = epoch;
                }
            }
            self.staged += bcast.len();
        }
        self.staged += self.unicasts.len();
        // Counting sort over only the slots actually hit this round:
        // bucket sizes on first touch, then one contiguous region per
        // touched slot, then a stable scatter. Everything is O(staged
        // unicasts) — a round with a handful of messages never pays for
        // the graph's edge count.
        self.touched_slots.clear();
        for &s in &self.slots {
            let s = s as usize;
            if self.slot_epoch[s] != epoch {
                self.slot_epoch[s] = epoch;
                self.slot_len[s] = 0;
                self.touched_slots.push(s as u32);
            }
            self.slot_len[s] += 1;
        }
        let mut cum = 0u32;
        for &s in &self.touched_slots {
            let s = s as usize;
            self.slot_start[s] = cum;
            self.slot_cursor[s] = cum;
            cum += self.slot_len[s];
        }
        self.order.resize(self.slots.len(), 0);
        for (i, &s) in self.slots.iter().enumerate() {
            let c = &mut self.slot_cursor[s as usize];
            self.order[*c as usize] = i as u32;
            *c += 1;
        }
    }

    /// Whether any staged message is addressed to receiver `v` this round.
    /// Idle receivers can skip their delivery scan entirely.
    #[inline]
    fn receiver_active(&self, v: usize) -> bool {
        self.active[v] == self.epoch
    }

    /// The staged unicasts addressed to directed-edge slot `slot`, as
    /// indices into `unicasts`, in sender outbox order.
    #[inline]
    fn unicasts_for(&self, slot: usize) -> &[u32] {
        if self.slot_epoch[slot] != self.epoch {
            return &[];
        }
        let start = self.slot_start[slot] as usize;
        &self.order[start..start + self.slot_len[slot] as usize]
    }
}

/// Per-receiver delivery scratch, allocated once per run and reused every
/// round (counters reset, the event buffer keeps its capacity).
#[derive(Default)]
struct DeliveryTally {
    delivered: u64,
    dropped: u64,
    corrupted: u64,
    events: Vec<SimEvent>,
    /// Ids of the messages that reached this receiver's inbox this round
    /// (corrupted deliveries included — the payload still arrived). Only
    /// filled when tracing; becomes the receiver's `deps` set next round.
    ids: Vec<u64>,
}

/// Per-edge-per-round bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bandwidth {
    /// CONGEST with `B` bits per directed edge per round.
    Bits(usize),
    /// The LOCAL model: unbounded messages (traffic is still counted).
    Unbounded,
}

impl Bandwidth {
    /// The standard `B = Θ(log n)` setting (exactly `ceil(log2 n)`, min 1).
    pub fn log_of(n: usize) -> Bandwidth {
        Bandwidth::Bits(crate::message::bits_for_domain(n.max(2)))
    }
}

/// Errors the engine can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// A node tried to push more bits through an edge than the bandwidth
    /// allows in one round.
    BandwidthExceeded {
        /// Sending node index.
        node: usize,
        /// Port the violation happened on.
        port: usize,
        /// Bits the node attempted to send this round on that port.
        attempted: usize,
        /// The configured limit.
        limit: usize,
        /// The round of the violation.
        round: usize,
    },
    /// A node addressed a port it does not have.
    InvalidPort {
        /// Sending node index.
        node: usize,
        /// The bad port.
        port: usize,
        /// The node's degree.
        degree: usize,
    },
    /// A node unicast a message while the engine runs in broadcast-CONGEST
    /// mode (the model variant of \[DKO14\] where every node must send the
    /// same message on all of its edges).
    UnicastForbidden {
        /// Sending node index.
        node: usize,
        /// The round of the violation.
        round: usize,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::BandwidthExceeded {
                node,
                port,
                attempted,
                limit,
                round,
            } => write!(
                f,
                "bandwidth exceeded: node {node} port {port} sent {attempted} bits \
                 (limit {limit}) in round {round}"
            ),
            CongestError::InvalidPort { node, port, degree } => {
                write!(f, "invalid port {port} on node {node} (degree {degree})")
            }
            CongestError::UnicastForbidden { node, round } => {
                write!(
                    f,
                    "node {node} unicast in round {round} under broadcast-CONGEST"
                )
            }
        }
    }
}

impl std::error::Error for CongestError {}

/// Graceful-degradation verdict for a run that did not go perfectly:
/// the round-budget watchdog tripped (`max_rounds` hit), the transport
/// gave frames up, or nodes crashed. The decision is still usable — it
/// covers the *surviving* subgraph and stays loss-sound (faults only
/// remove information) — but the caller should know how much of the
/// network it speaks for.
#[derive(Debug, Clone, PartialEq)]
pub struct Degraded {
    /// Nodes that never crashed, in index order.
    pub surviving: Vec<usize>,
    /// Rough quality estimate in `[0, 1]`: the surviving-node fraction
    /// times the fraction of fault-layer deliveries that succeeded.
    pub confidence: f64,
}

impl Degraded {
    /// Whether a strict majority of the `n` nodes survived — the quorum
    /// under which a surviving-subgraph decision is conventionally
    /// considered representative.
    pub fn has_quorum(&self, n: usize) -> bool {
        2 * self.surviving.len() > n
    }
}

/// Result of a completed (or round-limited) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-node decisions at the end of the run.
    pub decisions: Vec<Decision>,
    /// Traffic and round statistics.
    pub stats: RunStats,
    /// Whether every live node halted before the round limit (crashed nodes
    /// count as halted — they can never halt voluntarily).
    pub completed: bool,
    /// What the fault layer did to this run (all-zeros for fault-free runs).
    pub faults: FaultReport,
    /// `Some` when the run degraded instead of completing cleanly (round
    /// budget exhausted, transport give-ups, or crashed nodes); the
    /// decisions then cover the surviving subgraph only.
    pub degraded: Option<Degraded>,
}

impl RunOutcome {
    /// Whether this run degraded (see [`Degraded`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// (Re-)derives the degradation verdict from the current fault report
    /// and completion flag, for a network of `n` nodes. Called by the
    /// engine at the end of every run and again by the reliable transport
    /// after folding its give-up tallies in.
    pub(crate) fn assess_degradation(&mut self, n: usize) {
        let crashed = self.faults.crashed_nodes();
        if self.completed && crashed.is_empty() && self.faults.given_up == 0 {
            self.degraded = None;
            return;
        }
        let surviving: Vec<usize> = (0..n)
            .filter(|v| crashed.binary_search(v).is_err())
            .collect();
        let surviving_frac = if n == 0 {
            1.0
        } else {
            surviving.len() as f64 / n as f64
        };
        let attempts = self.faults.delivered + self.faults.dropped;
        let delivered_frac = if attempts == 0 {
            1.0
        } else {
            self.faults.delivered as f64 / attempts as f64
        };
        self.degraded = Some(Degraded {
            surviving,
            confidence: surviving_frac * delivered_frac,
        });
    }
    /// Definition 1 semantics: the network "detects H" iff some node rejects.
    pub fn network_rejects(&self) -> bool {
        self.decisions.contains(&Decision::Reject)
    }

    /// Convenience inverse of [`Self::network_rejects`].
    pub fn network_accepts(&self) -> bool {
        !self.network_rejects()
    }

    /// Whether the run was cut off by the engine's round limit rather than
    /// halting cleanly — the explicit negation of [`Self::completed`], so
    /// callers distinguish "all nodes halted" from "the simulation gave up".
    pub fn hit_round_limit(&self) -> bool {
        !self.completed
    }

    /// Whether some node that never crashed rejects. Under crash faults
    /// this is the meaningful detection signal: a crashed node's last
    /// decision is frozen pre-crash state, not an output of the protocol.
    pub fn surviving_node_rejects(&self) -> bool {
        let crashed = self.faults.crashed_nodes();
        self.decisions
            .iter()
            .enumerate()
            .any(|(v, d)| *d == Decision::Reject && crashed.binary_search(&v).is_err())
    }
}

/// Simulator configuration for one topology.
pub struct Engine<'g> {
    topology: &'g Graph,
    ids: Vec<u64>,
    bandwidth: Bandwidth,
    max_rounds: usize,
    seed: u64,
    broadcast_only: bool,
    collector: Option<Arc<dyn Collector>>,
    profiler: Option<Arc<Profiler>>,
    /// Fault configuration applied to every run (see [`crate::faults`]).
    /// Bits are still charged for lost messages (they were sent); only
    /// delivery fails.
    faults: FaultSpec,
}

impl<'g> Engine<'g> {
    /// An engine over `topology` with identifiers `id(v) = v`, bandwidth
    /// `Θ(log n)`, and a generous default round limit.
    pub fn new(topology: &'g Graph) -> Self {
        Engine {
            ids: (0..topology.n() as u64).collect(),
            bandwidth: Bandwidth::log_of(topology.n()),
            max_rounds: 16 * (topology.n() + 2) * (topology.n() + 2),
            seed: 0,
            broadcast_only: false,
            collector: None,
            profiler: None,
            faults: FaultSpec::None,
            topology,
        }
    }

    /// Injects failures: each message delivery is independently lost with
    /// probability `p` (deterministic given the engine seed). Senders are
    /// still charged for the bits. Randomized detectors must stay *sound*
    /// under loss (they can only miss, never hallucinate, a subgraph).
    ///
    /// Sugar for `faults(FaultSpec::IndependentLoss(p))`; existing seeded
    /// runs replay unchanged because the loss hash is keyed identically.
    pub fn loss_rate(self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss rate must be a probability");
        if p == 0.0 {
            self.faults(FaultSpec::None)
        } else {
            self.faults(FaultSpec::IndependentLoss(p))
        }
    }

    /// Installs a fault model (loss, bursty loss, crashes, link outages,
    /// payload corruption, or a stack of them — see [`crate::faults`]).
    /// Each run builds a fresh model from this spec, so repeated runs of the
    /// same engine stay independent and seed-reproducible.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = spec;
        self
    }

    /// Attaches a bounded message trace (see [`crate::trace`]). Sugar for
    /// installing the buffer as the run's [`Collector`].
    pub fn trace(self, buf: crate::trace::TraceBuffer) -> Self {
        self.collector(Arc::new(buf))
    }

    /// Installs a structured-event [`Collector`] (see [`crate::obsv`]).
    /// With none installed, instrumentation costs nothing.
    pub fn collector(mut self, c: Arc<dyn Collector>) -> Self {
        self.collector = Some(c);
        self
    }

    /// The installed collector, for sibling layers (the reliable transport
    /// emits its end-of-run summary through it).
    pub(crate) fn collector_handle(&self) -> Option<&dyn Collector> {
        self.collector.as_deref()
    }

    /// Installs the engine self-profiler (see [`crate::obsv::profile`]).
    /// Off by default; the disabled path is one branch per hot section per
    /// round.
    pub fn profiler(mut self, p: Arc<Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// The installed profiler, for the reliable transport's ARQ spans.
    pub(crate) fn profiler_handle(&self) -> Option<&Arc<Profiler>> {
        self.profiler.as_ref()
    }

    /// The engine seed, for sibling layers deriving deterministic
    /// randomness (the reliable transport's retransmission jitter).
    pub(crate) fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The per-edge-per-round bit budget, if bounded — what the reliable
    /// transport's batched send pass packs against.
    pub(crate) fn bandwidth_limit(&self) -> Option<usize> {
        match self.bandwidth {
            Bandwidth::Bits(b) => Some(b),
            Bandwidth::Unbounded => None,
        }
    }

    /// Switches to broadcast-CONGEST (the \[DKO14\] variant the paper's
    /// related-work section discusses): nodes must send the same message on
    /// all edges, so any `Outgoing::Unicast` is rejected.
    pub fn broadcast_only(mut self, on: bool) -> Self {
        self.broadcast_only = on;
        self
    }

    /// Sets the per-edge bandwidth.
    pub fn bandwidth(mut self, b: Bandwidth) -> Self {
        self.bandwidth = b;
        self
    }

    /// Sets the identifier assignment (must be `n` values).
    pub fn with_ids(mut self, ids: Vec<u64>) -> Self {
        assert_eq!(ids.len(), self.topology.n());
        self.ids = ids;
        self
    }

    /// Caps the number of communication rounds.
    pub fn max_rounds(mut self, r: usize) -> Self {
        self.max_rounds = r;
        self
    }

    /// Seeds all node RNGs (each node gets an independent stream derived
    /// from this seed and its index).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Runs `make(v)`-constructed nodes to completion.
    #[deprecated(note = "use the `congest::Simulation` builder instead")]
    pub fn run<A, F>(&self, make: F) -> Result<RunOutcome, CongestError>
    where
        A: NodeAlgorithm,
        F: Fn(usize) -> A + Sync,
    {
        self.run_nodes_impl(make).map(|(outcome, _)| outcome)
    }

    /// Like [`Self::run`], but also hands back the final node states — for
    /// algorithms whose output is richer than accept/reject (e.g. listing
    /// witnesses).
    #[deprecated(note = "use `congest::Simulation::run_with_nodes` instead")]
    pub fn run_nodes<A, F>(&self, make: F) -> Result<(RunOutcome, Vec<A>), CongestError>
    where
        A: NodeAlgorithm,
        F: Fn(usize) -> A + Sync,
    {
        self.run_nodes_impl(make)
    }

    /// The actual round loop behind the public entry points (deprecated
    /// shims above, [`Simulation`](crate::Simulation) for new code).
    pub(crate) fn run_nodes_impl<A, F>(&self, make: F) -> Result<(RunOutcome, Vec<A>), CongestError>
    where
        A: NodeAlgorithm,
        F: Fn(usize) -> A + Sync,
    {
        let g = self.topology;
        let n = g.n();
        let mut stats = RunStats::new(g);
        let collector = self.collector.as_deref();
        let tracing = collector.is_some();
        let timing = collector.is_some_and(Collector::wants_compute_spans);
        let rec = |ev: SimEvent| {
            if let Some(c) = collector {
                c.record(&ev);
            }
        };

        // Reverse-port table: rev_port[slot(v, p)] is the port of v in the
        // adjacency list of v's p-th neighbor. Needed to route unicasts.
        let rev_port: Vec<u32> = (0..n)
            .into_par_iter()
            .flat_map_iter(|v| {
                g.neighbors(v).iter().map(move |&u| {
                    g.neighbors(u as usize)
                        .binary_search(&(v as u32))
                        .expect("undirected adjacency must be symmetric") as u32
                })
            })
            .collect();

        let mut contexts: Vec<NodeContext> = (0..n)
            .map(|v| NodeContext {
                index: v,
                id: self.ids[v],
                neighbor_ids: g
                    .neighbors(v)
                    .iter()
                    .map(|&u| self.ids[u as usize])
                    .collect(),
                n,
                round: 0,
            })
            .collect();

        let mut rngs: Vec<ChaCha8Rng> = (0..n)
            .map(|v| {
                let mut seeder = ChaCha8Rng::seed_from_u64(self.seed);
                let salt: u64 = seeder.gen::<u64>() ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15);
                ChaCha8Rng::seed_from_u64(salt)
            })
            .collect();

        let mut nodes: Vec<A> = (0..n).map(&make).collect();

        // Fresh fault model per run: stateful models (Markov chains, crash
        // schedules) re-derive everything from (topology, seed).
        let mut model = self.faults.build();
        model.reset(g, self.seed);
        let mut report = FaultReport::default();
        // crashed[v] = round v crashed at; crash-stop, so never cleared.
        let mut crashed: Vec<Option<usize>> = vec![None; n];

        let prof = self.profiler.as_deref();

        // Run header so the trace is self-describing (the invariant
        // checker reads the bandwidth bound and node count from it).
        if tracing {
            rec(SimEvent::Meta {
                n,
                bandwidth_bits: match self.bandwidth {
                    Bandwidth::Bits(b) => b,
                    Bandwidth::Unbounded => 0,
                },
                seed: self.seed,
            });
        }

        // Round 0: init. Compute spans (wall-clock, so inherently
        // non-deterministic) are measured in the parallel section but
        // emitted afterwards in node order, and only when a collector
        // opted in.
        let t_init = prof_start(prof);
        let init: Vec<(Outbox<A::Msg>, u64)> = nodes
            .par_iter_mut()
            .zip(contexts.par_iter())
            .zip(rngs.par_iter_mut())
            .map(|((node, ctx), rng)| {
                let t = span_start(timing);
                let out = node.init(ctx, rng);
                (out, span_nanos(t))
            })
            .collect();
        prof_record(prof, Section::Compute, t_init);
        if timing {
            for (v, (_, nanos)) in init.iter().enumerate() {
                rec(SimEvent::NodeCompute {
                    round: 0,
                    node: v,
                    nanos: *nanos,
                });
            }
        }
        let mut outboxes: Vec<Outbox<A::Msg>> = init.into_iter().map(|(o, _)| o).collect();

        let mut completed = nodes.iter().all(|nd| nd.halted());

        // Per-node inboxes, allocated once and reused (cleared in place)
        // every round, so steady-state delivery does not allocate. The
        // router, per-receiver tallies, per-node compute-span slots, and
        // the accounting scratch are likewise per-run buffers.
        let mut inboxes: Vec<Inbox<A::Msg>> = (0..n).map(|_| Vec::new()).collect();
        let mut router: RoundRouter<A::Msg> = RoundRouter::new(n, stats.offsets[n]);
        let mut tallies: Vec<DeliveryTally> = (0..n).map(|_| DeliveryTally::default()).collect();
        let mut step_nanos: Vec<u64> = vec![u64::MAX; n];
        let mut port_bits_scratch: Vec<usize> = Vec::new();

        // Causal provenance (tracing only): every outbox entry gets a
        // run-unique id at accounting time, in node order, and
        // `prev_delivered[v]` holds the ids that reached v's inbox last
        // round — the `deps` set stamped on v's sends this round.
        let mut next_msg_id: u64 = 0;
        let mut id_base: Vec<u64> = Vec::new();
        let mut prev_delivered: Vec<Vec<u64>> = if tracing {
            (0..n).map(|_| Vec::new()).collect()
        } else {
            Vec::new()
        };

        for round in 1..=self.max_rounds {
            if completed && outboxes.iter().all(|o| o.is_empty()) {
                break;
            }
            rec(SimEvent::RoundStart { round });

            // Single-threaded fault bookkeeping: advance per-round model
            // state, then apply this round's crashes. A node crashing in
            // round r sends nothing from round r on — its pending outbox
            // (produced at the end of round r-1) is discarded before
            // accounting, so crashed nodes are charged no bits.
            model.begin_round(round);
            for (v, slot) in crashed.iter_mut().enumerate() {
                if slot.is_none() && model.crashed(v, round, self.seed) {
                    *slot = Some(round);
                    outboxes[v].clear();
                    report.crashed.push((v, round));
                    rec(SimEvent::Crash { round, node: v });
                }
            }

            // Assign this round's message ids: one per outbox entry (a
            // broadcast gets one id even though it costs every port), in
            // node order, so the id sequence is schedule-independent.
            if tracing {
                id_base.clear();
                let mut next = next_msg_id;
                for ob in &outboxes {
                    id_base.push(next);
                    next += ob.len() as u64;
                }
                next_msg_id = next;
            }

            // Account traffic + enforce bandwidth for this round's sends.
            let before_bits = stats.total_bits;
            let before_msgs = stats.total_messages;
            let t_acct = prof_start(prof);
            self.account_round(
                &mut stats,
                &outboxes,
                round,
                collector,
                &mut port_bits_scratch,
                if tracing {
                    Some((&id_base[..], &prev_delivered[..]))
                } else {
                    None
                },
            )?;
            prof_record(prof, Section::Account, t_acct);
            let round_bits = stats.total_bits - before_bits;
            let round_msgs = stats.total_messages - before_msgs;
            stats.per_round_bits.push(round_bits);
            stats.per_round_messages.push(round_msgs);
            stats.rounds = round;

            // Stage this round's sends into the routing arena, draining the
            // outboxes: unicast payloads move (no copy) and get bucketed by
            // receiver slot; each broadcast payload is materialized once
            // behind an `Arc` instead of being cloned per receiving edge.
            let offsets = &stats.offsets;
            let t_stage = prof_start(prof);
            router.stage(g, offsets, &rev_port, &mut outboxes);
            prof_record(prof, Section::Stage, t_stage);

            // Build inboxes: node v merges, port by port, its unicast
            // bucket with the sending neighbor's broadcast list — O(its
            // own incoming messages) work — while the fault model decides
            // the fate of every delivery. Fault randomness is a
            // deterministic function of the engine seed, so the run stays
            // reproducible and thread-safe; per-receiver fault counts and
            // structured events are reduced *after* the parallel section,
            // in node order, so any collector sees the same stream at any
            // thread count.
            let (mut round_dropped, mut round_corrupted) = (0u64, 0u64);
            let t_deliver = prof_start(prof);
            if router.staged == 0 {
                // All-idle round (nodes computing, nothing in flight):
                // skip the delivery pass entirely. Nothing was delivered,
                // so next round's sends have empty deps sets.
                for inbox in inboxes.iter_mut() {
                    inbox.clear();
                }
                for prev in prev_delivered.iter_mut() {
                    prev.clear();
                }
            } else {
                let router = &router;
                let id_base = &id_base;
                (0..n)
                    .into_par_iter()
                    .zip(inboxes.par_iter_mut())
                    .zip(tallies.par_iter_mut())
                    .for_each(|((v, inbox), tally)| {
                        inbox.clear();
                        tally.delivered = 0;
                        tally.dropped = 0;
                        tally.corrupted = 0;
                        tally.events.clear();
                        tally.ids.clear();
                        if !router.receiver_active(v) {
                            // No staged message is addressed here: skip the
                            // port scan (most receivers, on sparse-traffic
                            // rounds).
                            return;
                        }
                        let receiver_down = crashed[v].is_some();
                        for (p, &u) in g.neighbors(v).iter().enumerate() {
                            let u = u as usize;
                            let unicasts = router.unicasts_for(offsets[v] + p);
                            let bcasts: &[(u32, Arc<A::Msg>)] = &router.broadcasts[u];
                            if unicasts.is_empty() && bcasts.is_empty() {
                                continue;
                            }
                            let their_port = rev_port[offsets[v] + p] as usize;
                            let (mut i, mut j) = (0usize, 0usize);
                            while i < unicasts.len() || j < bcasts.len() {
                                // Merge by sender outbox index: v sees u's
                                // sends in exactly the order u staged them,
                                // as the old full-outbox scan did.
                                let from_uni = match (unicasts.get(i), bcasts.get(j)) {
                                    (Some(&ui), Some(&(bidx, _))) => {
                                        router.unicasts[ui as usize].0 < bidx
                                    }
                                    (Some(_), None) => true,
                                    _ => false,
                                };
                                let (idx, staged) = if from_uni {
                                    let (idx, ref m) = router.unicasts[unicasts[i] as usize];
                                    i += 1;
                                    (idx, StagedMsg::Unicast(m))
                                } else {
                                    let (idx, ref m) = bcasts[j];
                                    j += 1;
                                    (idx, StagedMsg::Broadcast(m))
                                };
                                let m: &A::Msg = match staged {
                                    StagedMsg::Unicast(m) => m,
                                    StagedMsg::Broadcast(m) => m.as_ref(),
                                };
                                // The id the accounting pass assigned this
                                // outbox entry (only meaningful when
                                // tracing; `id_base` is empty otherwise).
                                let msg_id = if tracing { id_base[u] + idx as u64 } else { 0 };
                                // Messages to a crashed node are lost.
                                if receiver_down {
                                    tally.dropped += 1;
                                    continue;
                                }
                                let ctx = DeliveryCtx {
                                    seed: self.seed,
                                    round,
                                    from: u,
                                    to: v,
                                    to_port: p,
                                    link_slot: offsets[u] + their_port,
                                    msg_index: idx as usize,
                                    bits: m.bit_size(),
                                };
                                match model.delivery(&ctx) {
                                    Delivery::Deliver => {
                                        // Zero-copy for broadcasts: share
                                        // the Arc'd payload. Unicasts cost
                                        // the one clone they always did,
                                        // never one per edge.
                                        let payload = match staged {
                                            StagedMsg::Unicast(m) => Payload::Owned(m.clone()),
                                            StagedMsg::Broadcast(m) => {
                                                Payload::Shared(Arc::clone(m))
                                            }
                                        };
                                        inbox.push((p, payload));
                                        tally.delivered += 1;
                                        if tracing {
                                            tally.ids.push(msg_id);
                                            tally.events.push(SimEvent::Deliver {
                                                round,
                                                from: u,
                                                to: v,
                                                port: p,
                                                bits: ctx.bits,
                                                msg_id,
                                            });
                                        }
                                    }
                                    Delivery::Drop => {
                                        tally.dropped += 1;
                                        if tracing {
                                            tally.events.push(SimEvent::Drop {
                                                round,
                                                from: u,
                                                to: v,
                                                port: p,
                                                bits: ctx.bits,
                                                msg_id,
                                            });
                                        }
                                    }
                                    Delivery::Corrupt(bit) => {
                                        // The corrupt path is the one place
                                        // a fault mutates bytes, so only
                                        // here does a broadcast payload get
                                        // deep-copied.
                                        let mut damaged = m.clone();
                                        if damaged.corrupt_bit(bit) {
                                            tally.corrupted += 1;
                                            if tracing {
                                                tally.events.push(SimEvent::Corrupt {
                                                    round,
                                                    from: u,
                                                    to: v,
                                                    port: p,
                                                    bits: ctx.bits,
                                                    msg_id,
                                                });
                                            }
                                        } else {
                                            // Payload has no materialized
                                            // wire bits to flip — delivered
                                            // intact.
                                            tally.delivered += 1;
                                            if tracing {
                                                tally.events.push(SimEvent::Deliver {
                                                    round,
                                                    from: u,
                                                    to: v,
                                                    port: p,
                                                    bits: ctx.bits,
                                                    msg_id,
                                                });
                                            }
                                        }
                                        // Either way the payload reached
                                        // the algorithm, so it enters the
                                        // receiver's causal deps.
                                        if tracing {
                                            tally.ids.push(msg_id);
                                        }
                                        inbox.push((p, Payload::Owned(damaged)));
                                    }
                                }
                            }
                        }
                    });

                for (v, tally) in tallies.iter_mut().enumerate() {
                    report.delivered += tally.delivered;
                    round_dropped += tally.dropped;
                    round_corrupted += tally.corrupted;
                    for ev in tally.events.drain(..) {
                        rec(ev);
                    }
                    if tracing {
                        // This round's deliveries become v's deps next
                        // round (the old vec is cleared at next use).
                        std::mem::swap(&mut prev_delivered[v], &mut tally.ids);
                    }
                }
            }
            prof_record(prof, Section::Deliver, t_deliver);
            report.dropped += round_dropped;
            report.corrupted += round_corrupted;
            report.dropped_per_round.push(round_dropped);
            report.corrupted_per_round.push(round_corrupted);

            // Step all live (non-halted, non-crashed) nodes, writing each
            // node's new outbox in place (staging drained the old ones, so
            // no per-round collect is needed). The shared context is
            // updated in place (`round` is its only per-round field)
            // instead of being cloned per node per round.
            let t_step = prof_start(prof);
            nodes
                .par_iter_mut()
                .zip(outboxes.par_iter_mut())
                .zip(contexts.par_iter_mut())
                .zip(rngs.par_iter_mut())
                .zip(inboxes.par_iter())
                .zip(crashed.par_iter())
                .zip(step_nanos.par_iter_mut())
                .for_each(|((((((node, outbox), ctx), rng), inbox), down), nanos)| {
                    if node.halted() || down.is_some() {
                        *nanos = u64::MAX;
                    } else {
                        ctx.round = round;
                        let t = span_start(timing);
                        *outbox = node.on_round(ctx, inbox, rng);
                        *nanos = if timing { span_nanos(t) } else { u64::MAX };
                    }
                });
            prof_record(prof, Section::Compute, t_step);
            if timing {
                for (v, &nanos) in step_nanos.iter().enumerate() {
                    if nanos != u64::MAX {
                        rec(SimEvent::NodeCompute {
                            round,
                            node: v,
                            nanos,
                        });
                    }
                }
            }

            rec(SimEvent::RoundEnd {
                round,
                bits: round_bits,
                messages: round_msgs,
                dropped: round_dropped,
                corrupted: round_corrupted,
            });

            completed = nodes
                .iter()
                .zip(crashed.iter())
                .all(|(nd, down)| nd.halted() || down.is_some());
        }

        let mut outcome = RunOutcome {
            decisions: nodes.iter().map(|nd| nd.decision()).collect(),
            stats,
            completed,
            faults: report,
            degraded: None,
        };
        outcome.assess_degradation(n);
        Ok((outcome, nodes))
    }

    /// Sums per-port bits for the round, updates stats, enforces the limit.
    /// `port_bits` is caller-owned scratch so the per-sender tally does not
    /// allocate every round. `provenance` (present iff a collector is) is
    /// `(id_base, prev_delivered)`: the first message id of each sender's
    /// outbox this round, and the ids delivered to each node last round.
    fn account_round<M: BitSize>(
        &self,
        stats: &mut RunStats,
        outboxes: &[Outbox<M>],
        round: usize,
        collector: Option<&dyn Collector>,
        port_bits: &mut Vec<usize>,
        provenance: Option<(&[u64], &[Vec<u64>])>,
    ) -> Result<(), CongestError> {
        let g = self.topology;
        // Split field borrows: `offsets` is read while the counters are
        // written, so no clone of the offset table is needed.
        let RunStats {
            offsets,
            directed_edge_bits,
            total_bits,
            total_messages,
            max_edge_round_bits,
            ..
        } = stats;
        for (v, outbox) in outboxes.iter().enumerate() {
            if outbox.is_empty() {
                continue;
            }
            let deg = g.degree(v);
            port_bits.clear();
            port_bits.resize(deg, 0);
            let mut msgs = 0u64;
            // All of v's sends this round read the same inbox, so they
            // share one deps set (one Arc per active sender per round).
            let sender_prov: Option<(u64, Arc<[u64]>)> =
                provenance.map(|(base, prev)| (base[v], Arc::from(prev[v].as_slice())));
            for (idx, out) in outbox.iter().enumerate() {
                match out {
                    Outgoing::Unicast(p, m) => {
                        if self.broadcast_only {
                            return Err(CongestError::UnicastForbidden { node: v, round });
                        }
                        if *p >= deg {
                            return Err(CongestError::InvalidPort {
                                node: v,
                                port: *p,
                                degree: deg,
                            });
                        }
                        port_bits[*p] += m.bit_size();
                        msgs += 1;
                        if let (Some(c), Some((base, deps))) = (collector, &sender_prov) {
                            c.record(&SimEvent::Send {
                                round,
                                from: v,
                                port: *p,
                                bits: m.bit_size(),
                                msg_id: base + idx as u64,
                                deps: Arc::clone(deps),
                            });
                        }
                    }
                    Outgoing::Broadcast(m) => {
                        let sz = m.bit_size();
                        for pb in port_bits.iter_mut() {
                            *pb += sz;
                        }
                        msgs += deg as u64;
                        if let (Some(c), Some((base, deps))) = (collector, &sender_prov) {
                            c.record(&SimEvent::Send {
                                round,
                                from: v,
                                port: usize::MAX,
                                bits: sz,
                                msg_id: base + idx as u64,
                                deps: Arc::clone(deps),
                            });
                        }
                    }
                }
            }
            for (p, &bits) in port_bits.iter().enumerate() {
                if let Bandwidth::Bits(limit) = self.bandwidth {
                    if bits > limit {
                        return Err(CongestError::BandwidthExceeded {
                            node: v,
                            port: p,
                            attempted: bits,
                            limit,
                            round,
                        });
                    }
                }
                directed_edge_bits[offsets[v] + p] += bits as u64;
                *total_bits += bits as u64;
                *max_edge_round_bits = (*max_edge_round_bits).max(bits);
            }
            *total_messages += msgs;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::simulation::Simulation;
    use crate::trace::TraceKind;
    use graphlib::generators;

    /// Flood: every node broadcasts its id once; after one round, each node
    /// has heard all neighbor ids and halts, rejecting iff some neighbor id
    /// is larger than its own.
    struct Flood {
        sent: bool,
        done: bool,
        reject: bool,
    }

    impl NodeAlgorithm for Flood {
        type Msg = u64;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<u64> {
            self.sent = true;
            if ctx.degree() == 0 {
                self.done = true;
                return Vec::new();
            }
            vec![Outgoing::Broadcast(ctx.id)]
        }

        fn on_round(
            &mut self,
            ctx: &NodeContext,
            inbox: &Inbox<u64>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<u64> {
            self.reject = inbox.iter().any(|(_, id)| **id > ctx.id);
            self.done = true;
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            if self.reject {
                Decision::Reject
            } else {
                Decision::Accept
            }
        }
    }

    fn flood() -> Flood {
        Flood {
            sent: false,
            done: false,
            reject: false,
        }
    }

    #[test]
    fn flood_on_cycle() {
        let g = generators::cycle(5);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert!(out.completed);
        assert_eq!(out.stats.rounds, 1);
        // Every node except the max-id one rejects.
        let rejects = out
            .decisions
            .iter()
            .filter(|d| **d == Decision::Reject)
            .count();
        assert_eq!(rejects, 4);
        // 5 nodes broadcast 64 bits over 2 ports each.
        assert_eq!(out.stats.total_bits, 5 * 2 * 64);
        assert_eq!(out.stats.total_messages, 10);
    }

    #[test]
    fn bandwidth_enforced() {
        let g = generators::cycle(4);
        let err = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(8))
            .run(|_| flood())
            .unwrap_err();
        match err {
            SimError::Congest(CongestError::BandwidthExceeded {
                attempted, limit, ..
            }) => {
                assert_eq!(attempted, 64);
                assert_eq!(limit, 8);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn local_model_unbounded() {
        let g = generators::star(50);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Unbounded)
            .run(|_| flood())
            .unwrap();
        assert!(out.completed);
    }

    #[test]
    fn custom_ids_visible() {
        // With descending ids, the first node holds the max id and accepts.
        let g = generators::path(3);
        let ids = vec![100, 50, 10];
        let out = Simulation::on(&g)
            .with_ids(ids)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert_eq!(out.decisions[0], Decision::Accept);
        assert_eq!(out.decisions[1], Decision::Reject);
        assert_eq!(out.decisions[2], Decision::Reject);
    }

    /// Ping-pong along one edge: checks unicast routing + round counting.
    struct PingPong {
        hops_left: usize,
        done: bool,
    }

    impl NodeAlgorithm for PingPong {
        type Msg = u32;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<u32> {
            if ctx.index == 0 {
                vec![Outgoing::Unicast(0, self.hops_left as u32)]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext,
            inbox: &Inbox<u32>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<u32> {
            if let Some((port, hops)) = inbox.first() {
                if **hops == 0 {
                    self.done = true;
                    return Vec::new();
                }
                return vec![Outgoing::Unicast(*port, **hops - 1)];
            }
            // A node with nothing to do halts once the token passed it.
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            Decision::Accept
        }
    }

    #[test]
    fn ping_pong_rounds() {
        let g = generators::path(2);
        let hops = 6;
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(32))
            .max_rounds(100)
            .run(|_| PingPong {
                hops_left: hops,
                done: false,
            })
            .unwrap();
        // Token makes `hops + 1` trips (counting down 6..=0).
        assert_eq!(out.stats.total_messages, hops as u64 + 1);
    }

    #[test]
    fn round_limit_reported() {
        // PingPong on a path never sets `done` for node 1... give it a huge
        // hop count and a tiny round limit instead.
        let g = generators::path(2);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(32))
            .max_rounds(3)
            .run(|_| PingPong {
                hops_left: 1000,
                done: false,
            })
            .unwrap();
        assert!(!out.completed);
        assert_eq!(out.stats.rounds, 3);
    }

    #[test]
    fn per_round_series_sums_to_total() {
        let g = generators::cycle(5);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert_eq!(
            out.stats.per_round_bits.iter().sum::<u64>(),
            out.stats.total_bits
        );
        assert_eq!(out.stats.per_round_bits.len(), out.stats.rounds);
        assert_eq!(out.stats.per_round_bits[0], 5 * 2 * 64);
        // The message series is aligned with the bit series.
        assert_eq!(
            out.stats.per_round_messages.iter().sum::<u64>(),
            out.stats.total_messages
        );
        assert_eq!(out.stats.per_round_messages.len(), out.stats.rounds);
    }

    #[test]
    fn full_loss_delivers_nothing() {
        let g = generators::cycle(5);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::IndependentLoss(1.0))
            .run(|_| flood())
            .unwrap();
        // Bits were still charged...
        assert_eq!(out.stats.total_bits, 5 * 2 * 64);
        // ...but nobody heard a larger id, so everyone accepts.
        assert!(out.decisions.iter().all(|d| *d == Decision::Accept));
        // The fault report shows the losses instead of hiding them.
        assert_eq!(out.faults.dropped, 10);
        assert_eq!(out.faults.delivered, 0);
        assert!(out.faults.any_faults());
    }

    #[test]
    fn partial_loss_is_deterministic_and_partial() {
        let g = generators::clique(8);
        let run = || {
            Simulation::on(&g)
                .bandwidth(Bandwidth::Bits(64))
                .seed(9)
                .faults(FaultSpec::IndependentLoss(0.5))
                .run(|_| flood())
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.decisions, b.decisions, "loss is seeded");
        // With 56 deliveries at 50% loss, some but not all rejections of
        // the loss-free run should survive.
        let rejects = a
            .decisions
            .iter()
            .filter(|d| **d == Decision::Reject)
            .count();
        assert!(rejects > 0 && rejects <= 7, "rejects = {rejects}");
    }

    #[test]
    fn zero_loss_matches_default() {
        let g = generators::cycle(6);
        let a = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        let b = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::None)
            .run(|_| flood())
            .unwrap();
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn trace_captures_sends() {
        let g = generators::cycle(3);
        let buf = crate::trace::TraceBuffer::new(100);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .collector(buf.clone())
            .run(|_| flood())
            .unwrap();
        assert!(out.completed);
        // Three broadcasts, one trace event each.
        let evs = buf.events();
        assert_eq!(evs.len(), 3);
        assert!(evs
            .iter()
            .all(|e| e.port == usize::MAX && e.bits == 64 && e.kind == TraceKind::Send));
        assert!(buf.summary().contains("3 sends"));
    }

    #[test]
    fn trace_buffer_overflows_gracefully_under_fault_load() {
        // A 2-event buffer on a clique flood with heavy loss: the engine
        // emits far more Send + Drop events than fit, and the buffer must
        // cap its memory while still counting the overflow.
        let g = generators::clique(5);
        let buf = crate::trace::TraceBuffer::new(2);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::IndependentLoss(0.5))
            .seed(3)
            .collector(buf.clone())
            .run(|_| flood())
            .unwrap();
        assert!(out.faults.dropped > 0, "the loss model should have fired");
        assert_eq!(buf.events().len(), 2);
        assert!(buf.dropped() > 0);
        assert!(buf.summary().contains("dropped events"));
    }

    #[test]
    fn drop_events_are_traced_with_kind() {
        let g = generators::path(2);
        let buf = crate::trace::TraceBuffer::new(100);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::IndependentLoss(1.0))
            .collector(buf.clone())
            .max_rounds(3)
            .run(|_| flood())
            .unwrap();
        assert_eq!(out.faults.delivered, 0);
        let drops = buf.events_of(TraceKind::Drop);
        assert_eq!(drops.len(), out.faults.dropped as usize);
        assert!(!drops.is_empty());
    }

    #[test]
    fn broadcast_only_rejects_unicast() {
        let g = generators::path(2);
        let err = Simulation::on(&g)
            .broadcast_only(true)
            .bandwidth(Bandwidth::Bits(32))
            .run(|_| PingPong {
                hops_left: 3,
                done: false,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Congest(CongestError::UnicastForbidden { .. })
        ));
    }

    #[test]
    fn broadcast_only_allows_broadcasts() {
        let g = generators::cycle(4);
        let out = Simulation::on(&g)
            .broadcast_only(true)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert!(out.completed);
    }

    #[test]
    fn determinism_across_runs() {
        let g = generators::cycle(7);
        let run = || {
            Simulation::on(&g)
                .seed(42)
                .bandwidth(Bandwidth::Bits(64))
                .run(|_| flood())
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.stats.total_bits, b.stats.total_bits);
        assert_eq!(a.metrics, b.metrics, "metric snapshots are deterministic");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_entry_points_still_work() {
        // The legacy `Engine::run` / `run_nodes` shims must keep producing
        // exactly what the builder produces until they are removed.
        let g = generators::cycle(5);
        let old = Engine::new(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        let (old2, nodes) = Engine::new(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run_nodes(|_| flood())
            .unwrap();
        let new = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert_eq!(old.decisions, new.decisions);
        assert_eq!(old2.decisions, new.decisions);
        assert_eq!(nodes.len(), 5);
        assert_eq!(old.stats.total_bits, new.stats.total_bits);
    }

    #[test]
    fn hit_round_limit_distinguishes_clean_halt() {
        let g = generators::cycle(5);
        let clean = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| flood())
            .unwrap();
        assert!(clean.completed && !clean.hit_round_limit());

        let g2 = generators::path(2);
        let cut = Simulation::on(&g2)
            .bandwidth(Bandwidth::Bits(32))
            .max_rounds(3)
            .run(|_| PingPong {
                hops_left: 1000,
                done: false,
            })
            .unwrap();
        assert!(!cut.completed && cut.hit_round_limit());
    }

    #[test]
    fn crash_stop_silences_node_and_is_reported() {
        use crate::faults::{CrashStop, FaultSpec};
        // Star center crashes before round 1: no message ever flows, and
        // every leaf (degree 1, only neighbor dead) hears nothing.
        let g = generators::star(5); // center 0 + 5 leaves
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::CrashStop(CrashStop::at(vec![(0, 1)])))
            .run(|_| flood())
            .unwrap();
        // The center's round-0 broadcast is discarded before accounting:
        // only the 5 leaves are charged for their (lost) broadcasts.
        assert_eq!(out.stats.total_bits, 5 * 64);
        assert_eq!(out.faults.crashed, vec![(0, 1)]);
        assert_eq!(out.faults.crashed_nodes(), vec![0]);
        // Leaves heard nothing, so all decisions are Accept; node 0 is
        // crashed so it cannot be a "surviving" rejecter either.
        assert!(!out.surviving_node_rejects());
        // The leaves' sends toward the dead center count as dropped.
        assert_eq!(out.faults.dropped, 5);
        // Crashed nodes count as halted, so the run still completes.
        assert!(out.completed);
    }

    #[test]
    fn crash_events_traced() {
        use crate::faults::{CrashStop, FaultSpec};
        use crate::trace::TraceBuffer;
        let g = generators::cycle(4);
        let buf = TraceBuffer::new(100);
        Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .collector(buf.clone())
            .faults(FaultSpec::CrashStop(CrashStop::at(vec![(2, 1)])))
            .run(|_| flood())
            .unwrap();
        let crashes = buf.events_of(TraceKind::Crash);
        assert_eq!(crashes.len(), 1);
        assert_eq!((crashes[0].from, crashes[0].round), (2, 1));
        assert!(!buf.events_of(TraceKind::Send).is_empty());
    }

    #[test]
    fn link_failure_blocks_exactly_that_edge() {
        use crate::faults::{FaultSpec, LinkFailure};
        // Path 0-1-2 with ids 0 < 1 < 2. Fault-free, nodes 0 and 1 reject.
        // Severing {1, 2} in round 1 hides id 2 from node 1, so only node 0
        // (which still hears id 1) rejects.
        let g = generators::path(3);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .faults(FaultSpec::LinkFailure(LinkFailure::single(1, 2, 1, 1)))
            .run(|_| flood())
            .unwrap();
        assert_eq!(out.decisions[0], Decision::Reject);
        assert_eq!(out.decisions[1], Decision::Accept);
        assert_eq!(out.decisions[2], Decision::Accept);
        // Both directions of the severed edge dropped.
        assert_eq!(out.faults.dropped, 2);
        assert_eq!(out.faults.delivered, 2);
    }

    /// Node 0 broadcasts a fixed 16-bit pattern; every other node rejects
    /// iff it receives something different (a corruption detector).
    struct PatternCheck {
        pattern: u64,
        corrupted: bool,
        done: bool,
    }

    impl NodeAlgorithm for PatternCheck {
        type Msg = crate::message::BitString;

        fn init(
            &mut self,
            ctx: &NodeContext,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<crate::message::BitString> {
            if ctx.index == 0 {
                self.done = true;
                vec![Outgoing::Broadcast(crate::message::BitString::from_uint(
                    self.pattern,
                    16,
                ))]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext,
            inbox: &Inbox<crate::message::BitString>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<crate::message::BitString> {
            for (_, m) in inbox {
                if m.to_uint() != self.pattern {
                    self.corrupted = true;
                }
            }
            self.done = true;
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            if self.corrupted {
                Decision::Reject
            } else {
                Decision::Accept
            }
        }
    }

    #[test]
    fn bit_flip_corrupts_bitstring_payloads() {
        use crate::faults::FaultSpec;
        let g = generators::star(4); // node 0 center, 4 leaves
        let mk = || PatternCheck {
            pattern: 0xA5A5,
            corrupted: false,
            done: false,
        };
        let clean = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| mk())
            .unwrap();
        assert!(clean.network_accepts());
        assert_eq!(clean.faults.corrupted, 0);

        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .seed(11)
            .faults(FaultSpec::BitFlip(1.0))
            .run(|_| mk())
            .unwrap();
        // Every delivery corrupted: all four leaves see a damaged pattern.
        assert_eq!(out.faults.corrupted, 4);
        assert!(out.network_rejects());
    }

    #[test]
    fn fault_runs_reproducible_from_seed() {
        use crate::faults::{CrashStop, FaultSpec};
        let g = generators::clique(9);
        // Crashes land in round 1 (the flood only runs one real round).
        let spec = FaultSpec::Stack(vec![
            FaultSpec::GilbertElliott(0.2, 0.3, 0.05, 0.9),
            FaultSpec::CrashStop(CrashStop::random(2, 1)),
            FaultSpec::BitFlip(0.1),
        ]);
        let run = |seed: u64| {
            Simulation::on(&g)
                .bandwidth(Bandwidth::Bits(64))
                .seed(seed)
                .faults(spec.clone())
                .run(|_| flood())
                .unwrap()
        };
        let (a, b) = (run(13), run(13));
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.stats.total_bits, b.stats.total_bits);
        assert_eq!(a.faults.crashed_nodes().len(), 2);
        // A different seed crashes (almost surely) different nodes or at
        // least produces a different delivery history.
        let c = run(14);
        assert!(
            c.faults != a.faults,
            "distinct seeds should give distinct fault histories"
        );
    }

    #[test]
    fn per_round_fault_series_match_rounds() {
        use crate::faults::FaultSpec;
        let g = generators::clique(6);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .seed(3)
            .faults(FaultSpec::IndependentLoss(0.4))
            .run(|_| flood())
            .unwrap();
        assert_eq!(out.faults.dropped_per_round.len(), out.stats.rounds);
        assert_eq!(out.faults.corrupted_per_round.len(), out.stats.rounds);
        assert_eq!(
            out.faults.dropped_per_round.iter().sum::<u64>(),
            out.faults.dropped
        );
        assert_eq!(
            out.faults.delivered + out.faults.dropped,
            out.stats.total_messages
        );
    }

    #[test]
    fn round_events_bracket_every_round() {
        use crate::obsv::JsonlTrace;
        let g = generators::cycle(4);
        let trace = std::sync::Arc::new(JsonlTrace::new(1 << 12));
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .collector_arc(trace.clone())
            .run(|_| flood())
            .unwrap();
        let dump = trace.to_jsonl();
        let starts = dump.matches(r#""ev":"round_start""#).count();
        let ends = dump.matches(r#""ev":"round_end""#).count();
        assert_eq!(starts, out.stats.rounds);
        assert_eq!(ends, out.stats.rounds);
        // No compute spans unless someone opted in.
        assert_eq!(dump.matches(r#""ev":"compute""#).count(), 0);
    }

    #[test]
    fn compute_spans_emitted_when_requested() {
        use crate::obsv::ComputeTimer;
        let g = generators::cycle(6);
        let timer = std::sync::Arc::new(ComputeTimer::new());
        Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .collector_arc(timer.clone())
            .run(|_| flood())
            .unwrap();
        // 6 init spans + 6 round-1 spans (every node computes once).
        assert_eq!(timer.take().count(), 12);
    }
}
