//! Reliable transport over a faulty CONGEST network.
//!
//! [`Reliable<A>`] wraps any [`NodeAlgorithm`] in a per-link sliding-window
//! selective-repeat ARQ (automatic repeat request) layer. Each *virtual*
//! round of the inner algorithm becomes one sequence-numbered data frame
//! per link (empty frames included — the stream is self-clocking), and up
//! to [`ReliableConfig::window`] frames ride each link unacknowledged.
//! Receivers return cumulative acks with a 16-bit selective-ack bitmap, so
//! one loss no longer stalls the frames behind it. Retransmission timing is
//! adaptive: each link keeps a smoothed RTT estimate from ack round-trips,
//! and every retry backs off exponentially (capped at [`RTO_CAP`]) with
//! deterministic seeded jitter so synchronized losses do not retransmit in
//! lockstep. A round's expirations are batched per link — everything that
//! fits the per-edge bit budget goes out together, oldest frame first.
//!
//! The protocol overhead is charged through the normal engine accounting —
//! headers, acks, and retransmissions all cost real bits, so [`RunStats`]
//! of a reliable run reflect the true price of reliability.
//!
//! **Graceful degradation** instead of deadlock: a receiver blocked too
//! long on a missing frame *skips* it (delivering an empty bundle — losses
//! only remove information, so sound detectors stay sound), a sender
//! exhausting `max_retries` gives the frame up, and two consecutive
//! give-ups declare the link dead so crashed neighbors stop costing
//! timeouts. All of it is tallied ([`Reliable::given_up`],
//! [`Reliable::retransmissions`], [`Reliable::backoff_events`]) and folded
//! into the run's [`FaultReport`](crate::faults::FaultReport), where it
//! triggers the engine's `Degraded` outcome assessment.
//!
//! Limits: the adapter converts broadcasts into per-port sends, so it
//! cannot run under a `broadcast_only` engine; and reliability is
//! best-effort — a frame whose every transmission is lost is given up, not
//! blocked on forever.
//!
//! [`RunStats`]: crate::stats::RunStats

use crate::engine::{CongestError, Engine, RunOutcome};
use crate::faults::raw_hash;
use crate::message::{BitSize, Payload};
use crate::node::{Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing};
use crate::obsv::profile::{prof_record, prof_start, Profiler, Section};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Wire envelope of the reliable layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RMsg<M> {
    /// A data frame: every inner message the sender addressed to this port
    /// in virtual round `seq`, plus a payload checksum.
    Data {
        /// Sequence number (equal to the virtual round the bundle belongs
        /// to — the stream is self-clocking, one frame per virtual round).
        seq: u32,
        /// 16-bit checksum over `(seq, fin, payload)`.
        check: u16,
        /// Whether this is the sender's final frame on this link (its
        /// inner algorithm halted after producing this bundle).
        fin: bool,
        /// The bundled inner messages, behind an `Arc` shared with the
        /// sender's retransmission queue — a retransmitted frame re-sends
        /// the same allocation instead of deep-copying the bundle. Sound
        /// because fault corruption only ever flips header bits (see
        /// [`BitSize::corrupt_bit`] below), never payload contents.
        payload: Arc<Vec<M>>,
    },
    /// Cumulative + selective acknowledgement for one link.
    Ack {
        /// Highest sequence number below which everything was received
        /// (or skipped) in order.
        cum: u32,
        /// Selective-ack bitmap: bit `i` set means frame `cum + 1 + i` is
        /// buffered out of order.
        sack: u16,
        /// 16-bit checksum over `(cum, sack)`.
        check: u16,
    },
}

/// Header cost of a data frame in bits: 1 (tag) + 32 (seq) + 16 (checksum)
/// + 1 (fin) + 8 (bundle length).
pub const DATA_HEADER_BITS: usize = 1 + 32 + 16 + 1 + 8;
/// Cost of an ack in bits: 1 (tag) + 32 (cum) + 16 (sack) + 16 (checksum).
pub const ACK_BITS: usize = 1 + 32 + 16 + 16;
/// Largest permitted send window (the sack bitmap covers 16 frames).
pub const MAX_WINDOW: usize = 16;
/// Retransmission-timeout cap in rounds: exponential backoff never waits
/// longer than this (plus one round of jitter) between attempts.
pub const RTO_CAP: usize = 8;

/// Inner steps the transport may run in one physical round while catching
/// up after a stall (arrivals beyond the stalled frame are buffered, so a
/// repaired gap can release several virtual rounds at once).
const MAX_CATCHUP: usize = 4;

impl<M: BitSize> BitSize for RMsg<M> {
    fn bit_size(&self) -> usize {
        match self {
            RMsg::Data { payload, .. } => {
                DATA_HEADER_BITS + payload.iter().map(BitSize::bit_size).sum::<usize>()
            }
            RMsg::Ack { .. } => ACK_BITS,
        }
    }

    fn corrupt_bit(&mut self, bit_index: usize) -> bool {
        // The envelope's header fields are literal wire bits, so the
        // reliable layer is corruptible even when the inner payload is a
        // structured value. Every flip lands in a checksummed field
        // (sequence number, fin flag, or the checksum itself), so the
        // receiver detects it and retransmission repairs it — exactly the
        // failure mode ARQ exists for.
        match self {
            RMsg::Data {
                seq, check, fin, ..
            } => {
                match bit_index % 49 {
                    b @ 0..=31 => *seq ^= 1 << b,
                    b @ 32..=47 => *check ^= 1 << (b - 32),
                    _ => *fin = !*fin,
                }
                true
            }
            RMsg::Ack { cum, sack, check } => {
                match bit_index % 64 {
                    b @ 0..=31 => *cum ^= 1 << b,
                    b @ 32..=47 => *sack ^= 1 << (b - 32),
                    b => *check ^= 1 << (b - 48),
                }
                true
            }
        }
    }
}

fn data_check<M: Hash>(seq: u32, fin: bool, payload: &[M]) -> u16 {
    let mut h = graphlib::hash::FxHasher::default();
    seq.hash(&mut h);
    fin.hash(&mut h);
    payload.len().hash(&mut h);
    for m in payload {
        m.hash(&mut h);
    }
    (h.finish() >> 48) as u16
}

fn ack_check(cum: u32, sack: u16) -> u16 {
    let mut h = graphlib::hash::FxHasher::default();
    "ack".hash(&mut h);
    cum.hash(&mut h);
    sack.hash(&mut h);
    (h.finish() >> 48) as u16
}

fn payload_bits<M: BitSize>(payload: &[M]) -> usize {
    payload.iter().map(BitSize::bit_size).sum()
}

/// Retransmission timeout for the given attempt: smoothed-RTT-based
/// exponential backoff capped at [`RTO_CAP`], plus one seeded jitter round
/// so synchronized links do not retransmit in lockstep.
fn rto(srtt: usize, attempt: usize, seed: u64, node: usize, port: usize, seq: u32) -> usize {
    let base = ((srtt + 1) << (attempt - 1)).min(RTO_CAP);
    base + (raw_hash((seed, "arq-jitter", node, port, seq, attempt)) & 1) as usize
}

/// Tuning of the reliable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Frames that may ride a link unacknowledged (1 = stop-and-wait;
    /// at most [`MAX_WINDOW`], the reach of the sack bitmap).
    pub window: usize,
    /// Initial smoothed-RTT estimate in rounds (the ack round-trip of a
    /// lossless link is 2); per-link estimates adapt from there.
    pub ack_timeout: usize,
    /// Retransmissions per frame after the initial send before the sender
    /// gives the frame up.
    pub max_retries: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            window: 8,
            ack_timeout: 2,
            max_retries: 4,
        }
    }
}

impl ReliableConfig {
    /// Validated constructor (panics on invalid tuning; fallible callers
    /// should use [`ReliableConfig::validate`] via the
    /// [`Simulation`](crate::Simulation) builder instead).
    pub fn new(window: usize, ack_timeout: usize, max_retries: usize) -> Self {
        let cfg = ReliableConfig {
            window,
            ack_timeout,
            max_retries,
        };
        if let Err(e) = cfg.validate() {
            panic!("invalid ReliableConfig: {e}");
        }
        cfg
    }

    /// Checks the tuning for values that would hang or livelock the
    /// transport. Returns a human-readable description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be at least 1 (0 can never send)".into());
        }
        if self.window > MAX_WINDOW {
            return Err(format!(
                "window {} exceeds MAX_WINDOW {MAX_WINDOW} (the sack bitmap width)",
                self.window
            ));
        }
        if self.ack_timeout == 0 {
            return Err("ack_timeout must be at least 1 round".into());
        }
        if self.max_retries == 0 {
            return Err("max_retries must be at least 1 (0 gives up on first loss)".into());
        }
        Ok(())
    }

    /// Engine bandwidth needed to carry `inner_bits` of inner per-port
    /// traffic per virtual round (the worst round carries one full data
    /// frame plus one ack).
    pub fn required_bandwidth(&self, inner_bits: usize) -> usize {
        DATA_HEADER_BITS + inner_bits + ACK_BITS
    }

    /// Rounds a blocked receiver waits for a missing frame before skipping
    /// it — generous enough to cover the sender's full retry schedule.
    pub fn give_up_after(&self) -> usize {
        (self.max_retries + 1) * (RTO_CAP + 1) + 4
    }

    /// Physical engine rounds sufficient for `virtual_rounds` inner rounds
    /// even in worst-case degraded operation (a safe `max_rounds`; healthy
    /// runs halt far earlier and the engine exits on completion).
    pub fn physical_rounds(&self, virtual_rounds: usize) -> usize {
        (virtual_rounds + 2) * (self.give_up_after() + 2)
    }
}

/// One outgoing frame and its retransmission state.
#[derive(Debug, Clone)]
struct SendFrame<M> {
    seq: u32,
    fin: bool,
    check: u16,
    /// Bundle payload, shared with every transmission of this frame (the
    /// wire message holds the same `Arc`, so a retransmission is a pointer
    /// bump, not a deep copy of the bundle).
    payload: Arc<Vec<M>>,
    /// Cached wire size of the full frame (`DATA_HEADER_BITS` + payload
    /// bits), computed once when the frame is queued. The send pass charges
    /// each (re)transmission against the budget with this one number — one
    /// accounting touch per link per round instead of a payload walk per
    /// attempt.
    bits: usize,
    /// Transmissions so far (0 = queued, never sent).
    attempt: usize,
    /// Round of the first transmission (RTT sampling; Karn's rule — only
    /// frames acked on their first attempt contribute a sample).
    sent_round: usize,
    /// Round the current attempt times out.
    expires: usize,
    acked: bool,
    given_up: bool,
}

impl<M> SendFrame<M> {
    fn resolved(&self) -> bool {
        self.acked || self.given_up
    }
}

/// Sender state for one outgoing link.
#[derive(Debug, Clone)]
struct SendLink<M> {
    frames: VecDeque<SendFrame<M>>,
    next_seq: u32,
    /// Smoothed RTT estimate in rounds (integer EWMA).
    srtt: usize,
    consecutive_given_up: usize,
    /// Two consecutive give-ups declare the link dead: later frames
    /// resolve instantly instead of burning full retry schedules.
    dead: bool,
}

impl<M> SendLink<M> {
    fn new(srtt0: usize) -> Self {
        SendLink {
            frames: VecDeque::new(),
            next_seq: 1,
            srtt: srtt0,
            consecutive_given_up: 0,
            dead: false,
        }
    }

    fn pop_resolved(&mut self) {
        while self.frames.front().is_some_and(SendFrame::resolved) {
            self.frames.pop_front();
        }
    }

    fn all_resolved(&self) -> bool {
        self.frames.iter().all(SendFrame::resolved)
    }
}

/// Receiver state for one incoming link.
#[derive(Debug, Clone)]
struct RecvLink<M> {
    /// Lowest sequence number not yet received or skipped.
    next_needed: u32,
    /// Out-of-order frames awaiting the gap in front of them.
    buffer: BTreeMap<u32, Vec<M>>,
    /// In-order bundles awaiting consumption by the inner algorithm,
    /// keyed by virtual round.
    delivered: BTreeMap<u32, Vec<M>>,
    /// Sequence number of the peer's final frame, once seen; frames past
    /// it resolve as empty without any wire traffic.
    fin_at: Option<u32>,
    /// Consecutive rounds the inner algorithm was blocked on this link
    /// with nothing arriving.
    blocked_rounds: usize,
    /// An ack is owed (new data, a duplicate, or a skip changed the
    /// receive state this round).
    ack_dirty: bool,
    consecutive_skips: usize,
    /// Two consecutive skips declare the link dead: every future frame
    /// resolves as empty immediately.
    dead: bool,
}

impl<M> RecvLink<M> {
    fn new() -> Self {
        RecvLink {
            next_needed: 1,
            buffer: BTreeMap::new(),
            delivered: BTreeMap::new(),
            fin_at: None,
            blocked_rounds: 0,
            ack_dirty: false,
            consecutive_skips: 0,
            dead: false,
        }
    }

    /// Moves in-order buffered frames into the delivered map.
    fn advance(&mut self) -> bool {
        let mut moved = false;
        while let Some(bundle) = self.buffer.remove(&self.next_needed) {
            self.delivered.insert(self.next_needed, bundle);
            self.next_needed += 1;
            moved = true;
        }
        moved
    }

    /// Whether the bundle for virtual round `v` is available (delivered,
    /// past the peer's fin, or the link is dead — the latter two resolve
    /// as empty).
    fn ready(&self, v: u32) -> bool {
        self.dead || self.delivered.contains_key(&v) || self.fin_at.is_some_and(|f| v > f)
    }

    fn take(&mut self, v: u32) -> Vec<M> {
        self.delivered.remove(&v).unwrap_or_default()
    }

    /// Whether nothing more is owed on this link: the peer's final frame
    /// was seen and fully received (so the peer's sender can resolve), or
    /// the link was declared dead.
    fn closed(&self) -> bool {
        self.dead || self.fin_at.is_some_and(|f| self.next_needed > f)
    }
}

/// A [`NodeAlgorithm`] adapter adding sliding-window selective-repeat ARQ
/// with adaptive backoff and graceful degradation on top of any inner
/// algorithm (see the module docs for the protocol).
#[derive(Clone)]
pub struct Reliable<A: NodeAlgorithm> {
    inner: A,
    cfg: ReliableConfig,
    /// Engine seed, for deterministic retransmission jitter (never the
    /// node's own rng — the inner algorithm's stream must match a bare
    /// run exactly).
    seed: u64,
    /// Per-edge-per-round bit budget (usize::MAX when unbounded), for
    /// batching a round's sends against what actually fits.
    budget: usize,
    node_index: usize,
    send: Vec<SendLink<A::Msg>>,
    recv: Vec<RecvLink<A::Msg>>,
    /// Next virtual round of the inner algorithm to step.
    inner_next: u32,
    /// Consecutive rounds with no valid arrival — the linger gate that
    /// keeps a finished node acking until its peers are demonstrably done.
    idle_rounds: usize,
    /// Set by any loss symptom (retransmission, duplicate, corruption,
    /// give-up); switches the halt linger from 2 rounds to `RTO_CAP + 2`
    /// so retransmitted acks are not orphaned by an early exit.
    saw_trouble: bool,
    retransmissions: u64,
    retrans_per_round: Vec<u64>,
    retrans_per_port: Vec<u64>,
    backoff_events: u64,
    given_up: u64,
    profiler: Option<Arc<Profiler>>,
}

impl<A: NodeAlgorithm> Reliable<A>
where
    A::Msg: Hash,
{
    /// Wraps `inner` with the given transport tuning.
    pub fn new(inner: A, cfg: ReliableConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ReliableConfig: {e}");
        }
        Reliable {
            inner,
            cfg,
            seed: 0,
            budget: usize::MAX,
            node_index: 0,
            send: Vec::new(),
            recv: Vec::new(),
            inner_next: 1,
            idle_rounds: 0,
            saw_trouble: false,
            retransmissions: 0,
            retrans_per_round: Vec::new(),
            retrans_per_port: Vec::new(),
            backoff_events: 0,
            given_up: 0,
            profiler: None,
        }
    }

    /// Seeds the deterministic retransmission jitter (the engine seed;
    /// wired automatically on the [`Simulation`](crate::Simulation) route).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-edge-per-round bit budget the batched send pass packs
    /// against (the engine bandwidth; wired automatically on the
    /// [`Simulation`](crate::Simulation) route).
    pub fn with_budget(mut self, bits: usize) -> Self {
        self.budget = bits;
        self
    }

    /// Attaches the engine self-profiler so the ARQ send/retransmit scan
    /// is timed under [`Section::ArqRetransmit`].
    pub fn with_profiler(mut self, p: Arc<Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the inner algorithm.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Data frames this node retransmitted.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Retransmissions by physical round (entry `r - 1` for round `r`),
    /// grown lazily — empty until the first retransmission.
    pub fn retransmissions_per_round(&self) -> &[u64] {
        &self.retrans_per_round
    }

    /// Retransmissions by outgoing port (directed link), indexed by port.
    pub fn retransmissions_per_port(&self) -> &[u64] {
        &self.retrans_per_port
    }

    /// Retransmissions sent at backoff stage ≥ 2 (third or later attempt)
    /// — each one is a frame the adaptive timeout had to back off for.
    pub fn backoff_events(&self) -> u64 {
        self.backoff_events
    }

    /// Frames abandoned by the transport: sender frames that exhausted
    /// `max_retries`, plus receiver-side skips of frames that never
    /// arrived. Any nonzero count marks the run as degraded.
    pub fn given_up(&self) -> u64 {
        self.given_up
    }

    /// Splits an inner outbox into per-port bundles and queues them as
    /// frame `seq` on every link (empty bundles included — the stream is
    /// self-clocking).
    fn queue(&mut self, inner_out: Outbox<A::Msg>, seq: u32, fin: bool) {
        let ports = self.send.len();
        let mut bundles: Vec<Vec<A::Msg>> = vec![Vec::new(); ports];
        for og in inner_out {
            match og {
                Outgoing::Unicast(p, m) => bundles[p as usize].push(m),
                Outgoing::Broadcast(m) => {
                    for b in bundles.iter_mut() {
                        b.push(m.clone());
                    }
                }
            }
        }
        for (p, payload) in bundles.into_iter().enumerate() {
            let check = data_check(seq, fin, &payload);
            let bits = DATA_HEADER_BITS + payload_bits(&payload);
            self.send[p].frames.push_back(SendFrame {
                seq,
                fin,
                check,
                payload: Arc::new(payload),
                bits,
                attempt: 0,
                sent_round: 0,
                expires: 0,
                acked: false,
                given_up: false,
            });
            self.send[p].next_seq = seq + 1;
        }
    }

    /// The batched per-link send pass: one ack (if owed), then expired
    /// retransmits and window-admitted new frames oldest-first, packing
    /// everything that fits the per-edge bit budget.
    fn pump(&mut self, round: usize, out: &mut Outbox<RMsg<A::Msg>>) {
        let t_arq = prof_start(self.profiler.as_deref());
        let ports = self.send.len();
        for p in 0..ports {
            let mut budget = self.budget;
            // 1. Ack first: the receiver side is what unblocks the peer.
            let rl = &mut self.recv[p];
            if rl.ack_dirty && budget >= ACK_BITS {
                let cum = rl.next_needed - 1;
                let mut sack: u16 = 0;
                for i in 0..MAX_WINDOW as u32 {
                    if rl.buffer.contains_key(&(rl.next_needed + i)) {
                        sack |= 1 << i;
                    }
                }
                out.push(Outgoing::Unicast(
                    p as u32,
                    RMsg::Ack {
                        cum,
                        sack,
                        check: ack_check(cum, sack),
                    },
                ));
                budget = budget.saturating_sub(ACK_BITS);
                rl.ack_dirty = false;
            }
            // 2. Sender scan, oldest frame first.
            let sl = &mut self.send[p];
            sl.pop_resolved();
            let mut gave_up = 0u64;
            let mut retrans = 0u64;
            let mut backoffs = 0u64;
            if sl.dead {
                for f in sl.frames.iter_mut() {
                    if !f.resolved() {
                        f.given_up = true;
                        gave_up += 1;
                    }
                }
            } else {
                let base = sl.frames.front().map_or(sl.next_seq, |f| f.seq);
                let window_end = base + self.cfg.window as u32;
                let srtt = sl.srtt;
                for f in sl.frames.iter_mut() {
                    if f.resolved() {
                        continue;
                    }
                    if f.attempt == 0 {
                        // New frame: admitted by the window, sent if it fits.
                        if f.seq >= window_end {
                            break;
                        }
                        if f.bits > budget {
                            break;
                        }
                        out.push(Outgoing::Unicast(
                            p as u32,
                            RMsg::Data {
                                seq: f.seq,
                                check: f.check,
                                fin: f.fin,
                                payload: Arc::clone(&f.payload),
                            },
                        ));
                        budget -= f.bits;
                        f.attempt = 1;
                        f.sent_round = round;
                        f.expires = round + rto(srtt, 1, self.seed, self.node_index, p, f.seq);
                    } else if round >= f.expires {
                        if f.attempt > self.cfg.max_retries {
                            // Retry budget exhausted: abandon the frame.
                            f.given_up = true;
                            gave_up += 1;
                        } else {
                            // Catch-up retransmit: charged with the cached
                            // frame size — no per-attempt payload walk or
                            // bundle copy even when several expired frames
                            // on this link go out together.
                            if f.bits <= budget {
                                out.push(Outgoing::Unicast(
                                    p as u32,
                                    RMsg::Data {
                                        seq: f.seq,
                                        check: f.check,
                                        fin: f.fin,
                                        payload: Arc::clone(&f.payload),
                                    },
                                ));
                                budget -= f.bits;
                                f.attempt += 1;
                                f.expires = round
                                    + rto(srtt, f.attempt, self.seed, self.node_index, p, f.seq);
                                retrans += 1;
                                if f.attempt >= 3 {
                                    backoffs += 1;
                                }
                            }
                            // Over budget: the frame stays expired and is
                            // retried next round.
                        }
                    }
                }
                sl.consecutive_given_up += gave_up as usize;
                if sl.consecutive_given_up >= 2 {
                    sl.dead = true;
                }
            }
            sl.pop_resolved();
            self.given_up += gave_up;
            self.retransmissions += retrans;
            self.retrans_per_port[p] += retrans;
            self.backoff_events += backoffs;
            if gave_up > 0 || retrans > 0 {
                self.saw_trouble = true;
                if retrans > 0 && round > 0 {
                    if self.retrans_per_round.len() < round {
                        self.retrans_per_round.resize(round, 0);
                    }
                    self.retrans_per_round[round - 1] += retrans;
                }
            }
        }
        prof_record(self.profiler.as_deref(), Section::ArqRetransmit, t_arq);
    }

    /// Rounds of post-completion lingering before the wrapper reports
    /// halted — long enough to cover one full backed-off retransmission
    /// gap when the run saw any loss symptom.
    fn linger(&self) -> usize {
        if self.saw_trouble {
            RTO_CAP + 2
        } else {
            2
        }
    }
}

impl<A: NodeAlgorithm> NodeAlgorithm for Reliable<A>
where
    A::Msg: Hash,
{
    type Msg = RMsg<A::Msg>;

    fn init(&mut self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<Self::Msg> {
        let ports = ctx.neighbor_ids.len();
        self.node_index = ctx.index;
        self.send = (0..ports)
            .map(|_| SendLink::new(self.cfg.ack_timeout))
            .collect();
        self.recv = (0..ports).map(|_| RecvLink::new()).collect();
        self.retrans_per_port = vec![0; ports];
        self.inner_next = 1;
        let inner_out = self.inner.init(ctx, rng);
        let fin = self.inner.halted();
        self.queue(inner_out, 1, fin);
        let mut out = Vec::new();
        self.pump(0, &mut out);
        out
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<Self::Msg>,
        rng: &mut ChaCha8Rng,
    ) -> Outbox<Self::Msg> {
        let round = ctx.round;
        let ports = self.send.len();
        let mut arrived = false;
        let mut data_on = vec![false; ports];

        // 1. Process arrivals: buffer checksum-valid data (acking
        //    duplicates too — our earlier ack may have been lost) and
        //    resolve acked sender frames.
        for (port, msg) in inbox {
            let p = &(*port as usize);
            match &**msg {
                RMsg::Data {
                    seq,
                    check,
                    fin,
                    payload,
                } => {
                    if *check != data_check(*seq, *fin, payload) {
                        // Corrupted in flight: stay silent, the sender's
                        // timeout repairs it.
                        self.saw_trouble = true;
                        continue;
                    }
                    arrived = true;
                    data_on[*p] = true;
                    let rl = &mut self.recv[*p];
                    rl.ack_dirty = true;
                    if rl.dead || *seq < rl.next_needed {
                        // Stale or post-skip data: discard but ack, so the
                        // sender stops retransmitting (loss-sound — a
                        // skipped frame stays skipped).
                        self.saw_trouble = true;
                        continue;
                    }
                    if *fin {
                        rl.fin_at = Some(rl.fin_at.map_or(*seq, |f| f.min(*seq)));
                    }
                    rl.buffer
                        .entry(*seq)
                        .or_insert_with(|| payload.as_ref().clone());
                    if rl.advance() {
                        rl.consecutive_skips = 0;
                    }
                }
                RMsg::Ack { cum, sack, check } => {
                    if *check != ack_check(*cum, *sack) {
                        self.saw_trouble = true;
                        continue;
                    }
                    arrived = true;
                    let sl = &mut self.send[*p];
                    let mut fresh = false;
                    for f in sl.frames.iter_mut() {
                        let offset = f.seq.wrapping_sub(*cum);
                        let covered = f.seq <= *cum
                            || (offset >= 1
                                && offset <= MAX_WINDOW as u32
                                && (*sack >> (offset - 1)) & 1 == 1);
                        if covered && !f.acked {
                            f.acked = true;
                            if !f.given_up {
                                fresh = true;
                                if f.attempt == 1 {
                                    // Karn's rule: only first-attempt acks
                                    // are unambiguous RTT samples.
                                    let sample = round.saturating_sub(f.sent_round);
                                    sl.srtt = (3 * sl.srtt + sample) / 4;
                                }
                            }
                        }
                    }
                    if fresh {
                        sl.consecutive_given_up = 0;
                    }
                    sl.pop_resolved();
                }
            }
        }
        self.idle_rounds = if arrived { 0 } else { self.idle_rounds + 1 };

        // 2. Inner catch-up: step every virtual round whose bundles are
        //    all available (a repaired gap can release several at once).
        let mut steps = 0;
        while steps < MAX_CATCHUP
            && !self.inner.halted()
            && (0..ports).all(|p| self.recv[p].ready(self.inner_next))
        {
            let mut vinbox: Vec<(u32, Payload<A::Msg>)> = Vec::new();
            for (p, rl) in self.recv.iter_mut().enumerate() {
                for m in rl.take(self.inner_next) {
                    vinbox.push((p as u32, Payload::Owned(m)));
                }
            }
            let vctx = NodeContext {
                round: self.inner_next as usize,
                ..ctx.clone()
            };
            let inner_out = self.inner.on_round(&vctx, &vinbox, rng);
            let fin = self.inner.halted();
            let next = self.inner_next + 1;
            self.queue(inner_out, next, fin);
            self.inner_next = next;
            steps += 1;
        }

        // 3. Receiver watchdog: a link that has blocked the inner
        //    algorithm too long gets its missing frame skipped (delivered
        //    empty — losses only remove information); two consecutive
        //    skips declare the link dead.
        if !self.inner.halted() {
            for (p, &had_data) in data_on.iter().enumerate() {
                let rl = &mut self.recv[p];
                if rl.ready(self.inner_next) || had_data {
                    rl.blocked_rounds = 0;
                    continue;
                }
                rl.blocked_rounds += 1;
                let patience = if rl.consecutive_skips > 0 {
                    RTO_CAP + 2
                } else {
                    self.cfg.give_up_after()
                };
                if rl.blocked_rounds >= patience {
                    rl.delivered.insert(rl.next_needed, Vec::new());
                    rl.next_needed += 1;
                    rl.advance();
                    rl.blocked_rounds = 0;
                    rl.consecutive_skips += 1;
                    if rl.consecutive_skips >= 2 {
                        rl.dead = true;
                    }
                    rl.ack_dirty = true;
                    self.given_up += 1;
                    self.saw_trouble = true;
                }
            }
        }

        // 4. Batched send pass: acks, then retransmits and new frames.
        let mut out = Vec::new();
        self.pump(round, &mut out);
        out
    }

    fn halted(&self) -> bool {
        self.inner.halted()
            && self.send.iter().all(SendLink::all_resolved)
            && self.recv.iter().all(RecvLink::closed)
            && self.idle_rounds >= self.linger()
    }

    fn decision(&self) -> Decision {
        self.inner.decision()
    }
}

/// The transport run behind
/// [`Simulation`](crate::Simulation)'s reliable route (the single public
/// entry point, via `Simulation::reliable_config(cfg).run(make)`). Emits a
/// [`SimEvent::TransportSummary`](crate::obsv::SimEvent) through the
/// engine's collector once the tallies are known, and re-assesses the
/// outcome's degradation verdict with the transport's give-ups included.
pub(crate) fn run_reliable_impl<A, F>(
    engine: &Engine<'_>,
    cfg: ReliableConfig,
    make: F,
) -> Result<(RunOutcome, Vec<A>), CongestError>
where
    A: NodeAlgorithm,
    A::Msg: Hash,
    F: Fn(usize) -> A + Sync,
{
    let prof = engine.profiler_handle().cloned();
    let seed = engine.seed_value();
    let budget = engine.bandwidth_limit().unwrap_or(usize::MAX);
    let (mut outcome, nodes) = engine.run_nodes_impl(|v| {
        let node = Reliable::new(make(v), cfg)
            .with_seed(seed)
            .with_budget(budget);
        match &prof {
            Some(p) => node.with_profiler(Arc::clone(p)),
            None => node,
        }
    })?;
    outcome.faults.retransmissions = nodes.iter().map(Reliable::retransmissions).sum();
    outcome.faults.given_up = nodes.iter().map(Reliable::given_up).sum();
    outcome.faults.backoff_events = nodes.iter().map(Reliable::backoff_events).sum();
    // Fold the per-node, per-physical-round retransmission counts into one
    // run-wide series aligned with `dropped_per_round` (padded with zeros
    // out to the executed round count).
    let mut per_round = vec![0u64; outcome.stats.rounds];
    for nd in &nodes {
        for (i, &c) in nd.retransmissions_per_round().iter().enumerate() {
            if let Some(slot) = per_round.get_mut(i) {
                *slot += c;
            }
        }
    }
    outcome.faults.retransmissions_per_round = per_round;
    // Per-link tallies, in the CSR directed-edge order shared with
    // `RunStats::directed_edge_bits` (slot `offsets[v] + port`).
    let offsets = Arc::clone(&outcome.stats.offsets);
    let slots = offsets.last().copied().unwrap_or(0) as usize;
    let mut per_link = vec![0u64; slots];
    for (v, nd) in nodes.iter().enumerate() {
        for (p, &c) in nd.retransmissions_per_port().iter().enumerate() {
            per_link[offsets[v] as usize + p] += c;
        }
    }
    outcome.faults.retransmissions_per_link = per_link;
    let n = nodes.len();
    outcome.assess_degradation(n);
    if let Some(c) = engine.collector_handle() {
        c.record(&crate::obsv::SimEvent::TransportSummary {
            retransmissions: outcome.faults.retransmissions,
            given_up: outcome.faults.given_up,
            backoff_events: outcome.faults.backoff_events,
        });
    }
    Ok((
        outcome,
        nodes.into_iter().map(Reliable::into_inner).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Bandwidth;
    use crate::faults::FaultSpec;
    use crate::simulation::Simulation;
    use graphlib::generators;

    /// Each node broadcasts its id for `depth` virtual rounds, collecting
    /// the set of ids heard; rejects iff it heard every other id. On a
    /// path, hearing everyone requires `n - 1` relay rounds to succeed
    /// end-to-end — a protocol that is very fragile under loss.
    #[derive(Debug, Clone)]
    struct Gossip {
        heard: Vec<u64>,
        rounds_left: usize,
        n: usize,
        done: bool,
    }

    impl Gossip {
        fn new(n: usize) -> Self {
            Gossip {
                heard: Vec::new(),
                rounds_left: 2 * n,
                n,
                done: false,
            }
        }

        fn absorb(&mut self, id: u64) {
            if !self.heard.contains(&id) {
                self.heard.push(id);
            }
        }
    }

    impl NodeAlgorithm for Gossip {
        type Msg = Vec<u64>;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<Vec<u64>> {
            self.absorb(ctx.id);
            vec![Outgoing::Broadcast(self.heard.clone())]
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext,
            inbox: &Inbox<Vec<u64>>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<Vec<u64>> {
            for (_, ids) in inbox {
                for &id in ids.iter() {
                    self.absorb(id);
                }
            }
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                self.done = true;
                return Vec::new();
            }
            vec![Outgoing::Broadcast(self.heard.clone())]
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            if self.heard.len() == self.n {
                Decision::Reject // "heard everyone" is the detection event
            } else {
                Decision::Accept
            }
        }
    }

    fn gossip_sim(g: &graphlib::Graph, cfg: ReliableConfig, n: usize) -> Simulation<'_> {
        Simulation::on(g)
            .bandwidth(Bandwidth::Bits(cfg.required_bandwidth(64 * n)))
            .max_rounds(cfg.physical_rounds(2 * n + 1))
            .reliable_config(cfg)
    }

    #[test]
    fn lossless_reliable_matches_bare_run() {
        let n = 5;
        let g = generators::path(n);
        let cfg = ReliableConfig::default();
        let bare = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64 * n))
            .run(|_| Gossip::new(n))
            .unwrap();
        let (rel, nodes) = gossip_sim(&g, cfg, n)
            .run_with_nodes(|_| Gossip::new(n))
            .unwrap();
        assert_eq!(bare.decisions, rel.decisions);
        assert!(nodes.iter().all(|nd| nd.heard.len() == n));
        assert_eq!(rel.faults.retransmissions, 0);
        assert!(rel.completed);
        assert!(rel.degraded.is_none(), "a clean run is not degraded");
    }

    #[test]
    fn windowed_pipeline_beats_stop_and_wait() {
        // The acceptance property in miniature: stop-and-wait (window 1)
        // pays two physical rounds per virtual round even losslessly; a
        // window ≥ 2 self-clocks at one round per virtual round.
        let n = 5;
        let g = generators::path(n);
        let windowed = gossip_sim(&g, ReliableConfig::default(), n)
            .run(|_| Gossip::new(n))
            .unwrap();
        let sw_cfg = ReliableConfig {
            window: 1,
            ..ReliableConfig::default()
        };
        let sw = gossip_sim(&g, sw_cfg, n).run(|_| Gossip::new(n)).unwrap();
        assert_eq!(windowed.decisions, sw.decisions);
        assert!(
            2 * windowed.stats.rounds <= sw.stats.rounds + 10,
            "windowed {} rounds vs stop-and-wait {}",
            windowed.stats.rounds,
            sw.stats.rounds
        );
    }

    #[test]
    fn reliable_charges_header_overhead() {
        let n = 3;
        let g = generators::path(n);
        let cfg = ReliableConfig::default();
        let bare = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64 * n))
            .run(|_| Gossip::new(n))
            .unwrap();
        let rel = gossip_sim(&g, cfg, n).run(|_| Gossip::new(n)).unwrap();
        assert!(
            rel.stats.total_bits > bare.stats.total_bits,
            "headers and acks must cost bits: {} vs {}",
            rel.stats.total_bits,
            bare.stats.total_bits
        );
    }

    /// A single-shot relay along a path: node 0 launches a token, every
    /// inner node forwards it exactly once, the last node rejects on
    /// receipt. One lost hop kills the whole run — the most fragile
    /// protocol possible, and exactly what ARQ exists to repair.
    #[derive(Debug, Clone)]
    struct Relay {
        forwarded: bool,
        got: bool,
        done: bool,
    }

    impl Relay {
        fn new() -> Self {
            Relay {
                forwarded: false,
                got: false,
                done: false,
            }
        }
    }

    impl NodeAlgorithm for Relay {
        type Msg = u8;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<u8> {
            if ctx.index == 0 {
                self.done = true;
                vec![Outgoing::Unicast(0, 1)]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            ctx: &NodeContext,
            inbox: &Inbox<u8>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<u8> {
            if self.done || inbox.is_empty() {
                return Vec::new();
            }
            self.done = true;
            // Path adjacency is sorted, so the port toward the higher
            // neighbor is the last one; a degree-1 non-zero node is the
            // end of the line.
            if ctx.degree() == 1 {
                self.got = true;
                Vec::new()
            } else {
                self.forwarded = true;
                vec![Outgoing::Unicast(1, 1)]
            }
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            if self.got {
                Decision::Reject
            } else {
                Decision::Accept
            }
        }
    }

    #[test]
    fn reliable_recovers_relay_under_loss() {
        let n = 6;
        let g = generators::path(n);
        let loss = FaultSpec::IndependentLoss(0.3);
        // Bare run under 30% loss: the token must survive 5 independent
        // hops (P ≈ 0.17); verify this seed actually breaks it.
        let bare = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(8))
            .max_rounds(4 * n)
            .seed(5)
            .faults(loss.clone())
            .run(|_| Relay::new())
            .unwrap();
        assert!(
            !bare.network_rejects(),
            "seed 5 should break the bare run (got {:?})",
            bare.decisions
        );

        let cfg = ReliableConfig::default();
        let rel = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(cfg.required_bandwidth(8)))
            .max_rounds(cfg.physical_rounds(2 * n))
            .seed(5)
            .faults(loss)
            .reliable_config(cfg)
            .run(|_| Relay::new())
            .unwrap();
        assert!(
            rel.network_rejects(),
            "reliable transport should repair the relay: {}",
            rel.faults.summary()
        );
        assert!(rel.faults.retransmissions > 0);
        assert!(rel.completed, "all nodes should halt once the token lands");
        // The per-round series is aligned with the executed rounds and sums
        // back to the run total.
        assert_eq!(rel.faults.retransmissions_per_round.len(), rel.stats.rounds);
        assert_eq!(
            rel.faults.retransmissions_per_round.iter().sum::<u64>(),
            rel.faults.retransmissions
        );
        // So does the per-link series (CSR directed-edge order).
        assert_eq!(rel.faults.retransmissions_per_link.len(), 2 * (n - 1));
        assert_eq!(
            rel.faults.retransmissions_per_link.iter().sum::<u64>(),
            rel.faults.retransmissions
        );
    }

    #[test]
    fn reliable_survives_corruption() {
        let n = 4;
        let g = generators::path(n);
        let cfg = ReliableConfig::default();
        // Corrupt 30% of frames: checksums catch them, retransmits repair.
        let (rel, nodes) = gossip_sim(&g, cfg, n)
            .seed(2)
            .faults(FaultSpec::BitFlip(0.3))
            .run_with_nodes(|_| Gossip::new(n))
            .unwrap();
        assert!(rel.network_rejects(), "{}", rel.faults.summary());
        assert!(nodes.iter().all(|nd| nd.heard.len() == n));
        assert!(rel.faults.corrupted > 0, "{}", rel.faults.summary());
        assert!(rel.faults.retransmissions > 0);
    }

    #[test]
    fn reliable_run_is_seed_deterministic() {
        let n = 5;
        let g = generators::path(n);
        let cfg = ReliableConfig::default();
        let run = || {
            gossip_sim(&g, cfg, n)
                .seed(77)
                .faults(FaultSpec::IndependentLoss(0.25))
                .run(|_| Gossip::new(n))
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.stats.total_bits, b.stats.total_bits);
    }

    #[test]
    fn backoff_tallies_fire_under_heavy_loss() {
        let n = 5;
        let g = generators::path(n);
        let cfg = ReliableConfig::default();
        let rel = gossip_sim(&g, cfg, n)
            .seed(12)
            .faults(FaultSpec::IndependentLoss(0.6))
            .run(|_| Gossip::new(n))
            .unwrap();
        assert!(rel.faults.retransmissions > 0);
        assert!(
            rel.faults.backoff_events > 0,
            "60% loss should force third-or-later attempts: {}",
            rel.faults.summary()
        );
    }

    #[test]
    fn rmsg_bit_sizes_are_exact() {
        let data: RMsg<u64> = RMsg::Data {
            seq: 1,
            check: 0,
            fin: false,
            payload: Arc::new(vec![7, 8]),
        };
        assert_eq!(data.bit_size(), DATA_HEADER_BITS + 128);
        let ack: RMsg<u64> = RMsg::Ack {
            cum: 1,
            sack: 0,
            check: 0,
        };
        assert_eq!(ack.bit_size(), ACK_BITS);
    }

    #[test]
    fn retransmissions_reuse_the_queued_bundle() {
        // The send pass must charge the cached frame size and re-send the
        // same payload allocation — a retransmission is an Arc bump, never
        // a deep copy or a second payload walk.
        let mut rel = Reliable::new(Gossip::new(2), ReliableConfig::default());
        rel.send = vec![SendLink::new(2)];
        rel.recv = vec![RecvLink::new()];
        rel.retrans_per_port = vec![0];
        rel.queue(vec![Outgoing::Unicast(0, vec![1u64, 2, 3])], 1, false);
        let f = &rel.send[0].frames[0];
        assert_eq!(f.bits, DATA_HEADER_BITS + payload_bits(&f.payload));
        let queued = Arc::clone(&f.payload);
        let mut first = Vec::new();
        rel.pump(0, &mut first);
        let mut second = Vec::new();
        rel.pump(100, &mut second); // well past the RTO: forces a retransmit
        assert_eq!(rel.retransmissions, 1);
        let sent = |out: &Outbox<RMsg<Vec<u64>>>| match &out[0] {
            Outgoing::Unicast(0, RMsg::Data { payload, .. }) => Arc::clone(payload),
            other => panic!("expected a data frame on port 0, got {other:?}"),
        };
        assert!(Arc::ptr_eq(&queued, &sent(&first)));
        assert!(Arc::ptr_eq(&queued, &sent(&second)));
    }

    #[test]
    fn corrupted_frames_fail_their_checksums() {
        let payload = vec![1u64, 2, 3];
        let check = data_check(4, false, &payload);
        for bit in [0, 9, 33, 48] {
            let mut msg: RMsg<u64> = RMsg::Data {
                seq: 4,
                check,
                fin: false,
                payload: Arc::new(payload.clone()),
            };
            assert!(msg.corrupt_bit(bit));
            match msg {
                RMsg::Data {
                    seq,
                    check,
                    fin,
                    payload,
                } => assert_ne!(
                    check,
                    data_check(seq, fin, &payload),
                    "flip of bit {bit} must be detected"
                ),
                _ => unreachable!(),
            }
        }
        for bit in [0, 35, 50] {
            let mut ack: RMsg<u64> = RMsg::Ack {
                cum: 9,
                sack: 0b101,
                check: ack_check(9, 0b101),
            };
            assert!(ack.corrupt_bit(bit));
            match ack {
                RMsg::Ack { cum, sack, check } => assert_ne!(
                    check,
                    ack_check(cum, sack),
                    "ack flip of bit {bit} must be detected"
                ),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_tunings() {
        assert!(ReliableConfig::default().validate().is_ok());
        let bad = [
            ReliableConfig {
                window: 0,
                ack_timeout: 2,
                max_retries: 4,
            },
            ReliableConfig {
                window: MAX_WINDOW + 1,
                ack_timeout: 2,
                max_retries: 4,
            },
            ReliableConfig {
                window: 8,
                ack_timeout: 0,
                max_retries: 4,
            },
            ReliableConfig {
                window: 8,
                ack_timeout: 2,
                max_retries: 0,
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?} should be rejected");
        }
    }

    #[test]
    #[should_panic(expected = "invalid ReliableConfig")]
    fn constructor_panics_on_zero_window() {
        let _ = ReliableConfig::new(0, 2, 4);
    }
}
