//! Reliable transport over a faulty CONGEST network.
//!
//! [`Reliable<A>`] wraps any [`NodeAlgorithm`] in a frame-synchronized
//! ARQ (automatic repeat request) layer: every *virtual* round of the inner
//! algorithm is transported over `frame_rounds` *physical* engine rounds,
//! during which each per-port message bundle is sent with a sequence number
//! and checksum, acknowledged by the receiver, and retransmitted on timeout
//! up to a bounded retry budget. Drops are repaired by retransmission;
//! corrupted frames fail their checksum, go unacknowledged, and are
//! retransmitted too.
//!
//! The protocol overhead is charged through the normal engine accounting —
//! headers, acks, and retransmissions all cost real bits, so [`RunStats`]
//! of a reliable run reflect the true price of reliability. Per-node
//! retransmission and give-up counts surface through
//! [`Reliable::retransmissions`] / [`Reliable::given_up`], and
//! [`run_reliable`] folds them into the run's
//! [`FaultReport`](crate::faults::FaultReport).
//!
//! Limits: the adapter converts broadcasts into per-port sends, so it
//! cannot run under a `broadcast_only` engine; it synchronizes on the
//! global round clock, so it assumes crash-free *clocks* (crashed nodes
//! simply never ack, which the retry budget bounds); and reliability is
//! best-effort — a frame whose every transmission is lost is given up, not
//! blocked on forever (counted in [`Reliable::given_up`]).
//!
//! [`RunStats`]: crate::stats::RunStats

use crate::engine::{CongestError, Engine, RunOutcome};
use crate::message::{BitSize, Payload};
use crate::node::{Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing};
use crate::obsv::profile::{prof_record, prof_start, Profiler, Section};
use rand_chacha::ChaCha8Rng;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Wire envelope of the reliable layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RMsg<M> {
    /// A data frame: every inner message the sender addressed to this port
    /// in virtual round `vround`, plus a payload checksum.
    Data {
        /// Virtual round the bundle belongs to (doubles as sequence number:
        /// stop-and-wait sends exactly one bundle per port per frame).
        vround: u32,
        /// 16-bit checksum over `(vround, payload)`.
        check: u16,
        /// The bundled inner messages.
        payload: Vec<M>,
    },
    /// Acknowledges receipt of the `vround` data frame on this link.
    Ack {
        /// Virtual round being acknowledged.
        vround: u32,
    },
}

/// Header cost of a data frame in bits: 1 (tag) + 32 (vround) + 16
/// (checksum) + 8 (bundle length).
pub const DATA_HEADER_BITS: usize = 1 + 32 + 16 + 8;
/// Cost of an ack in bits: 1 (tag) + 32 (vround).
pub const ACK_BITS: usize = 1 + 32;

impl<M: BitSize> BitSize for RMsg<M> {
    fn bit_size(&self) -> usize {
        match self {
            RMsg::Data { payload, .. } => {
                DATA_HEADER_BITS + payload.iter().map(BitSize::bit_size).sum::<usize>()
            }
            RMsg::Ack { .. } => ACK_BITS,
        }
    }

    fn corrupt_bit(&mut self, bit_index: usize) -> bool {
        // The envelope's header fields are literal wire bits, so the
        // reliable layer is corruptible even when the inner payload is a
        // structured value: flipping a checksum (or ack sequence) bit is
        // detected by the receiver (or sender) and repaired by
        // retransmission — exactly the failure mode ARQ exists for.
        match self {
            RMsg::Data { check, .. } => {
                *check ^= 1 << (bit_index % 16);
                true
            }
            RMsg::Ack { vround } => {
                *vround ^= 1 << (bit_index % 32);
                true
            }
        }
    }
}

fn checksum<M: Hash>(vround: u32, payload: &[M]) -> u16 {
    let mut h = graphlib::hash::FxHasher::default();
    vround.hash(&mut h);
    payload.len().hash(&mut h);
    for m in payload {
        m.hash(&mut h);
    }
    (h.finish() >> 48) as u16
}

/// Tuning of the reliable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Physical engine rounds per virtual round (the frame width). Larger
    /// frames leave room for more retransmission attempts.
    pub frame_rounds: usize,
    /// Slots to wait for an ack before retransmitting (at least 2: one slot
    /// for the data to arrive, one for the ack to return).
    pub ack_timeout: usize,
    /// Retransmissions per frame after the initial send.
    pub max_retries: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            frame_rounds: 12,
            ack_timeout: 2,
            max_retries: 4,
        }
    }
}

impl ReliableConfig {
    /// Validated constructor.
    pub fn new(frame_rounds: usize, ack_timeout: usize, max_retries: usize) -> Self {
        assert!(frame_rounds >= 1, "a frame needs at least one slot");
        assert!(ack_timeout >= 2, "acks take two slots to round-trip");
        ReliableConfig {
            frame_rounds,
            ack_timeout,
            max_retries,
        }
    }

    /// Engine bandwidth needed to carry `inner_bits` of inner per-port
    /// traffic per virtual round (the worst slot carries one full data
    /// frame plus one ack).
    pub fn required_bandwidth(&self, inner_bits: usize) -> usize {
        DATA_HEADER_BITS + inner_bits + ACK_BITS
    }

    /// Physical engine rounds needed for `virtual_rounds` inner rounds.
    pub fn physical_rounds(&self, virtual_rounds: usize) -> usize {
        self.frame_rounds * (virtual_rounds + 1)
    }
}

/// Per-port sender state for the current frame.
#[derive(Debug, Clone)]
struct OutFrame<M> {
    vround: u32,
    check: u16,
    payload: Vec<M>,
    /// Slot of the last transmission, or `None` before the initial send
    /// (which happens at the previous frame boundary, slot `-1` in effect).
    last_sent: Option<usize>,
    retries_left: usize,
    acked: bool,
}

/// A [`NodeAlgorithm`] adapter adding sequence numbers, acknowledgements,
/// and bounded retransmission on top of any inner algorithm (see the
/// module docs for the protocol).
#[derive(Clone)]
pub struct Reliable<A: NodeAlgorithm> {
    inner: A,
    cfg: ReliableConfig,
    /// Sender state, per port.
    out_pending: Vec<Option<OutFrame<A::Msg>>>,
    /// Receiver state, per port: the bundle accepted for the current frame.
    in_got: Vec<Option<Vec<A::Msg>>>,
    retransmissions: u64,
    /// Retransmissions by physical round (index `r - 1` for round `r`),
    /// grown lazily — empty until the first retransmission.
    retrans_per_round: Vec<u64>,
    given_up: u64,
    profiler: Option<Arc<Profiler>>,
}

impl<A: NodeAlgorithm> Reliable<A>
where
    A::Msg: Hash,
{
    /// Wraps `inner` with the given transport tuning.
    pub fn new(inner: A, cfg: ReliableConfig) -> Self {
        Reliable {
            inner,
            cfg,
            out_pending: Vec::new(),
            in_got: Vec::new(),
            retransmissions: 0,
            retrans_per_round: Vec::new(),
            given_up: 0,
            profiler: None,
        }
    }

    /// Attaches the engine self-profiler so the retransmit scan is timed
    /// under [`Section::ArqRetransmit`] (see [`crate::obsv::profile`]).
    pub fn with_profiler(mut self, p: Arc<Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the inner algorithm.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Data frames this node retransmitted.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Retransmissions by physical round: entry `r - 1` counts the data
    /// frames this node resent in engine round `r`. The vector only
    /// reaches up to the last round with a retransmission; later rounds
    /// are implicitly zero.
    pub fn retransmissions_per_round(&self) -> &[u64] {
        &self.retrans_per_round
    }

    /// Frames never acknowledged by their frame boundary (delivery
    /// unconfirmed; the data may still have arrived if only acks were
    /// lost).
    pub fn given_up(&self) -> u64 {
        self.given_up
    }

    /// Splits an inner outbox into per-port bundles and emits the initial
    /// transmissions (called at a frame boundary, so they arrive in slot 0
    /// of the next frame).
    fn queue_and_send(
        &mut self,
        inner_out: Outbox<A::Msg>,
        vround: u32,
        out: &mut Outbox<RMsg<A::Msg>>,
    ) {
        let ports = self.out_pending.len();
        let mut bundles: Vec<Vec<A::Msg>> = vec![Vec::new(); ports];
        for og in inner_out {
            match og {
                Outgoing::Unicast(p, m) => bundles[p].push(m),
                Outgoing::Broadcast(m) => {
                    for b in bundles.iter_mut() {
                        b.push(m.clone());
                    }
                }
            }
        }
        for (p, payload) in bundles.into_iter().enumerate() {
            if payload.is_empty() {
                self.out_pending[p] = None;
                continue;
            }
            let check = checksum(vround, &payload);
            out.push(Outgoing::Unicast(
                p,
                RMsg::Data {
                    vround,
                    check,
                    payload: payload.clone(),
                },
            ));
            self.out_pending[p] = Some(OutFrame {
                vround,
                check,
                payload,
                last_sent: None,
                retries_left: self.cfg.max_retries,
                acked: false,
            });
        }
    }
}

impl<A: NodeAlgorithm> NodeAlgorithm for Reliable<A>
where
    A::Msg: Hash,
{
    type Msg = RMsg<A::Msg>;

    fn init(&mut self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<Self::Msg> {
        let ports = ctx.neighbor_ids.len();
        self.out_pending = vec![None; ports];
        self.in_got = vec![None; ports];
        let inner_out = self.inner.init(ctx, rng);
        let mut out = Vec::new();
        self.queue_and_send(inner_out, 1, &mut out);
        out
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<Self::Msg>,
        rng: &mut ChaCha8Rng,
    ) -> Outbox<Self::Msg> {
        let w = self.cfg.frame_rounds;
        let slot = (ctx.round - 1) % w;
        let vround = ((ctx.round - 1) / w + 1) as u32;
        let last_slot = w - 1;
        let mut out: Outbox<Self::Msg> = Vec::new();

        // 1. Process arrivals: accept checksum-valid data for the current
        //    frame (acking duplicates too — our earlier ack may have been
        //    lost), and mark acked sender frames.
        for (p, msg) in inbox {
            match &**msg {
                RMsg::Data {
                    vround: vr,
                    check,
                    payload,
                } => {
                    if *vr == vround && *check == checksum(*vr, payload) {
                        if self.in_got[*p].is_none() {
                            self.in_got[*p] = Some(payload.clone());
                        }
                        // No acks in the last slot: the sender's frame is
                        // finished either way, and a late ack would leak
                        // into the next frame.
                        if slot < last_slot {
                            out.push(Outgoing::Unicast(*p, RMsg::Ack { vround: *vr }));
                        }
                    }
                    // Checksum mismatch or stale frame: stay silent; the
                    // sender's timeout handles it.
                }
                RMsg::Ack { vround: vr } => {
                    if let Some(f) = &mut self.out_pending[*p] {
                        if f.vround == *vr {
                            f.acked = true;
                        }
                    }
                }
            }
        }

        // 2. Retransmit timed-out frames (never in the last slot — those
        //    sends could not be acked in time anyway).
        let t_arq = prof_start(self.profiler.as_deref());
        if slot < last_slot {
            for (p, pending) in self.out_pending.iter_mut().enumerate() {
                if let Some(f) = pending {
                    if f.acked || f.retries_left == 0 {
                        continue;
                    }
                    // The initial send left at the previous frame boundary
                    // and arrived in slot 0, so its ack is due in slot
                    // `ack_timeout - 1`; a retransmission in slot `s`
                    // arrives in `s + 1` with the ack due `ack_timeout`
                    // later.
                    let due = match f.last_sent {
                        None => self.cfg.ack_timeout - 1,
                        Some(s) => s + self.cfg.ack_timeout,
                    };
                    if slot >= due {
                        out.push(Outgoing::Unicast(
                            p,
                            RMsg::Data {
                                vround: f.vround,
                                check: f.check,
                                payload: f.payload.clone(),
                            },
                        ));
                        f.last_sent = Some(slot);
                        f.retries_left -= 1;
                        self.retransmissions += 1;
                        if self.retrans_per_round.len() < ctx.round {
                            self.retrans_per_round.resize(ctx.round, 0);
                        }
                        self.retrans_per_round[ctx.round - 1] += 1;
                    }
                }
            }
        }
        prof_record(self.profiler.as_deref(), Section::ArqRetransmit, t_arq);

        // 3. Frame boundary: close out the transport state and run one
        //    virtual round of the inner algorithm.
        if slot == last_slot {
            for pending in self.out_pending.iter_mut() {
                if let Some(f) = pending.take() {
                    if !f.acked {
                        self.given_up += 1;
                    }
                }
            }
            let mut vinbox: Inbox<A::Msg> = Vec::new();
            for (p, got) in self.in_got.iter_mut().enumerate() {
                if let Some(bundle) = got.take() {
                    for m in bundle {
                        vinbox.push((p, Payload::Owned(m)));
                    }
                }
            }
            if !self.inner.halted() {
                let vctx = NodeContext {
                    round: vround as usize,
                    ..ctx.clone()
                };
                let inner_out = self.inner.on_round(&vctx, &vinbox, rng);
                self.queue_and_send(inner_out, vround + 1, &mut out);
            }
        }

        out
    }

    fn halted(&self) -> bool {
        self.inner.halted() && self.out_pending.iter().all(Option::is_none)
    }

    fn decision(&self) -> Decision {
        self.inner.decision()
    }
}

/// Runs `make(v)`-constructed nodes under the reliable transport, folding
/// the per-node retransmission / give-up counts into the outcome's
/// [`FaultReport`](crate::faults::FaultReport) and unwrapping the final
/// inner states.
#[deprecated(note = "use `congest::Simulation::reliable_config(cfg).run(make)` instead")]
pub fn run_reliable<A, F>(
    engine: &Engine<'_>,
    cfg: ReliableConfig,
    make: F,
) -> Result<(RunOutcome, Vec<A>), CongestError>
where
    A: NodeAlgorithm,
    A::Msg: Hash,
    F: Fn(usize) -> A + Sync,
{
    run_reliable_impl(engine, cfg, make)
}

/// The transport run behind [`run_reliable`] (deprecated shim) and
/// [`Simulation`](crate::Simulation)'s reliable route. Emits a
/// [`SimEvent::TransportSummary`](crate::obsv::SimEvent) through the
/// engine's collector once the tallies are known.
pub(crate) fn run_reliable_impl<A, F>(
    engine: &Engine<'_>,
    cfg: ReliableConfig,
    make: F,
) -> Result<(RunOutcome, Vec<A>), CongestError>
where
    A: NodeAlgorithm,
    A::Msg: Hash,
    F: Fn(usize) -> A + Sync,
{
    let prof = engine.profiler_handle().cloned();
    let (mut outcome, nodes) = engine.run_nodes_impl(|v| {
        let node = Reliable::new(make(v), cfg);
        match &prof {
            Some(p) => node.with_profiler(Arc::clone(p)),
            None => node,
        }
    })?;
    outcome.faults.retransmissions = nodes.iter().map(Reliable::retransmissions).sum();
    outcome.faults.given_up = nodes.iter().map(Reliable::given_up).sum();
    // Fold the per-node, per-physical-round retransmission counts into one
    // run-wide series aligned with `dropped_per_round` (padded with zeros
    // out to the executed round count).
    let mut per_round = vec![0u64; outcome.stats.rounds];
    for nd in &nodes {
        for (i, &c) in nd.retransmissions_per_round().iter().enumerate() {
            if let Some(slot) = per_round.get_mut(i) {
                *slot += c;
            }
        }
    }
    outcome.faults.retransmissions_per_round = per_round;
    if let Some(c) = engine.collector_handle() {
        c.record(&crate::obsv::SimEvent::TransportSummary {
            retransmissions: outcome.faults.retransmissions,
            given_up: outcome.faults.given_up,
        });
    }
    Ok((
        outcome,
        nodes.into_iter().map(Reliable::into_inner).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Bandwidth;
    use crate::faults::FaultSpec;
    use crate::simulation::Simulation;
    use graphlib::generators;

    /// Each node broadcasts its id for `depth` virtual rounds, collecting
    /// the set of ids heard; rejects iff it heard every other id. On a
    /// path, hearing everyone requires `n - 1` relay rounds to succeed
    /// end-to-end — a protocol that is very fragile under loss.
    #[derive(Debug, Clone)]
    struct Gossip {
        heard: Vec<u64>,
        rounds_left: usize,
        n: usize,
        done: bool,
    }

    impl Gossip {
        fn new(n: usize) -> Self {
            Gossip {
                heard: Vec::new(),
                rounds_left: 2 * n,
                n,
                done: false,
            }
        }

        fn absorb(&mut self, id: u64) {
            if !self.heard.contains(&id) {
                self.heard.push(id);
            }
        }
    }

    impl NodeAlgorithm for Gossip {
        type Msg = Vec<u64>;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<Vec<u64>> {
            self.absorb(ctx.id);
            vec![Outgoing::Broadcast(self.heard.clone())]
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext,
            inbox: &Inbox<Vec<u64>>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<Vec<u64>> {
            for (_, ids) in inbox {
                for &id in ids.iter() {
                    self.absorb(id);
                }
            }
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                self.done = true;
                return Vec::new();
            }
            vec![Outgoing::Broadcast(self.heard.clone())]
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            if self.heard.len() == self.n {
                Decision::Reject // "heard everyone" is the detection event
            } else {
                Decision::Accept
            }
        }
    }

    fn gossip_sim(g: &graphlib::Graph, cfg: ReliableConfig, n: usize) -> Simulation<'_> {
        Simulation::on(g)
            .bandwidth(Bandwidth::Bits(cfg.required_bandwidth(64 * n)))
            .max_rounds(cfg.physical_rounds(2 * n + 1))
            .reliable_config(cfg)
    }

    #[test]
    fn lossless_reliable_matches_bare_run() {
        let n = 5;
        let g = generators::path(n);
        let cfg = ReliableConfig::default();
        let bare = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64 * n))
            .run(|_| Gossip::new(n))
            .unwrap();
        let (rel, nodes) = gossip_sim(&g, cfg, n)
            .run_with_nodes(|_| Gossip::new(n))
            .unwrap();
        assert_eq!(bare.decisions, rel.decisions);
        assert!(nodes.iter().all(|nd| nd.heard.len() == n));
        assert_eq!(rel.faults.retransmissions, 0);
        assert!(rel.completed);
    }

    #[test]
    fn reliable_charges_header_overhead() {
        let n = 3;
        let g = generators::path(n);
        let cfg = ReliableConfig::default();
        let bare = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64 * n))
            .run(|_| Gossip::new(n))
            .unwrap();
        let rel = gossip_sim(&g, cfg, n).run(|_| Gossip::new(n)).unwrap();
        assert!(
            rel.stats.total_bits > bare.stats.total_bits,
            "headers and acks must cost bits: {} vs {}",
            rel.stats.total_bits,
            bare.stats.total_bits
        );
    }

    /// A single-shot relay along a path: node 0 launches a token, every
    /// inner node forwards it exactly once, the last node rejects on
    /// receipt. One lost hop kills the whole run — the most fragile
    /// protocol possible, and exactly what ARQ exists to repair.
    #[derive(Debug, Clone)]
    struct Relay {
        forwarded: bool,
        got: bool,
        done: bool,
    }

    impl Relay {
        fn new() -> Self {
            Relay {
                forwarded: false,
                got: false,
                done: false,
            }
        }
    }

    impl NodeAlgorithm for Relay {
        type Msg = u8;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<u8> {
            if ctx.index == 0 {
                self.done = true;
                vec![Outgoing::Unicast(0, 1)]
            } else {
                Vec::new()
            }
        }

        fn on_round(
            &mut self,
            ctx: &NodeContext,
            inbox: &Inbox<u8>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<u8> {
            if self.done || inbox.is_empty() {
                return Vec::new();
            }
            self.done = true;
            // Path adjacency is sorted, so the port toward the higher
            // neighbor is the last one; a degree-1 non-zero node is the
            // end of the line.
            if ctx.degree() == 1 {
                self.got = true;
                Vec::new()
            } else {
                self.forwarded = true;
                vec![Outgoing::Unicast(1, 1)]
            }
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            if self.got {
                Decision::Reject
            } else {
                Decision::Accept
            }
        }
    }

    #[test]
    fn reliable_recovers_relay_under_loss() {
        let n = 6;
        let g = generators::path(n);
        let loss = FaultSpec::IndependentLoss(0.3);
        // Bare run under 30% loss: the token must survive 5 independent
        // hops (P ≈ 0.17); verify this seed actually breaks it.
        let bare = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(8))
            .max_rounds(4 * n)
            .seed(5)
            .faults(loss.clone())
            .run(|_| Relay::new())
            .unwrap();
        assert!(
            !bare.network_rejects(),
            "seed 5 should break the bare run (got {:?})",
            bare.decisions
        );

        let cfg = ReliableConfig::default();
        let rel = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(cfg.required_bandwidth(8)))
            .max_rounds(cfg.physical_rounds(2 * n))
            .seed(5)
            .faults(loss)
            .reliable_config(cfg)
            .run(|_| Relay::new())
            .unwrap();
        assert!(
            rel.network_rejects(),
            "reliable transport should repair the relay: {}",
            rel.faults.summary()
        );
        assert!(rel.faults.retransmissions > 0);
        assert!(rel.completed, "all nodes should halt once the token lands");
        // The per-round series is aligned with the executed rounds and sums
        // back to the run total.
        assert_eq!(rel.faults.retransmissions_per_round.len(), rel.stats.rounds);
        assert_eq!(
            rel.faults.retransmissions_per_round.iter().sum::<u64>(),
            rel.faults.retransmissions
        );
    }

    #[test]
    fn reliable_survives_corruption() {
        let n = 4;
        let g = generators::path(n);
        let cfg = ReliableConfig::default();
        // Corrupt 30% of frames: checksums catch them, retransmits repair.
        let (rel, nodes) = gossip_sim(&g, cfg, n)
            .seed(2)
            .faults(FaultSpec::BitFlip(0.3))
            .run_with_nodes(|_| Gossip::new(n))
            .unwrap();
        assert!(rel.network_rejects(), "{}", rel.faults.summary());
        assert!(nodes.iter().all(|nd| nd.heard.len() == n));
        assert!(rel.faults.corrupted > 0, "{}", rel.faults.summary());
        assert!(rel.faults.retransmissions > 0);
    }

    #[test]
    fn reliable_run_is_seed_deterministic() {
        let n = 5;
        let g = generators::path(n);
        let cfg = ReliableConfig::default();
        let run = || {
            gossip_sim(&g, cfg, n)
                .seed(77)
                .faults(FaultSpec::IndependentLoss(0.25))
                .run(|_| Gossip::new(n))
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.stats.total_bits, b.stats.total_bits);
    }

    #[test]
    fn rmsg_bit_sizes_are_exact() {
        let data: RMsg<u64> = RMsg::Data {
            vround: 1,
            check: 0,
            payload: vec![7, 8],
        };
        assert_eq!(data.bit_size(), DATA_HEADER_BITS + 128);
        let ack: RMsg<u64> = RMsg::Ack { vround: 1 };
        assert_eq!(ack.bit_size(), ACK_BITS);
    }

    #[test]
    fn corrupted_data_fails_checksum() {
        let payload = vec![1u64, 2, 3];
        let check = checksum(4, &payload);
        let mut msg: RMsg<u64> = RMsg::Data {
            vround: 4,
            check,
            payload,
        };
        assert!(msg.corrupt_bit(9));
        match msg {
            RMsg::Data {
                vround,
                check,
                payload,
            } => assert_ne!(check, checksum(vround, &payload)),
            _ => unreachable!(),
        }
    }
}
