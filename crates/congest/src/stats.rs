//! Traffic and round accounting for simulator runs.
//!
//! Accounting is charged at *send* time: a message dropped or corrupted by
//! a fault model (see [`crate::faults`]) still cost its sender the declared
//! bits — they were put on the wire. Likewise the [`crate::Reliable`]
//! transport's headers, acks, and retransmissions all land in these
//! counters, so the price of recovery is measurable, not hidden. Fault
//! outcomes themselves (drops, corruptions, crashes, retransmission
//! counts) are tallied separately in [`crate::FaultReport`].

use graphlib::Graph;
use std::sync::Arc;

/// Cumulative traffic statistics for one run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Number of communication rounds executed.
    pub rounds: usize,
    /// Total bits sent over all edges and rounds.
    pub total_bits: u64,
    /// Total number of messages sent.
    pub total_messages: u64,
    /// Maximum bits sent over a single directed edge in a single round.
    pub max_edge_round_bits: usize,
    /// Cumulative bits per *directed* edge slot, aligned with the CSR
    /// adjacency order of the topology: slot `offset(u) + p` holds the bits
    /// node `u` sent on its port `p` over the whole run.
    pub directed_edge_bits: Vec<u64>,
    /// CSR offsets (`offset(u)` = start of `u`'s slots), kept so the stats
    /// are interpretable without the topology. `u32` slots shared behind an
    /// `Arc` — for a graph topology this is the *same* allocation as the
    /// `graphlib::Graph` CSR, so cloning a `RunStats` duplicates nothing,
    /// and exporters should prefer [`Self::edges`] over manual offset math.
    pub offsets: Arc<[u32]>,
    /// Bits sent in each round (`per_round_bits[r-1]` for round `r`) — the
    /// traffic time-series, useful for spotting a protocol's phases.
    pub per_round_bits: Vec<u64>,
    /// Messages sent in each round, aligned with [`Self::per_round_bits`].
    pub per_round_messages: Vec<u64>,
}

/// One directed edge's cumulative traffic, as yielded by
/// [`RunStats::edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeTraffic {
    /// Sending node.
    pub node: usize,
    /// Port index on the sender (for the clique backend: the destination
    /// slot in `0..n-1`, skipping the sender itself).
    pub port: usize,
    /// Bits sent over the whole run.
    pub bits: u64,
}

impl RunStats {
    pub(crate) fn new(g: &Graph) -> Self {
        // Shares the graph's own CSR offset allocation — zero copies.
        Self::with_offsets(g.offsets_shared())
    }

    /// Stats over the complete all-to-all topology on `n` nodes (the
    /// congested clique): node `u` has `n - 1` slots, one per other node.
    pub(crate) fn complete(n: usize) -> Self {
        let per = n.saturating_sub(1);
        let offsets: Vec<u32> = (0..=n).map(|v| (v * per) as u32).collect();
        Self::with_offsets(offsets.into())
    }

    fn with_offsets(offsets: Arc<[u32]>) -> Self {
        let slots = offsets.last().copied().unwrap_or(0) as usize;
        RunStats {
            rounds: 0,
            total_bits: 0,
            total_messages: 0,
            max_edge_round_bits: 0,
            directed_edge_bits: vec![0; slots],
            offsets,
            per_round_bits: Vec::new(),
            per_round_messages: Vec::new(),
        }
    }

    /// Bits sent by node `u` over port `p`, cumulative over the run.
    pub fn edge_bits(&self, u: usize, port: usize) -> u64 {
        self.directed_edge_bits[self.offsets[u] as usize + port]
    }

    /// Total bits sent by node `u` over all its ports.
    pub fn node_bits(&self, u: usize) -> u64 {
        self.directed_edge_bits[self.offsets[u] as usize..self.offsets[u + 1] as usize]
            .iter()
            .sum()
    }

    /// Iterates over every directed edge slot with its cumulative bits —
    /// the exporter-friendly view of [`Self::directed_edge_bits`], so no
    /// caller needs to reimplement the CSR offset arithmetic.
    pub fn edges(&self) -> impl Iterator<Item = EdgeTraffic> + '_ {
        (0..self.offsets.len().saturating_sub(1)).flat_map(move |v| {
            let start = self.offsets[v] as usize;
            let end = self.offsets[v + 1] as usize;
            (start..end).map(move |slot| EdgeTraffic {
                node: v,
                port: slot - start,
                bits: self.directed_edge_bits[slot],
            })
        })
    }

    /// Bits crossing the vertex cut `side` (both directions): the total
    /// traffic on edges `{u, v}` with `side[u] != side[v]`. This is the
    /// quantity the §3.3 simulation argument charges to Alice and Bob.
    pub fn bits_across_cut(&self, g: &Graph, side: &[bool]) -> u64 {
        assert_eq!(side.len(), g.n());
        let mut total = 0;
        for u in 0..g.n() {
            for (p, &v) in g.neighbors(u).iter().enumerate() {
                if side[u] != side[v as usize] {
                    total += self.edge_bits(u, p);
                }
            }
        }
        total
    }

    /// Average bits per round across all directed edges.
    pub fn avg_bits_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    #[test]
    fn fresh_stats_are_zero() {
        let g = generators::cycle(4);
        let s = RunStats::new(&g);
        assert_eq!(s.total_bits, 0);
        assert_eq!(s.directed_edge_bits.len(), 8);
        assert_eq!(s.node_bits(0), 0);
    }

    #[test]
    fn cut_accounting() {
        let g = generators::path(3); // 0 - 1 - 2
        let mut s = RunStats::new(&g);
        // Node 1 sends 5 bits to node 0 (its port 0) and 7 bits to node 2.
        s.directed_edge_bits[s.offsets[1] as usize] = 5;
        s.directed_edge_bits[s.offsets[1] as usize + 1] = 7;
        s.total_bits = 12;
        // Cut {0} vs {1,2}: only the 1->0 traffic crosses.
        assert_eq!(s.bits_across_cut(&g, &[true, false, false]), 5);
        // Cut {0,1} vs {2}: only 1->2 crosses.
        assert_eq!(s.bits_across_cut(&g, &[true, true, false]), 7);
        assert_eq!(s.node_bits(1), 12);
    }

    #[test]
    fn edges_iterator_matches_offset_math() {
        let g = generators::path(3);
        let mut s = RunStats::new(&g);
        s.directed_edge_bits[s.offsets[1] as usize] = 5;
        s.directed_edge_bits[s.offsets[1] as usize + 1] = 7;
        let all: Vec<EdgeTraffic> = s.edges().collect();
        assert_eq!(all.len(), s.directed_edge_bits.len());
        for e in &all {
            assert_eq!(e.bits, s.edge_bits(e.node, e.port));
        }
        assert!(all.contains(&EdgeTraffic {
            node: 1,
            port: 1,
            bits: 7
        }));
    }

    #[test]
    fn clone_shares_the_offset_table() {
        let g = generators::clique(6);
        let s = RunStats::new(&g);
        let t = s.clone();
        assert!(Arc::ptr_eq(&s.offsets, &t.offsets));
        // ...and with the topology's own CSR offsets, not a copy.
        assert!(Arc::ptr_eq(&s.offsets, &g.offsets_shared()));
    }

    #[test]
    fn complete_topology_offsets() {
        let s = RunStats::complete(4);
        assert_eq!(&s.offsets[..], &[0, 3, 6, 9, 12]);
        assert_eq!(s.directed_edge_bits.len(), 12);
        assert_eq!(s.edges().count(), 12);
    }
}
