//! The congested-clique model.
//!
//! `n` nodes with an all-to-all communication topology; each ordered pair
//! may exchange `B` bits per round (classically `B = O(log n)`). The input
//! graph is separate from the communication topology: node `v` initially
//! knows its own adjacency row of the input graph. This is the model of the
//! paper's `K_s`-listing bound (§1.1, Lemma 1.3).

use crate::message::BitSize;
use crate::obsv::collect::{span_nanos, span_start, Collector, SimEvent};
use crate::obsv::profile::{prof_record, prof_start, Profiler, Section};
use crate::stats::RunStats;
use graphlib::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::fmt;
use std::sync::Arc;

/// One node's outbox for a round: `(destination, message)` pairs. Node
/// indices are `u32` on the wire (matching the `u32` CSR of
/// [`graphlib::Graph`] and the CONGEST engine's port ids), halving the
/// per-message routing footprint at clique scale.
type PairOutbox<M> = Vec<(u32, M)>;

/// What a congested-clique node knows.
#[derive(Debug, Clone)]
pub struct CliqueContext {
    /// This node's index in `0..n` (indices are public in this model).
    pub index: usize,
    /// Number of nodes.
    pub n: usize,
    /// This node's adjacency row in the *input* graph.
    pub input_neighbors: Vec<u32>,
    /// Current round (0 during init).
    pub round: usize,
}

/// A congested-clique per-node algorithm.
pub trait CliqueAlgorithm: Send {
    /// Message type.
    type Msg: Clone + Send + Sync + BitSize;
    /// Per-node output when the algorithm halts.
    type Output: Send;

    /// Messages to deliver in round 1, as `(destination, payload)` pairs.
    fn init(&mut self, ctx: &CliqueContext, rng: &mut ChaCha8Rng) -> Vec<(u32, Self::Msg)>;

    /// Step with this round's received `(source, payload)` messages.
    fn on_round(
        &mut self,
        ctx: &CliqueContext,
        inbox: &[(u32, Self::Msg)],
        rng: &mut ChaCha8Rng,
    ) -> Vec<(u32, Self::Msg)>;

    /// Whether this node has halted.
    fn halted(&self) -> bool;

    /// Final output.
    fn output(&self) -> Self::Output;
}

/// Errors from the clique engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliqueError {
    /// A node exceeded the per-pair bandwidth in one round.
    BandwidthExceeded {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Bits attempted this round on that pair.
        attempted: usize,
        /// Configured limit.
        limit: usize,
        /// Round of the violation.
        round: usize,
    },
    /// Message addressed outside `0..n` or to the sender itself.
    InvalidDestination {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
    },
}

impl fmt::Display for CliqueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliqueError::BandwidthExceeded {
                from,
                to,
                attempted,
                limit,
                round,
            } => write!(
                f,
                "clique bandwidth exceeded: {from}->{to} sent {attempted} bits \
                 (limit {limit}) in round {round}"
            ),
            CliqueError::InvalidDestination { from, to } => {
                write!(f, "invalid destination {to} from node {from}")
            }
        }
    }
}

impl std::error::Error for CliqueError {}

/// Statistics for a congested-clique run.
#[derive(Debug, Clone)]
pub struct CliqueStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Total bits over all ordered pairs and rounds.
    pub total_bits: u64,
    /// Total messages.
    pub total_messages: u64,
    /// Maximum bits on one ordered pair in one round.
    pub max_pair_round_bits: usize,
}

/// Result of a congested-clique run.
#[derive(Debug)]
pub struct CliqueOutcome<O> {
    /// Per-node outputs.
    pub outputs: Vec<O>,
    /// Traffic statistics.
    pub stats: CliqueStats,
    /// Whether all nodes halted within the round limit.
    pub completed: bool,
}

/// Congested-clique engine over an input graph.
pub struct CliqueEngine<'g> {
    input: &'g Graph,
    bandwidth_bits: usize,
    max_rounds: usize,
    seed: u64,
    collector: Option<Arc<dyn Collector>>,
    profiler: Option<Arc<Profiler>>,
}

impl<'g> CliqueEngine<'g> {
    /// Engine with `B = ceil(log2 n)` bits per ordered pair per round.
    pub fn new(input: &'g Graph) -> Self {
        CliqueEngine {
            bandwidth_bits: crate::message::bits_for_domain(input.n().max(2)),
            max_rounds: 4 * (input.n() + 2) * (input.n() + 2),
            seed: 0,
            collector: None,
            profiler: None,
            input,
        }
    }

    /// Sets the per-pair bandwidth in bits.
    pub fn bandwidth_bits(mut self, b: usize) -> Self {
        self.bandwidth_bits = b;
        self
    }

    /// Caps the number of rounds.
    pub fn max_rounds(mut self, r: usize) -> Self {
        self.max_rounds = r;
        self
    }

    /// Seeds per-node RNG streams.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Installs a structured-event [`Collector`] (see [`crate::obsv`]).
    /// Clique events carry the destination node index in the `port` field.
    pub fn collector(mut self, c: Arc<dyn Collector>) -> Self {
        self.collector = Some(c);
        self
    }

    /// Installs the engine self-profiler (see [`crate::obsv::profile`]).
    pub fn profiler(mut self, p: Arc<Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// The round loop behind
    /// [`Simulation::run_clique`](crate::Simulation::run_clique), the
    /// single public entry point. Also builds a [`RunStats`] over the
    /// complete topology (node `u`'s slot for destination `v` skips `u`
    /// itself), so clique runs export the same per-round series and
    /// congestion numbers CONGEST runs do.
    pub(crate) fn run_impl<A, F>(
        &self,
        make: F,
    ) -> Result<(CliqueOutcome<A::Output>, RunStats), CliqueError>
    where
        A: CliqueAlgorithm,
        F: Fn(usize) -> A + Sync,
    {
        let n = self.input.n();
        let collector = self.collector.as_deref();
        let tracing = collector.is_some();
        let timing = collector.is_some_and(Collector::wants_compute_spans);
        // Mirrors `engine.rs`: deps construction is skipped when no
        // collector asks for provenance; ids and events keep flowing.
        let provenance = collector.is_some_and(Collector::wants_provenance);
        let empty_deps: Arc<[u64]> = Arc::from([]);
        let prof = self.profiler.as_deref();
        let rec = |ev: SimEvent| {
            if let Some(c) = collector {
                c.record(&ev);
            }
        };
        if tracing {
            rec(SimEvent::Meta {
                n,
                bandwidth_bits: self.bandwidth_bits,
                seed: self.seed,
            });
        }
        let mut contexts: Vec<CliqueContext> = (0..n)
            .map(|v| CliqueContext {
                index: v,
                n,
                input_neighbors: self.input.neighbors(v).to_vec(),
                round: 0,
            })
            .collect();
        let mut rngs: Vec<ChaCha8Rng> = (0..n)
            .map(|v| {
                let mut seeder = ChaCha8Rng::seed_from_u64(self.seed);
                let salt: u64 = seeder.gen::<u64>() ^ (v as u64).wrapping_mul(0xD1B54A32D192ED03);
                ChaCha8Rng::seed_from_u64(salt)
            })
            .collect();
        let mut nodes: Vec<A> = (0..n).map(&make).collect();
        let mut stats = CliqueStats {
            rounds: 0,
            total_bits: 0,
            total_messages: 0,
            max_pair_round_bits: 0,
        };
        let mut traffic = RunStats::complete(n);

        let t_init = prof_start(prof);
        let init: Vec<(PairOutbox<A::Msg>, u64)> = nodes
            .par_iter_mut()
            .zip(contexts.par_iter())
            .zip(rngs.par_iter_mut())
            .map(|((node, ctx), rng)| {
                let t = span_start(timing);
                let out = node.init(ctx, rng);
                (out, span_nanos(t))
            })
            .collect();
        prof_record(prof, Section::Compute, t_init);
        if timing {
            for (v, (_, nanos)) in init.iter().enumerate() {
                rec(SimEvent::NodeCompute {
                    round: 0,
                    node: v,
                    nanos: *nanos,
                });
            }
        }
        let mut outboxes: Vec<PairOutbox<A::Msg>> = init.into_iter().map(|(o, _)| o).collect();

        let mut completed = nodes.iter().all(|nd| nd.halted());

        // Per-run buffers, reused every round: inboxes (cleared in place),
        // the per-destination accounting scratch, and the per-node
        // compute-span slots. Destination membership is a packed u64
        // bitmap (`seen_words`) with a word-granular dirty list
        // (`touched_words`, one entry per 64-destination block actually
        // hit), so both the reset and the settlement sweep cost
        // O(distinct destination blocks), not O(n), and settlement walks
        // set bits with `trailing_zeros` instead of a per-destination
        // branch.
        let mut inboxes: Vec<Vec<(u32, A::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut dest_bits: Vec<usize> = vec![0; n];
        let mut seen_words: Vec<u64> = vec![0; n.div_ceil(64)];
        let mut touched_words: Vec<u32> = Vec::new();
        let mut step_nanos: Vec<u64> = vec![u64::MAX; n];

        // Causal provenance (tracing only), mirroring `engine.rs`: ids in
        // node order at accounting time, previous-round delivery sets as
        // the deps stamped on this round's sends.
        let mut next_msg_id: u64 = 0;
        let mut id_base: Vec<u64> = Vec::new();
        let mut prev_delivered: Vec<Vec<u64>> = if provenance {
            (0..n).map(|_| Vec::new()).collect()
        } else {
            Vec::new()
        };
        let mut cur_delivered: Vec<Vec<u64>> = prev_delivered.clone();

        for round in 1..=self.max_rounds {
            if completed && outboxes.iter().all(|o| o.is_empty()) {
                break;
            }
            rec(SimEvent::RoundStart { round });
            let before_bits = traffic.total_bits;
            let before_msgs = traffic.total_messages;

            if tracing {
                id_base.clear();
                let mut next = next_msg_id;
                for ob in &outboxes {
                    id_base.push(next);
                    next += ob.len() as u64;
                }
                next_msg_id = next;
            }

            // Bandwidth accounting per ordered pair. Settlement walks the
            // touched 64-destination blocks in ascending order and the set
            // bits within each word via `trailing_zeros`, so per-pair sums
            // are settled in ascending destination order — in particular,
            // when one outbox overflows several pairs at once the reported
            // `BandwidthExceeded` names the lowest-indexed destination.
            let t_acct = prof_start(prof);
            for (from, outbox) in outboxes.iter().enumerate() {
                if outbox.is_empty() {
                    continue;
                }
                let sender_deps: Option<Arc<[u64]>> = if tracing {
                    if provenance {
                        Some(Arc::from(prev_delivered[from].as_slice()))
                    } else {
                        Some(Arc::clone(&empty_deps))
                    }
                } else {
                    None
                };
                for (idx, (to, m)) in outbox.iter().enumerate() {
                    let to = *to as usize;
                    if to >= n || to == from {
                        return Err(CliqueError::InvalidDestination { from, to });
                    }
                    let w = to >> 6;
                    if seen_words[w] == 0 {
                        touched_words.push(w as u32);
                    }
                    seen_words[w] |= 1u64 << (to & 63);
                    dest_bits[to] += m.bit_size();
                    stats.total_messages += 1;
                    traffic.total_messages += 1;
                    if let Some(deps) = &sender_deps {
                        rec(SimEvent::Send {
                            round,
                            from,
                            port: to,
                            bits: m.bit_size(),
                            msg_id: id_base[from] + idx as u64,
                            deps: Arc::clone(deps),
                        });
                    }
                }
                touched_words.sort_unstable();
                for &w in &touched_words {
                    let mut word = seen_words[w as usize];
                    seen_words[w as usize] = 0;
                    while word != 0 {
                        let to = ((w as usize) << 6) + word.trailing_zeros() as usize;
                        word &= word - 1;
                        let bits = dest_bits[to];
                        dest_bits[to] = 0;
                        if bits > self.bandwidth_bits {
                            return Err(CliqueError::BandwidthExceeded {
                                from,
                                to,
                                attempted: bits,
                                limit: self.bandwidth_bits,
                                round,
                            });
                        }
                        stats.total_bits += bits as u64;
                        stats.max_pair_round_bits = stats.max_pair_round_bits.max(bits);
                        traffic.total_bits += bits as u64;
                        traffic.max_edge_round_bits = traffic.max_edge_round_bits.max(bits);
                        // Node `from`'s slot row has `n - 1` entries, one
                        // per other node, in index order with `from` itself
                        // skipped.
                        let slot =
                            traffic.offsets[from] as usize + if to < from { to } else { to - 1 };
                        traffic.directed_edge_bits[slot] += bits as u64;
                    }
                }
                touched_words.clear();
            }
            stats.rounds = round;
            traffic.rounds = round;
            let round_bits = traffic.total_bits - before_bits;
            let round_msgs = traffic.total_messages - before_msgs;
            traffic.per_round_bits.push(round_bits);
            traffic.per_round_messages.push(round_msgs);
            prof_record(prof, Section::Account, t_acct);

            // Deliver: bucket messages by destination into the reused
            // inboxes. Accounting already read every payload above, so
            // delivery *moves* the messages instead of cloning them, and
            // sender-ascending push order keeps inboxes deterministic.
            let t_deliver = prof_start(prof);
            for inbox in inboxes.iter_mut() {
                inbox.clear();
            }
            if provenance {
                for d in cur_delivered.iter_mut() {
                    d.clear();
                }
            }
            for (from, outbox) in outboxes.iter_mut().enumerate() {
                for (idx, (to, m)) in outbox.drain(..).enumerate() {
                    let to = to as usize;
                    if tracing {
                        let msg_id = id_base[from] + idx as u64;
                        // Clique delivery events reuse `port` for the
                        // sender index (the inbox pairs payloads with their
                        // source, not an incident port).
                        rec(SimEvent::Deliver {
                            round,
                            from,
                            to,
                            port: from,
                            bits: m.bit_size(),
                            msg_id,
                        });
                        if provenance {
                            cur_delivered[to].push(msg_id);
                        }
                    }
                    inboxes[to].push((from as u32, m));
                }
            }
            if provenance {
                std::mem::swap(&mut prev_delivered, &mut cur_delivered);
            }
            prof_record(prof, Section::Deliver, t_deliver);

            // Step, writing each node's new outbox in place (the old ones
            // were drained above) — no per-round collect.
            let t_step = prof_start(prof);
            nodes
                .par_iter_mut()
                .zip(outboxes.par_iter_mut())
                .zip(contexts.par_iter_mut())
                .zip(rngs.par_iter_mut())
                .zip(inboxes.par_iter())
                .zip(step_nanos.par_iter_mut())
                .for_each(|(((((node, outbox), ctx), rng), inbox), nanos)| {
                    if node.halted() {
                        *nanos = u64::MAX;
                    } else {
                        // Update the round in place; cloning the context
                        // would copy `input_neighbors` every round.
                        ctx.round = round;
                        let t = span_start(timing);
                        *outbox = node.on_round(ctx, inbox, rng);
                        *nanos = if timing { span_nanos(t) } else { u64::MAX };
                    }
                });
            prof_record(prof, Section::Compute, t_step);
            if timing {
                for (v, &nanos) in step_nanos.iter().enumerate() {
                    if nanos != u64::MAX {
                        rec(SimEvent::NodeCompute {
                            round,
                            node: v,
                            nanos,
                        });
                    }
                }
            }

            rec(SimEvent::RoundEnd {
                round,
                bits: round_bits,
                messages: round_msgs,
                dropped: 0,
                corrupted: 0,
            });

            completed = nodes.iter().all(|nd| nd.halted());
        }

        Ok((
            CliqueOutcome {
                outputs: nodes.iter().map(|nd| nd.output()).collect(),
                stats,
                completed,
            },
            traffic,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    /// Each node sends its degree to node 0, which sums them up.
    struct DegreeSum {
        acc: u64,
        done: bool,
    }

    impl CliqueAlgorithm for DegreeSum {
        type Msg = u32;
        type Output = u64;

        fn init(&mut self, ctx: &CliqueContext, _rng: &mut ChaCha8Rng) -> Vec<(u32, u32)> {
            if ctx.index == 0 {
                self.acc = ctx.input_neighbors.len() as u64;
                Vec::new()
            } else {
                vec![(0, ctx.input_neighbors.len() as u32)]
            }
        }

        fn on_round(
            &mut self,
            ctx: &CliqueContext,
            inbox: &[(u32, u32)],
            _rng: &mut ChaCha8Rng,
        ) -> Vec<(u32, u32)> {
            if ctx.index == 0 {
                self.acc += inbox.iter().map(|&(_, d)| d as u64).sum::<u64>();
            }
            self.done = true;
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn output(&self) -> u64 {
            self.acc
        }
    }

    #[test]
    fn degree_sum_counts_edges_twice() {
        let g = generators::cycle(6);
        let run = crate::simulation::Simulation::on(&g)
            .bandwidth_bits(32)
            .run_clique(|_| DegreeSum {
                acc: 0,
                done: false,
            })
            .unwrap()
            .into_clique();
        assert!(run.outcome.completed);
        assert_eq!(run.outputs[0], 2 * g.m() as u64);
        // 5 nodes each sent one 32-bit message to node 0.
        assert_eq!(run.stats.total_bits, 5 * 32);
        // The all-to-all traffic stats agree with the clique stats, and the
        // per-pair slots pin exactly who talked to whom.
        assert_eq!(run.outcome.stats.total_bits, 5 * 32);
        assert_eq!(run.outcome.stats.per_round_bits, vec![5 * 32]);
        // Node 1's slot toward node 0 (slot index 0 of its row).
        assert_eq!(run.outcome.stats.edge_bits(1, 0), 32);
        // Node 0 sent nothing.
        assert_eq!(run.outcome.stats.node_bits(0), 0);
    }

    #[test]
    fn clique_bandwidth_enforced() {
        let g = generators::cycle(4);
        let err = crate::simulation::Simulation::on(&g)
            .bandwidth_bits(8)
            .run_clique(|_| DegreeSum {
                acc: 0,
                done: false,
            })
            .unwrap_err();
        assert!(matches!(
            err.as_clique(),
            Some(CliqueError::BandwidthExceeded { .. })
        ));
    }

    #[test]
    fn self_message_rejected() {
        struct SelfSender;
        impl CliqueAlgorithm for SelfSender {
            type Msg = u32;
            type Output = ();
            fn init(&mut self, ctx: &CliqueContext, _r: &mut ChaCha8Rng) -> Vec<(u32, u32)> {
                vec![(ctx.index as u32, 1)]
            }
            fn on_round(
                &mut self,
                _c: &CliqueContext,
                _i: &[(u32, u32)],
                _r: &mut ChaCha8Rng,
            ) -> Vec<(u32, u32)> {
                Vec::new()
            }
            fn halted(&self) -> bool {
                false
            }
            fn output(&self) {}
        }
        let g = generators::cycle(3);
        let err = crate::simulation::Simulation::on(&g)
            .run_clique(|_| SelfSender)
            .unwrap_err();
        assert!(matches!(
            err.as_clique(),
            Some(CliqueError::InvalidDestination { .. })
        ));
    }
}
