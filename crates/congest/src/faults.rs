//! Fault injection for the CONGEST simulator.
//!
//! The paper's algorithms are analyzed in a failure-free synchronous model,
//! but a production message-passing substrate must survive lossy links,
//! crashed nodes, and corrupted payloads. This module extracts message
//! delivery into a [`FaultModel`] trait the engine consults once per
//! delivery, plus a [`FaultSpec`] value type describing model configurations
//! (cloneable, so detector drivers can re-run repetitions with fresh
//! engines), and the [`FaultReport`] the engine attaches to every
//! [`crate::RunOutcome`].
//!
//! Every model is a **deterministic function of the engine seed**: a run
//! with the same topology, algorithm, seed, and fault spec replays
//! byte-for-byte, which keeps chaos tests reproducible and failures
//! bisectable. Randomized detectors must stay *sound* under loss and
//! crashes — they can only miss, never hallucinate, a subgraph — and the
//! chaos suite in `tests/chaos.rs` exercises exactly that claim.

use graphlib::Graph;
use std::hash::{Hash, Hasher};

/// The fate of a single message delivery, as decided by a [`FaultModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver the message intact.
    Deliver,
    /// Silently drop the message (the sender is still charged the bits —
    /// they were put on the wire).
    Drop,
    /// Deliver a corrupted copy: flip the payload bit with this index
    /// (modulo the payload width; see [`crate::message::BitSize::corrupt_bit`]).
    Corrupt(usize),
}

/// Everything a fault model may condition a delivery decision on.
#[derive(Debug, Clone, Copy)]
pub struct DeliveryCtx {
    /// Engine seed (models must derive all randomness from it).
    pub seed: u64,
    /// Round the message is delivered in (1-based).
    pub round: usize,
    /// Sending node index.
    pub from: usize,
    /// Receiving node index.
    pub to: usize,
    /// Port of the receiver the message arrives on.
    pub to_port: usize,
    /// Directed-edge slot of the `from -> to` link in CSR order
    /// (`offsets[from] + from_port`) — a stable per-link key.
    pub link_slot: usize,
    /// Index of the message in the sender's outbox this round.
    pub msg_index: usize,
    /// Declared wire size of the message in bits.
    pub bits: usize,
}

/// Maps arbitrary keys to a uniform `[0, 1)` double, deterministically.
/// The single source of randomness for all stateless fault models.
pub fn unit_hash<K: Hash>(key: K) -> f64 {
    let mut h = graphlib::hash::FxHasher::default();
    key.hash(&mut h);
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

/// Like [`unit_hash`] but returns the raw 64-bit hash.
pub fn raw_hash<K: Hash>(key: K) -> u64 {
    let mut h = graphlib::hash::FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// A pluggable fault process over one engine run.
///
/// The engine calls [`FaultModel::reset`] once before round 1,
/// [`FaultModel::begin_round`] at the top of every round (single-threaded,
/// so stateful models may advance Markov chains here), then
/// [`FaultModel::delivery`] for every message delivery and
/// [`FaultModel::crashed`] for every node (both from the data-parallel
/// section, hence `&self` and `Send + Sync`).
pub trait FaultModel: Send + Sync {
    /// Re-initializes internal state for a fresh run over `topology`.
    fn reset(&mut self, topology: &Graph, seed: u64) {
        let _ = (topology, seed);
    }

    /// Advances per-round state (e.g. Gilbert–Elliott channel chains).
    fn begin_round(&mut self, round: usize) {
        let _ = round;
    }

    /// Decides the fate of one delivery.
    fn delivery(&self, ctx: &DeliveryCtx) -> Delivery {
        let _ = ctx;
        Delivery::Deliver
    }

    /// Whether `node` is crashed in `round` (crash-stop: once true for some
    /// round, it must stay true for all later rounds).
    fn crashed(&self, node: usize, round: usize, seed: u64) -> bool {
        let _ = (node, round, seed);
        false
    }

    /// Short human-readable name for traces and reports.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Independent loss
// ---------------------------------------------------------------------------

/// Each delivery is lost independently with probability `p` — the classic
/// packet-erasure channel (absorbs the engine's legacy `loss_rate` knob).
#[derive(Debug, Clone, PartialEq)]
pub struct IndependentLoss {
    /// Loss probability per delivery.
    pub p: f64,
}

impl IndependentLoss {
    /// A channel losing each message with probability `p`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss rate must be a probability");
        IndependentLoss { p }
    }
}

impl FaultModel for IndependentLoss {
    fn delivery(&self, ctx: &DeliveryCtx) -> Delivery {
        if self.p > 0.0
            // Keyed exactly as the engine's original `loss_rate` hash so
            // pre-existing seeded runs replay unchanged.
            && unit_hash((ctx.seed, ctx.round, ctx.to, ctx.to_port, ctx.msg_index)) < self.p
        {
            Delivery::Drop
        } else {
            Delivery::Deliver
        }
    }

    fn name(&self) -> &'static str {
        "independent-loss"
    }
}

// ---------------------------------------------------------------------------
// Bursty loss (Gilbert–Elliott)
// ---------------------------------------------------------------------------

/// Two-state Gilbert–Elliott channel per directed link: a `Good` state with
/// low loss and a `Bad` state with high loss, switching with the given
/// per-round transition probabilities. Models bursty real-network loss that
/// independent-loss models miss (consecutive rounds failing together).
#[derive(Debug, Clone, PartialEq)]
pub struct GilbertElliott {
    /// P(Good -> Bad) per round.
    pub p_good_to_bad: f64,
    /// P(Bad -> Good) per round.
    pub p_bad_to_good: f64,
    /// Loss probability while Good.
    pub loss_good: f64,
    /// Loss probability while Bad.
    pub loss_bad: f64,
    /// Per-directed-link state for the current round (true = Bad), indexed
    /// by CSR link slot. Rebuilt by `reset`, advanced by `begin_round`.
    bad: Vec<bool>,
    seed: u64,
    round: usize,
}

impl GilbertElliott {
    /// A bursty channel. Transition and loss parameters must be
    /// probabilities.
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        for p in [p_good_to_bad, p_bad_to_good, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "parameters must be probabilities");
        }
        GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
            bad: Vec::new(),
            seed: 0,
            round: 0,
        }
    }

    /// A typical bursty profile: rare 10%-per-round bursts losing 90% of
    /// traffic, against a clean good state.
    pub fn bursty() -> Self {
        GilbertElliott::new(0.1, 0.4, 0.0, 0.9)
    }

    /// Whether the link with CSR slot `slot` is in the Bad state this round.
    pub fn is_bad(&self, slot: usize) -> bool {
        self.bad.get(slot).copied().unwrap_or(false)
    }
}

impl FaultModel for GilbertElliott {
    fn reset(&mut self, topology: &Graph, seed: u64) {
        // One chain per directed edge slot; initial state drawn from the
        // chain's stationary distribution so short runs are not biased
        // toward Good.
        let slots = 2 * topology.m();
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        let stationary_bad = if denom > 0.0 {
            self.p_good_to_bad / denom
        } else {
            0.0
        };
        self.seed = seed;
        self.round = 0;
        self.bad = (0..slots)
            .map(|s| unit_hash((seed, "ge-init", s)) < stationary_bad)
            .collect();
    }

    fn begin_round(&mut self, round: usize) {
        // Advance every chain once per round (single-threaded section).
        if round <= self.round {
            return;
        }
        for r in (self.round + 1)..=round {
            for (s, state) in self.bad.iter_mut().enumerate() {
                let u = unit_hash((self.seed, "ge-step", r, s));
                *state = if *state {
                    u >= self.p_bad_to_good
                } else {
                    u < self.p_good_to_bad
                };
            }
        }
        self.round = round;
    }

    fn delivery(&self, ctx: &DeliveryCtx) -> Delivery {
        let p = if self.is_bad(ctx.link_slot) {
            self.loss_bad
        } else {
            self.loss_good
        };
        if p > 0.0 && unit_hash((ctx.seed, "ge-loss", ctx.round, ctx.link_slot, ctx.msg_index)) < p
        {
            Delivery::Drop
        } else {
            Delivery::Deliver
        }
    }

    fn name(&self) -> &'static str {
        "gilbert-elliott"
    }
}

// ---------------------------------------------------------------------------
// Crash-stop node faults
// ---------------------------------------------------------------------------

/// How crash victims and rounds are chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CrashPlan {
    /// An explicit schedule of `(node, round)` crashes.
    At(Vec<(usize, usize)>),
    /// Crash `count` seeded-random nodes at seeded-random rounds in
    /// `1..=within_rounds`.
    Random { count: usize, within_rounds: usize },
}

/// Nodes halt permanently at a scheduled or seeded round (crash-stop, no
/// recovery): from its crash round on, a node neither sends, receives, nor
/// steps, and its pending outbox is discarded.
///
/// The concrete per-node schedule is resolved at [`FaultModel::reset`]
/// (seeded choices need the topology size); [`CrashStop::crash_round`]
/// exposes it for tests and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashStop {
    plan: CrashPlan,
    /// `resolved[v]` = crash round of `v`, filled by `reset`.
    resolved: Vec<Option<usize>>,
}

impl CrashStop {
    /// Explicit crash schedule of `(node, round)` pairs.
    pub fn at(schedule: Vec<(usize, usize)>) -> Self {
        CrashStop {
            plan: CrashPlan::At(schedule),
            resolved: Vec::new(),
        }
    }

    /// `count` seeded-random crashes within the first `within_rounds`
    /// rounds.
    pub fn random(count: usize, within_rounds: usize) -> Self {
        CrashStop {
            plan: CrashPlan::Random {
                count,
                within_rounds: within_rounds.max(1),
            },
            resolved: Vec::new(),
        }
    }

    fn resolve_one(&self, node: usize, n: usize, seed: u64) -> Option<usize> {
        match &self.plan {
            CrashPlan::At(sched) => sched
                .iter()
                .filter(|&&(v, _)| v == node)
                .map(|&(_, r)| r)
                .min(),
            CrashPlan::Random {
                count,
                within_rounds,
            } => {
                if n == 0 || node >= n {
                    return None;
                }
                // Choose `count` distinct victims by ranking nodes by a
                // seeded hash; node crashes iff its rank is below count.
                let my_key = raw_hash((seed, "crash-victim", node));
                let rank = (0..n)
                    .filter(|&v| {
                        let k = raw_hash((seed, "crash-victim", v));
                        k < my_key || (k == my_key && v < node)
                    })
                    .count();
                if rank < *count {
                    Some(1 + (raw_hash((seed, "crash-round", node)) as usize) % *within_rounds)
                } else {
                    None
                }
            }
        }
    }

    /// The round `node` crashes at (network of `n` nodes, engine seed
    /// `seed`), if any.
    pub fn crash_round(&self, node: usize, n: usize, seed: u64) -> Option<usize> {
        self.resolve_one(node, n, seed)
    }
}

impl FaultModel for CrashStop {
    fn reset(&mut self, topology: &Graph, seed: u64) {
        let n = topology.n();
        self.resolved = (0..n).map(|v| self.resolve_one(v, n, seed)).collect();
    }

    fn crashed(&self, node: usize, round: usize, seed: u64) -> bool {
        match self.resolved.get(node) {
            Some(r) => r.is_some_and(|r| round >= r),
            // Standalone (un-reset) queries only resolve explicit
            // schedules; Random needs `n` from reset.
            None => self
                .resolve_one(node, usize::MAX, seed)
                .is_some_and(|r| round >= r),
        }
    }

    fn name(&self) -> &'static str {
        "crash-stop"
    }
}

// ---------------------------------------------------------------------------
// Link failures
// ---------------------------------------------------------------------------

/// One undirected link outage: the edge `{a, b}` is down (both directions)
/// for every round in `from_round..=to_round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// First round of the outage (1-based, inclusive).
    pub from_round: usize,
    /// Last round of the outage (inclusive).
    pub to_round: usize,
}

/// Scheduled link failures: each listed edge drops all traffic (both
/// directions) during its outage interval.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinkFailure {
    /// The outage schedule.
    pub outages: Vec<Outage>,
}

impl LinkFailure {
    /// A failure schedule from explicit outages.
    pub fn new(outages: Vec<Outage>) -> Self {
        LinkFailure { outages }
    }

    /// Convenience: a single outage.
    pub fn single(a: usize, b: usize, from_round: usize, to_round: usize) -> Self {
        LinkFailure {
            outages: vec![Outage {
                a,
                b,
                from_round,
                to_round,
            }],
        }
    }

    /// Whether the (undirected) edge `{u, v}` is down in `round`.
    pub fn is_down(&self, u: usize, v: usize, round: usize) -> bool {
        self.outages.iter().any(|o| {
            ((o.a == u && o.b == v) || (o.a == v && o.b == u))
                && round >= o.from_round
                && round <= o.to_round
        })
    }
}

impl FaultModel for LinkFailure {
    fn delivery(&self, ctx: &DeliveryCtx) -> Delivery {
        if self.is_down(ctx.from, ctx.to, ctx.round) {
            Delivery::Drop
        } else {
            Delivery::Deliver
        }
    }

    fn name(&self) -> &'static str {
        "link-failure"
    }
}

// ---------------------------------------------------------------------------
// Payload corruption
// ---------------------------------------------------------------------------

/// Seeded bit-flip corruption: each delivery is corrupted independently
/// with probability `rate`, flipping one seeded-random payload bit.
/// Only payloads that opt into corruption react (see
/// [`crate::message::BitSize::corrupt_bit`]; [`crate::BitString`] and the
/// reliable-transport envelope do) — others deliver intact, modeling
/// checksummed headers around an opaque body.
#[derive(Debug, Clone, PartialEq)]
pub struct BitFlip {
    /// Corruption probability per delivery.
    pub rate: f64,
}

impl BitFlip {
    /// A channel corrupting each delivery with probability `rate`.
    pub fn new(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        BitFlip { rate }
    }
}

impl FaultModel for BitFlip {
    fn delivery(&self, ctx: &DeliveryCtx) -> Delivery {
        if self.rate > 0.0
            && unit_hash((ctx.seed, "flip", ctx.round, ctx.link_slot, ctx.msg_index)) < self.rate
        {
            let bit = raw_hash((
                ctx.seed,
                "flip-bit",
                ctx.round,
                ctx.link_slot,
                ctx.msg_index,
            )) as usize;
            Delivery::Corrupt(bit)
        } else {
            Delivery::Deliver
        }
    }

    fn name(&self) -> &'static str {
        "bit-flip"
    }
}

// ---------------------------------------------------------------------------
// Composition + cloneable spec
// ---------------------------------------------------------------------------

/// A cloneable description of a fault configuration. Detector drivers store
/// a `FaultSpec` and build a fresh model per engine run, so repeated
/// repetitions stay independent and reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// No faults (the failure-free model).
    None,
    /// [`IndependentLoss`] with the given probability.
    IndependentLoss(f64),
    /// [`GilbertElliott`] with `(p_good_to_bad, p_bad_to_good, loss_good,
    /// loss_bad)`.
    GilbertElliott(f64, f64, f64, f64),
    /// [`CrashStop`] faults.
    CrashStop(CrashStop),
    /// [`LinkFailure`] outages.
    LinkFailure(LinkFailure),
    /// [`BitFlip`] corruption with the given rate.
    BitFlip(f64),
    /// All listed faults at once; for each delivery the first non-`Deliver`
    /// verdict wins (drops shadow corruption), and a node is crashed if any
    /// layer crashes it.
    Stack(Vec<FaultSpec>),
}

impl FaultSpec {
    /// Builds the runnable model this spec describes.
    pub fn build(&self) -> Box<dyn FaultModel> {
        match self {
            FaultSpec::None => Box::new(NoFaults),
            FaultSpec::IndependentLoss(p) => Box::new(IndependentLoss::new(*p)),
            FaultSpec::GilbertElliott(gb, bg, lg, lb) => {
                Box::new(GilbertElliott::new(*gb, *bg, *lg, *lb))
            }
            FaultSpec::CrashStop(c) => Box::new(c.clone()),
            FaultSpec::LinkFailure(l) => Box::new(l.clone()),
            FaultSpec::BitFlip(r) => Box::new(BitFlip::new(*r)),
            FaultSpec::Stack(specs) => Box::new(FaultStack {
                layers: specs.iter().map(|s| s.build()).collect(),
            }),
        }
    }

    /// Whether this spec can ever affect a run.
    pub fn is_none(&self) -> bool {
        match self {
            FaultSpec::None => true,
            FaultSpec::Stack(v) => v.iter().all(FaultSpec::is_none),
            _ => false,
        }
    }
}

/// The failure-free model.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Several fault models applied together.
pub struct FaultStack {
    layers: Vec<Box<dyn FaultModel>>,
}

impl FaultStack {
    /// Stacks the given models.
    pub fn new(layers: Vec<Box<dyn FaultModel>>) -> Self {
        FaultStack { layers }
    }
}

impl FaultModel for FaultStack {
    fn reset(&mut self, topology: &Graph, seed: u64) {
        for l in &mut self.layers {
            l.reset(topology, seed);
        }
    }

    fn begin_round(&mut self, round: usize) {
        for l in &mut self.layers {
            l.begin_round(round);
        }
    }

    fn delivery(&self, ctx: &DeliveryCtx) -> Delivery {
        for l in &self.layers {
            match l.delivery(ctx) {
                Delivery::Deliver => continue,
                other => return other,
            }
        }
        Delivery::Deliver
    }

    fn crashed(&self, node: usize, round: usize, seed: u64) -> bool {
        self.layers.iter().any(|l| l.crashed(node, round, seed))
    }

    fn name(&self) -> &'static str {
        "stack"
    }
}

// ---------------------------------------------------------------------------
// Fault report
// ---------------------------------------------------------------------------

/// What the fault layer did to a run — attached to every
/// [`crate::RunOutcome`] so degradation is observable instead of silent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Messages delivered intact.
    pub delivered: u64,
    /// Messages dropped by the fault layer.
    pub dropped: u64,
    /// Messages delivered with a corrupted payload.
    pub corrupted: u64,
    /// Drops per round (`dropped_per_round[r-1]` for round `r`).
    pub dropped_per_round: Vec<u64>,
    /// Corruptions per round.
    pub corrupted_per_round: Vec<u64>,
    /// `(node, round)` crash-stop events, in crash order.
    pub crashed: Vec<(usize, usize)>,
    /// Retransmissions performed by the reliable-transport layer (0 when
    /// the bare engine runs; filled by [`crate::reliable`]).
    pub retransmissions: u64,
    /// Retransmissions per physical round
    /// (`retransmissions_per_round[r-1]` for round `r`; empty for bare
    /// runs) — aligned with [`Self::dropped_per_round`] so loss bursts and
    /// the recovery traffic they force are visible on the same time axis.
    pub retransmissions_per_round: Vec<u64>,
    /// Retransmissions per directed link, in the CSR directed-edge order
    /// shared with [`crate::RunStats::directed_edge_bits`] (slot
    /// `offsets[v] + port` holds node `v`'s retransmissions on its port
    /// `port`; empty for bare runs). Unlike the per-round series, which
    /// concatenate across phases, per-link tallies *add elementwise* under
    /// [`Self::absorb`] — the links are the same links in every phase.
    pub retransmissions_per_link: Vec<u64>,
    /// Retransmissions sent at backoff stage ≥ 2 (third or later attempt)
    /// — the adaptive timeout's exponential-backoff activations (0 for
    /// bare runs).
    pub backoff_events: u64,
    /// Messages the reliable layer gave up on after exhausting its
    /// retransmission budget (0 for bare runs).
    pub given_up: u64,
}

impl FaultReport {
    /// Whether the fault layer affected the run at all.
    pub fn any_faults(&self) -> bool {
        self.dropped > 0 || self.corrupted > 0 || !self.crashed.is_empty()
    }

    /// Indices of crashed nodes (deduplicated, sorted).
    pub fn crashed_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.crashed.iter().map(|&(n, _)| n).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Merges another report into this one (used by multi-phase drivers to
    /// aggregate across engine runs).
    pub fn absorb(&mut self, other: &FaultReport) {
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.retransmissions += other.retransmissions;
        self.backoff_events += other.backoff_events;
        self.given_up += other.given_up;
        self.crashed.extend_from_slice(&other.crashed);
        // Per-round series concatenate (phases run sequentially).
        self.dropped_per_round
            .extend_from_slice(&other.dropped_per_round);
        self.corrupted_per_round
            .extend_from_slice(&other.corrupted_per_round);
        self.retransmissions_per_round
            .extend_from_slice(&other.retransmissions_per_round);
        // Per-link tallies add elementwise — every phase runs over the
        // same topology, so slot `i` is the same directed link throughout.
        if self.retransmissions_per_link.len() < other.retransmissions_per_link.len() {
            self.retransmissions_per_link
                .resize(other.retransmissions_per_link.len(), 0);
        }
        for (slot, &c) in other.retransmissions_per_link.iter().enumerate() {
            self.retransmissions_per_link[slot] += c;
        }
    }

    /// Compact one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "delivered {}, dropped {}, corrupted {}, crashed {:?}, retransmissions {} \
             (busiest link {}), backoff events {}, given up {}",
            self.delivered,
            self.dropped,
            self.corrupted,
            self.crashed_nodes(),
            self.retransmissions,
            self.retransmissions_per_link.iter().max().unwrap_or(&0),
            self.backoff_events,
            self.given_up,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    fn ctx(seed: u64, round: usize, slot: usize, idx: usize) -> DeliveryCtx {
        DeliveryCtx {
            seed,
            round,
            from: 0,
            to: 1,
            to_port: 0,
            link_slot: slot,
            msg_index: idx,
            bits: 8,
        }
    }

    #[test]
    fn independent_loss_extremes() {
        let never = IndependentLoss::new(0.0);
        let always = IndependentLoss::new(1.0);
        for i in 0..50 {
            assert_eq!(never.delivery(&ctx(1, 1, 0, i)), Delivery::Deliver);
            assert_eq!(always.delivery(&ctx(1, 1, 0, i)), Delivery::Drop);
        }
    }

    #[test]
    fn independent_loss_rate_roughly_honored() {
        let m = IndependentLoss::new(0.3);
        let drops = (0..10_000)
            .filter(|&i| m.delivery(&ctx(7, 1 + i / 100, i % 100, i)) == Delivery::Drop)
            .count();
        assert!((2500..3500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn gilbert_elliott_is_bursty_and_deterministic() {
        let g = generators::cycle(6);
        let mk = || {
            let mut m = GilbertElliott::new(0.2, 0.3, 0.0, 1.0);
            m.reset(&g, 99);
            m
        };
        let mut a = mk();
        let mut b = mk();
        let mut streak = 0usize;
        let mut max_streak = 0usize;
        for round in 1..=200 {
            a.begin_round(round);
            b.begin_round(round);
            assert_eq!(a.is_bad(0), b.is_bad(0), "chains are seeded");
            if a.is_bad(0) {
                streak += 1;
                max_streak = max_streak.max(streak);
            } else {
                streak = 0;
            }
        }
        // With p(bad->good) = 0.3, bursts of >= 2 consecutive bad rounds
        // appear with overwhelming probability over 200 rounds.
        assert!(max_streak >= 2, "expected a loss burst, got {max_streak}");
    }

    #[test]
    fn gilbert_elliott_loss_follows_state() {
        let g = generators::path(2);
        let mut m = GilbertElliott::new(1.0, 0.0, 0.0, 1.0); // instantly bad forever
        m.reset(&g, 5);
        m.begin_round(1);
        assert!(m.is_bad(0));
        assert_eq!(m.delivery(&ctx(5, 1, 0, 0)), Delivery::Drop);
    }

    #[test]
    fn crash_stop_schedule() {
        let m = CrashStop::at(vec![(2, 5), (0, 1)]);
        assert!(!m.crashed(2, 4, 0));
        assert!(m.crashed(2, 5, 0));
        assert!(m.crashed(2, 50, 0), "crash-stop is permanent");
        assert!(m.crashed(0, 1, 0));
        assert!(!m.crashed(1, 100, 0));
    }

    #[test]
    fn crash_stop_random_is_seeded_and_bounded() {
        let spec = CrashStop::random(3, 10);
        let n = 20;
        let victims: Vec<usize> = (0..n)
            .filter(|&v| spec.crash_round(v, n, 7).is_some())
            .collect();
        assert_eq!(victims.len(), 3);
        for &v in &victims {
            let r = spec.crash_round(v, n, 7).unwrap();
            assert!((1..=10).contains(&r));
            assert_eq!(spec.crash_round(v, n, 7), Some(r), "deterministic");
        }
        let victims2: Vec<usize> = (0..n)
            .filter(|&v| spec.crash_round(v, n, 8).is_some())
            .collect();
        assert_eq!(victims2.len(), 3);
    }

    #[test]
    fn link_failure_window() {
        let m = LinkFailure::single(1, 2, 3, 5);
        assert!(!m.is_down(1, 2, 2));
        assert!(m.is_down(1, 2, 3));
        assert!(m.is_down(2, 1, 5), "undirected");
        assert!(!m.is_down(1, 2, 6));
        assert!(!m.is_down(1, 3, 4));
    }

    #[test]
    fn bit_flip_produces_corruptions() {
        let m = BitFlip::new(1.0);
        for i in 0..10 {
            assert!(matches!(m.delivery(&ctx(3, 1, 0, i)), Delivery::Corrupt(_)));
        }
        let none = BitFlip::new(0.0);
        assert_eq!(none.delivery(&ctx(3, 1, 0, 0)), Delivery::Deliver);
    }

    #[test]
    fn stack_first_fault_wins() {
        let spec = FaultSpec::Stack(vec![
            FaultSpec::IndependentLoss(0.0),
            FaultSpec::BitFlip(1.0),
        ]);
        let m = spec.build();
        assert!(matches!(m.delivery(&ctx(3, 1, 0, 0)), Delivery::Corrupt(_)));
        let drop_wins = FaultSpec::Stack(vec![
            FaultSpec::IndependentLoss(1.0),
            FaultSpec::BitFlip(1.0),
        ])
        .build();
        assert_eq!(drop_wins.delivery(&ctx(3, 1, 0, 0)), Delivery::Drop);
    }

    #[test]
    fn spec_is_none_detection() {
        assert!(FaultSpec::None.is_none());
        assert!(FaultSpec::Stack(vec![FaultSpec::None]).is_none());
        assert!(!FaultSpec::IndependentLoss(0.5).is_none());
    }

    #[test]
    fn report_absorb_accumulates() {
        let mut a = FaultReport {
            delivered: 5,
            dropped: 1,
            dropped_per_round: vec![1],
            ..Default::default()
        };
        let b = FaultReport {
            delivered: 2,
            corrupted: 3,
            crashed: vec![(4, 2)],
            dropped_per_round: vec![0, 0],
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.delivered, 7);
        assert_eq!(a.corrupted, 3);
        assert_eq!(a.crashed_nodes(), vec![4]);
        assert_eq!(a.dropped_per_round, vec![1, 0, 0]);
        assert!(a.any_faults());
    }

    #[test]
    fn report_absorb_carries_transport_tallies() {
        // Per-link tallies add elementwise (same links every phase) while
        // the scalar transport counters accumulate — a multi-repetition
        // driver must not under-report recovery cost.
        let mut a = FaultReport {
            retransmissions: 2,
            backoff_events: 1,
            given_up: 1,
            retransmissions_per_link: vec![2, 0],
            ..Default::default()
        };
        let b = FaultReport {
            retransmissions: 3,
            backoff_events: 2,
            retransmissions_per_link: vec![1, 1, 1],
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.retransmissions, 5);
        assert_eq!(a.backoff_events, 3);
        assert_eq!(a.given_up, 1);
        assert_eq!(a.retransmissions_per_link, vec![3, 1, 1]);
        assert_eq!(
            a.retransmissions_per_link.iter().sum::<u64>(),
            a.retransmissions,
            "per-link tallies must still sum to the total"
        );
        assert!(a.summary().contains("backoff events 3"));
    }
}
