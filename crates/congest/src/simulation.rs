//! The one front door to every simulator backend.
//!
//! [`Simulation`] is a builder covering the CONGEST engine, the reliable
//! transport, and the congested-clique engine behind a single fluent API:
//!
//! ```
//! use congest::{Bandwidth, Simulation};
//! # use congest::{Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing};
//! # use rand_chacha::ChaCha8Rng;
//! # struct Quiet;
//! # impl NodeAlgorithm for Quiet {
//! #     type Msg = u64;
//! #     fn init(&mut self, _: &NodeContext, _: &mut ChaCha8Rng) -> Outbox<u64> { Vec::new() }
//! #     fn on_round(&mut self, _: &NodeContext, _: &Inbox<u64>, _: &mut ChaCha8Rng) -> Outbox<u64> { Vec::new() }
//! #     fn halted(&self) -> bool { true }
//! #     fn decision(&self) -> Decision { Decision::Accept }
//! # }
//! let g = graphlib::generators::cycle(8);
//! let outcome = Simulation::on(&g)
//!     .bandwidth(Bandwidth::Bits(64))
//!     .seed(7)
//!     .run(|_| Quiet)
//!     .unwrap();
//! assert!(outcome.completed);
//! ```
//!
//! Configuration the selected backend cannot honor (faults on the clique
//! engine, reliable transport under broadcast-only, ...) surfaces as
//! [`SimError::Unsupported`] instead of being silently dropped.
//!
//! Every run returns a [`RunResult`] wrapping the unified [`Outcome`] (and,
//! for clique runs, the typed [`CliqueRun`]): per-node decisions, the exact
//! [`RunStats`], the [`FaultReport`], and a deterministic
//! [`MetricsSnapshot`]; [`RunResult::report`] renders all of it as one
//! schema-versioned [`RunReport`].
//!
//! # Batched runs: [`Simulation::prepare`]
//!
//! A one-shot `run` stages the topology (shard layout, reverse-port table)
//! and tears it down again. Batched workloads — many seeds over one graph,
//! one graph times many detectors — call [`Simulation::prepare`] once and
//! replay the staged [`Prepared`] topology with per-run [`Overrides`]
//! (seed, round cap, faults, collector):
//!
//! ```
//! # use congest::{Bandwidth, Simulation};
//! # use congest::{Decision, Inbox, NodeAlgorithm, NodeContext, Outbox, Outgoing};
//! # use rand_chacha::ChaCha8Rng;
//! # struct Quiet;
//! # impl NodeAlgorithm for Quiet {
//! #     type Msg = u64;
//! #     fn init(&mut self, _: &NodeContext, _: &mut ChaCha8Rng) -> Outbox<u64> { Vec::new() }
//! #     fn on_round(&mut self, _: &NodeContext, _: &Inbox<u64>, _: &mut ChaCha8Rng) -> Outbox<u64> { Vec::new() }
//! #     fn halted(&self) -> bool { true }
//! #     fn decision(&self) -> Decision { Decision::Accept }
//! # }
//! let g = graphlib::generators::cycle(8);
//! let prepared = Simulation::on(&g).bandwidth(Bandwidth::Bits(64)).prepare();
//! for seed in 0..4 {
//!     let out = prepared.run_seed(seed, |_| Quiet).unwrap();
//!     assert!(out.completed);
//! }
//! ```
//!
//! `Prepared` is `Clone + Send + Sync` (an `Arc` handle), so a service can
//! fan a batch of runs over the rayon pool against one staged topology.
//! Results are bit-for-bit identical to one-shot runs with the same
//! configuration — staging is purely an amortization.

use crate::cliquemodel::{CliqueAlgorithm, CliqueEngine, CliqueStats};
use crate::engine::{Bandwidth, Degraded, Engine, EnginePlan, RunOutcome};
use crate::error::SimError;
use crate::faults::{FaultReport, FaultSpec};
use crate::node::{Decision, NodeAlgorithm};
use crate::obsv::collect::{Collector, ComputeTimer, Fanout};
use crate::obsv::flight::FlightRecorder;
use crate::obsv::metrics::{Metrics, MetricsSnapshot};
use crate::obsv::profile::Profiler;
use crate::obsv::report::RunReport;
use crate::reliable::{run_reliable_impl, ReliableConfig};
use crate::stats::RunStats;
use graphlib::Graph;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// Unified result of any [`Simulation`] run.
///
/// This is [`RunOutcome`] plus the frozen metrics snapshot; clique runs
/// produce it too (with an empty decision vector — clique algorithms
/// return typed outputs instead, see [`CliqueRun`]).
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Per-node decisions at the end of the run (empty for clique runs).
    pub decisions: Vec<Decision>,
    /// Exact traffic and round statistics.
    pub stats: RunStats,
    /// Whether every live node halted before the round limit.
    pub completed: bool,
    /// What the fault layer (and reliable transport) did to this run.
    pub faults: FaultReport,
    /// `Some` when the run degraded instead of completing cleanly (round
    /// budget exhausted, transport give-ups, or crashed nodes); the
    /// decision then covers the surviving subgraph only, loss-soundly.
    pub degraded: Option<Degraded>,
    /// Deterministic, name-sorted metrics snapshot of the run.
    pub metrics: MetricsSnapshot,
}

impl Outcome {
    fn from_run(run: RunOutcome, metrics: MetricsSnapshot) -> Self {
        Outcome {
            decisions: run.decisions,
            stats: run.stats,
            completed: run.completed,
            faults: run.faults,
            degraded: run.degraded,
            metrics,
        }
    }

    /// Whether this run degraded (see [`Degraded`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Definition 1 semantics: the network "detects H" iff some node rejects.
    pub fn network_rejects(&self) -> bool {
        self.decisions.contains(&Decision::Reject)
    }

    /// Convenience inverse of [`Self::network_rejects`].
    pub fn network_accepts(&self) -> bool {
        !self.network_rejects()
    }

    /// Whether the run was cut off by the round limit rather than halting
    /// cleanly.
    pub fn hit_round_limit(&self) -> bool {
        !self.completed
    }

    /// Whether some node that never crashed rejects — the meaningful
    /// detection signal under crash faults.
    pub fn surviving_node_rejects(&self) -> bool {
        let crashed = self.faults.crashed_nodes();
        self.decisions
            .iter()
            .enumerate()
            .any(|(v, d)| *d == Decision::Reject && crashed.binary_search(&v).is_err())
    }

    /// Exports the outcome as a schema-versioned [`RunReport`]. Degraded
    /// runs carry their graceful-degradation verdict into the report's
    /// `degraded` block.
    pub fn report(&self, label: &str) -> RunReport {
        RunReport::from_stats(
            label,
            &self.stats,
            &self.faults,
            self.completed,
            self.metrics.clone(),
        )
        .with_degradation(self.degraded.clone(), self.decisions.len())
    }
}

/// Result of a congested-clique run through the builder: the typed per-node
/// outputs and clique-specific stats, alongside the unified [`Outcome`].
#[derive(Debug)]
pub struct CliqueRun<O> {
    /// Per-node outputs of the clique algorithm.
    pub outputs: Vec<O>,
    /// Clique-specific statistics (per-ordered-pair congestion).
    pub stats: CliqueStats,
    /// The unified outcome (decisions empty; traffic stats and metrics
    /// populated from the all-to-all topology accounting).
    pub outcome: Outcome,
}

/// The unified result enum every [`Simulation`] / [`Prepared`] entry point
/// returns: a CONGEST run's [`Outcome`], or a clique run's typed
/// [`CliqueRun`]. Both variants carry an [`Outcome`], and the enum derefs
/// to it, so callers that only read decisions/stats/metrics (or call
/// [`Outcome::report`]) never match on the backend.
#[derive(Debug)]
pub enum RunResult<O = ()> {
    /// A CONGEST-engine (or reliable-transport) run.
    Congest(Outcome),
    /// A congested-clique run with typed per-node outputs.
    Clique(CliqueRun<O>),
}

impl<O> RunResult<O> {
    /// The unified outcome, whichever backend ran.
    pub fn outcome(&self) -> &Outcome {
        match self {
            RunResult::Congest(o) => o,
            RunResult::Clique(c) => &c.outcome,
        }
    }

    /// Consumes the result into its unified outcome.
    pub fn into_outcome(self) -> Outcome {
        match self {
            RunResult::Congest(o) => o,
            RunResult::Clique(c) => c.outcome,
        }
    }

    /// The clique view, when the clique backend ran.
    pub fn as_clique(&self) -> Option<&CliqueRun<O>> {
        match self {
            RunResult::Clique(c) => Some(c),
            RunResult::Congest(_) => None,
        }
    }

    /// Consumes the result into its [`CliqueRun`].
    ///
    /// # Panics
    /// If this was a CONGEST run — only call on [`Simulation::run_clique`] /
    /// [`Prepared::run_clique`] results.
    pub fn into_clique(self) -> CliqueRun<O> {
        match self {
            RunResult::Clique(c) => c,
            RunResult::Congest(_) => panic!("RunResult::into_clique on a CONGEST run"),
        }
    }

    /// The common report path: [`Outcome::report`] of whichever backend ran.
    pub fn report(&self, label: &str) -> RunReport {
        self.outcome().report(label)
    }
}

impl<O> std::ops::Deref for RunResult<O> {
    type Target = Outcome;

    fn deref(&self) -> &Outcome {
        self.outcome()
    }
}

/// The graph a simulation runs over: borrowed for the classic
/// `Simulation::on(&g)` entry, or `Arc`-shared so [`Prepared`] (and caches
/// above it) can hold the topology without a deep copy.
enum GraphRef<'g> {
    Borrowed(&'g Graph),
    Shared(Arc<Graph>),
}

impl GraphRef<'_> {
    fn get(&self) -> &Graph {
        match self {
            GraphRef::Borrowed(g) => g,
            GraphRef::Shared(a) => a,
        }
    }

    /// The graph behind an `Arc`: free for `Shared`, one structural clone
    /// for `Borrowed` (the CSR offsets and packed-adjacency cache are
    /// already `Arc`-shared by `Graph::clone`).
    fn to_arc(&self) -> Arc<Graph> {
        match self {
            GraphRef::Borrowed(g) => Arc::new((*g).clone()),
            GraphRef::Shared(a) => Arc::clone(a),
        }
    }
}

/// Everything a run needs besides the topology. [`Simulation`] builds one;
/// [`Prepared`] snapshots it and applies per-run [`Overrides`] on top.
#[derive(Clone)]
struct SimConfig {
    bandwidth: Option<Bandwidth>,
    bandwidth_bits: Option<usize>,
    ids: Option<Arc<[u64]>>,
    max_rounds: Option<usize>,
    seed: u64,
    broadcast_only: bool,
    faults: FaultSpec,
    reliable: Option<ReliableConfig>,
    collector: Option<Arc<dyn Collector>>,
    flight: Option<Arc<FlightRecorder>>,
    timed: bool,
    profiler: Option<Arc<Profiler>>,
    shards: usize,
    fused: bool,
    early_termination: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            bandwidth: None,
            bandwidth_bits: None,
            ids: None,
            max_rounds: None,
            seed: 0,
            broadcast_only: false,
            faults: FaultSpec::None,
            reliable: None,
            collector: None,
            flight: None,
            timed: false,
            profiler: None,
            shards: 0,
            fused: true,
            early_termination: false,
        }
    }
}

impl SimConfig {
    fn combined_collector(&self, timer: Option<&Arc<ComputeTimer>>) -> Option<Arc<dyn Collector>> {
        let mut sinks: Vec<Arc<dyn Collector>> = Vec::new();
        if let Some(c) = &self.collector {
            sinks.push(Arc::clone(c));
        }
        if let Some(f) = &self.flight {
            sinks.push(Arc::clone(f) as Arc<dyn Collector>);
        }
        if let Some(t) = timer {
            sinks.push(Arc::clone(t) as Arc<dyn Collector>);
        }
        match sinks.len() {
            0 => None,
            1 => sinks.pop(),
            _ => Some(Arc::new(Fanout(sinks))),
        }
    }

    fn congest_engine<'g>(
        &self,
        graph: &'g Graph,
        plan: Option<&Arc<EnginePlan>>,
        timer: Option<&Arc<ComputeTimer>>,
    ) -> Engine<'g> {
        let mut e = Engine::new(graph)
            .seed(self.seed)
            .faults(self.faults.clone())
            .broadcast_only(self.broadcast_only)
            .shards(self.shards)
            .fused(self.fused)
            .early_termination(self.early_termination);
        if let Some(p) = plan {
            e = e.with_plan(Arc::clone(p));
        }
        if let Some(b) = self.bandwidth {
            e = e.bandwidth(b);
        }
        if let Some(r) = self.max_rounds {
            e = e.max_rounds(r);
        }
        if let Some(ids) = &self.ids {
            e = e.with_ids_arc(Arc::clone(ids));
        }
        if let Some(c) = self.combined_collector(timer) {
            e = e.collector(c);
        }
        if let Some(p) = &self.profiler {
            e = e.profiler(Arc::clone(p));
        }
        e
    }

    /// Snapshots the run's metrics — into `scratch` (the [`Prepared`]
    /// reset-in-place path: bucket storage is reused across a batch) when
    /// given, into a fresh registry otherwise. Both produce identical
    /// snapshots (see [`Metrics::reset`]).
    fn finish(
        &self,
        run: RunOutcome,
        timer: Option<Arc<ComputeTimer>>,
        scratch: Option<&Mutex<Metrics>>,
    ) -> Outcome {
        let populate = |m: &mut Metrics| {
            m.record_run(&run.stats, &run.faults);
            if let Some(t) = &timer {
                m.install_hist("compute.node_nanos", t.take());
            }
            if let Some(p) = &self.profiler {
                p.install_into(m);
            }
            // Surface collector capacity overflow (bounded TraceBuffer /
            // JsonlTrace truncation) — present only when non-zero, so
            // untruncated runs keep their exact metric set.
            if let Some(c) = &self.collector {
                let d = c.dropped_events();
                if d > 0 {
                    m.inc("trace.dropped_events", d);
                }
            }
            // Flight-recorder occupancy: cumulative over the recorder's
            // lifetime (one recorder may span a batch of runs).
            if let Some(f) = &self.flight {
                m.inc("flight.sends.seen", f.sends_seen());
                m.inc("flight.sends.sampled", f.samples_len() as u64);
                m.inc("flight.ring.rounds", f.ring_len() as u64);
                let rd = f.ring_dropped_events();
                if rd > 0 {
                    m.inc("flight.ring.dropped_events", rd);
                }
            }
            m.snapshot()
        };
        let snapshot = match scratch {
            Some(lock) => {
                let mut m = lock.lock().unwrap_or_else(|e| e.into_inner());
                populate(&mut m)
            }
            None => populate(&mut Metrics::new()),
        };
        // Black-box behavior: a degraded run (round budget exhausted,
        // transport give-ups, crashes) dumps the flight record.
        if run.degraded.is_some() {
            if let Some(f) = &self.flight {
                f.dump_on_failure("run degraded");
            }
        }
        Outcome::from_run(run, snapshot)
    }

    fn run_with_nodes_impl<A, F>(
        &self,
        graph: &Graph,
        plan: Option<&Arc<EnginePlan>>,
        scratch: Option<&Mutex<Metrics>>,
        make: F,
    ) -> Result<(Outcome, Vec<A>), SimError>
    where
        A: NodeAlgorithm,
        A::Msg: Hash,
        F: Fn(usize) -> A + Sync,
    {
        let timer = if self.timed {
            Some(Arc::new(ComputeTimer::new()))
        } else {
            None
        };
        let engine = self.congest_engine(graph, plan, timer.as_ref());
        let result = match self.reliable {
            Some(cfg) => {
                if self.broadcast_only {
                    return Err(SimError::Unsupported(
                        "reliable transport under broadcast-only (the ARQ envelope \
                         needs per-port unicasts)"
                            .into(),
                    ));
                }
                cfg.validate().map_err(SimError::Config)?;
                run_reliable_impl(&engine, cfg, make)
            }
            None => engine.run_nodes_impl(make),
        };
        let (run, nodes) = match result {
            Ok(v) => v,
            Err(e) => {
                // The run died mid-flight: the ring (including its open
                // partial round) is exactly the evidence to preserve.
                if let Some(f) = &self.flight {
                    f.dump_on_failure(&format!("run failed: {e}"));
                }
                return Err(e.into());
            }
        };
        Ok((self.finish(run, timer, scratch), nodes))
    }

    fn run_clique_impl<A, F>(
        &self,
        graph: &Graph,
        scratch: Option<&Mutex<Metrics>>,
        make: F,
    ) -> Result<CliqueRun<A::Output>, SimError>
    where
        A: CliqueAlgorithm,
        F: Fn(usize) -> A + Sync,
    {
        if !matches!(self.faults, FaultSpec::None) {
            return Err(SimError::Unsupported(
                "fault injection on the clique engine".into(),
            ));
        }
        if self.reliable.is_some() {
            return Err(SimError::Unsupported(
                "reliable transport on the clique engine".into(),
            ));
        }
        if self.broadcast_only {
            return Err(SimError::Unsupported(
                "broadcast-only mode on the clique engine".into(),
            ));
        }
        if self.ids.is_some() {
            return Err(SimError::Unsupported(
                "custom identifiers on the clique engine (indices are public)".into(),
            ));
        }
        let timer = if self.timed {
            Some(Arc::new(ComputeTimer::new()))
        } else {
            None
        };
        let mut e = CliqueEngine::new(graph).seed(self.seed);
        match (self.bandwidth_bits, self.bandwidth) {
            (Some(b), _) => e = e.bandwidth_bits(b),
            (None, Some(Bandwidth::Bits(b))) => e = e.bandwidth_bits(b),
            (None, Some(Bandwidth::Unbounded)) => {
                return Err(SimError::Unsupported(
                    "unbounded bandwidth on the clique engine".into(),
                ));
            }
            (None, None) => {}
        }
        if let Some(r) = self.max_rounds {
            e = e.max_rounds(r);
        }
        if let Some(c) = self.combined_collector(timer.as_ref()) {
            e = e.collector(c);
        }
        if let Some(p) = &self.profiler {
            e = e.profiler(Arc::clone(p));
        }
        let (clique, stats) = e.run_impl(make)?;
        // No fault layer on the clique: everything sent was delivered.
        let faults = FaultReport {
            delivered: stats.total_messages,
            ..FaultReport::default()
        };
        let run = RunOutcome {
            decisions: Vec::new(),
            stats,
            completed: clique.completed,
            faults,
            degraded: None,
        };
        Ok(CliqueRun {
            outputs: clique.outputs,
            stats: clique.stats,
            outcome: self.finish(run, timer, scratch),
        })
    }
}

/// Builder over every simulator backend. See the module docs.
pub struct Simulation<'g> {
    graph: GraphRef<'g>,
    cfg: SimConfig,
}

impl<'g> Simulation<'g> {
    /// A simulation over `graph` — the topology for CONGEST runs, the
    /// *input* graph for clique runs (whose topology is all-to-all).
    /// Defaults mirror [`Engine::new`]: `Θ(log n)` bandwidth, seed 0, a
    /// generous round limit, no faults, no collector.
    pub fn on(graph: &'g Graph) -> Self {
        Simulation {
            graph: GraphRef::Borrowed(graph),
            cfg: SimConfig::default(),
        }
    }

    /// Like [`Self::on`], but over an `Arc`-shared graph, so
    /// [`Self::prepare`] (and caches above it, see `congest-serve`) reuse
    /// the handle instead of cloning the topology.
    pub fn on_shared(graph: Arc<Graph>) -> Simulation<'static> {
        Simulation {
            graph: GraphRef::Shared(graph),
            cfg: SimConfig::default(),
        }
    }

    /// Sets the per-edge bandwidth for CONGEST runs (a clique run maps
    /// `Bandwidth::Bits(b)` to its per-ordered-pair budget).
    pub fn bandwidth(mut self, b: Bandwidth) -> Self {
        self.cfg.bandwidth = Some(b);
        self
    }

    /// Sets the per-ordered-pair bandwidth of a clique run in bits
    /// (equivalent to `bandwidth(Bandwidth::Bits(b))` there; ignored by
    /// CONGEST runs, which use [`Self::bandwidth`]).
    pub fn bandwidth_bits(mut self, b: usize) -> Self {
        self.cfg.bandwidth_bits = Some(b);
        self
    }

    /// Installs a fault model (see [`crate::faults`]).
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.cfg.faults = spec;
        self
    }

    /// Sugar for `faults(FaultSpec::IndependentLoss(p))` (`p = 0` clears).
    pub fn loss_rate(self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss rate must be a probability");
        if p == 0.0 {
            self.faults(FaultSpec::None)
        } else {
            self.faults(FaultSpec::IndependentLoss(p))
        }
    }

    /// Runs the algorithm under the reliable ARQ transport (default
    /// tuning). Remember to budget bandwidth and rounds for the envelope:
    /// see [`ReliableConfig::required_bandwidth`] and
    /// [`ReliableConfig::physical_rounds`].
    pub fn reliable(mut self, on: bool) -> Self {
        self.cfg.reliable = if on {
            Some(ReliableConfig::default())
        } else {
            None
        };
        self
    }

    /// Runs under the reliable transport with explicit tuning (implies
    /// `reliable(true)`).
    pub fn reliable_config(mut self, cfg: ReliableConfig) -> Self {
        self.cfg.reliable = Some(cfg);
        self
    }

    /// Installs a structured-event [`Collector`] (see [`crate::obsv`]).
    pub fn collector<C: Collector + 'static>(self, c: C) -> Self {
        self.collector_arc(Arc::new(c))
    }

    /// Installs an already-shared [`Collector`] handle.
    pub fn collector_arc(mut self, c: Arc<dyn Collector>) -> Self {
        self.cfg.collector = Some(c);
        self
    }

    /// Installs a [`FlightRecorder`](crate::obsv::flight::FlightRecorder):
    /// the bounded-memory streaming telemetry layer. Composes with any
    /// [`Self::collector`] through a [`Fanout`]; the run's metrics gain the
    /// `flight.*` counters, and a degraded or failed run writes the flight
    /// record to [`FlightConfig::dump_path`](crate::obsv::flight::FlightConfig)
    /// when one is configured. Unless the recorder asks for provenance, the
    /// engines skip building per-send `deps` sets while it is the only
    /// collector installed — that is what keeps it cheap enough to leave on.
    pub fn flight_recorder(mut self, f: Arc<FlightRecorder>) -> Self {
        self.cfg.flight = Some(f);
        self
    }

    /// Also measures per-node compute time (wall-clock). The resulting
    /// `compute.node_nanos` histogram lands in [`Outcome::metrics`] — note
    /// it is inherently non-deterministic, unlike every other metric.
    pub fn timed(mut self, on: bool) -> Self {
        self.cfg.timed = on;
        self
    }

    /// Installs the engine self-profiler (see [`crate::obsv::profile`]):
    /// the run's accounting / staging / delivery / compute / ARQ sections
    /// are timed into the shared [`Profiler`], and its section histograms
    /// land in [`Outcome::metrics`] as `profile.*_nanos`. Like
    /// [`Self::timed`], the values are wall-clock and therefore
    /// non-deterministic; the engines pay one branch per section per round
    /// when no profiler is installed.
    pub fn profiler(mut self, p: Arc<Profiler>) -> Self {
        self.cfg.profiler = Some(p);
        self
    }

    /// Seeds all node RNGs (and the fault models).
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Pins the CONGEST engine's shard count (0 = one shard per rayon
    /// worker, the default). The shard count is a parallel-grain knob
    /// only: every observable of the run — decisions, inboxes, traces,
    /// fault outcomes — is identical at any value.
    pub fn shards(mut self, s: usize) -> Self {
        self.cfg.shards = s;
        self
    }

    /// Selects the CONGEST engine's round-body implementation: `true`
    /// (the default) runs the fused single-sweep pass, `false` the
    /// pre-fusion three-pass reference. Outcomes are byte-identical either
    /// way (pinned by the fused-pass referee in `tests/sharding.rs`); the
    /// reference path exists as that referee's oracle and as the "before"
    /// side of profiler comparisons.
    pub fn fused(mut self, on: bool) -> Self {
        self.cfg.fused = on;
        self
    }

    /// Enables causal early termination on the CONGEST engine: once
    /// nothing is in flight and every live node reports
    /// [`NodeAlgorithm::quiescent`], the remaining rounds are skipped.
    /// Decisions are unchanged; executed-round counts (and per-round
    /// series) reflect the truncated run. Off by default; intended for
    /// fault-free performance runs.
    pub fn early_termination(mut self, on: bool) -> Self {
        self.cfg.early_termination = on;
        self
    }

    /// Caps the number of communication rounds.
    pub fn max_rounds(mut self, r: usize) -> Self {
        self.cfg.max_rounds = Some(r);
        self
    }

    /// Sets the identifier assignment for CONGEST runs (must be `n`
    /// values). Clique node indices are public, so clique runs reject this.
    pub fn with_ids(mut self, ids: Vec<u64>) -> Self {
        self.cfg.ids = Some(ids.into());
        self
    }

    /// Switches CONGEST runs to broadcast-CONGEST (unicasts rejected).
    pub fn broadcast_only(mut self, on: bool) -> Self {
        self.cfg.broadcast_only = on;
        self
    }

    /// Stages the topology for batched reuse: the graph behind an `Arc`,
    /// the engine's shard layout and reverse-port routing table built once,
    /// and a reusable metrics registry. The returned [`Prepared`] handle is
    /// cheap to clone and replays the staged state across any number of
    /// runs with per-run [`Overrides`]. See the module docs.
    pub fn prepare(&self) -> Prepared {
        let graph = self.graph.to_arc();
        let plan = Arc::new(EnginePlan::build(&graph, self.cfg.shards));
        Prepared {
            inner: Arc::new(PreparedInner {
                graph,
                plan,
                cfg: self.cfg.clone(),
                scratch: Mutex::new(Metrics::new()),
            }),
        }
    }

    /// Runs `make(v)`-constructed nodes on the CONGEST engine (through the
    /// reliable transport when configured), returning the unified
    /// [`RunResult`].
    pub fn run<A, F>(&self, make: F) -> Result<RunResult, SimError>
    where
        A: NodeAlgorithm,
        A::Msg: Hash,
        F: Fn(usize) -> A + Sync,
    {
        self.run_with_nodes(make).map(|(result, _)| result)
    }

    /// Like [`Self::run`], but also hands back the final node states — for
    /// algorithms whose output is richer than accept/reject.
    pub fn run_with_nodes<A, F>(&self, make: F) -> Result<(RunResult, Vec<A>), SimError>
    where
        A: NodeAlgorithm,
        A::Msg: Hash,
        F: Fn(usize) -> A + Sync,
    {
        self.cfg
            .run_with_nodes_impl(self.graph.get(), None, None, make)
            .map(|(outcome, nodes)| (RunResult::Congest(outcome), nodes))
    }

    /// Runs a [`CliqueAlgorithm`] on the congested-clique engine, with the
    /// builder's graph as the *input* graph. Fault injection, the reliable
    /// transport, broadcast-only mode, and custom identifiers are CONGEST
    /// features — configuring any of them here is [`SimError::Unsupported`].
    pub fn run_clique<A, F>(&self, make: F) -> Result<RunResult<A::Output>, SimError>
    where
        A: CliqueAlgorithm,
        F: Fn(usize) -> A + Sync,
    {
        self.cfg
            .run_clique_impl(self.graph.get(), None, make)
            .map(RunResult::Clique)
    }
}

/// Per-run deltas applied on top of a [`Prepared`] topology's staged
/// configuration: the knobs a batched workload varies per query without
/// re-staging anything (seeds, round caps, fault models, collectors).
#[derive(Clone, Default)]
pub struct Overrides {
    seed: Option<u64>,
    max_rounds: Option<usize>,
    faults: Option<FaultSpec>,
    collector: Option<Arc<dyn Collector>>,
}

impl Overrides {
    /// No overrides: the run uses the staged configuration verbatim.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reseeds this run's node RNGs and fault models.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = Some(s);
        self
    }

    /// Caps this run's communication rounds.
    pub fn max_rounds(mut self, r: usize) -> Self {
        self.max_rounds = Some(r);
        self
    }

    /// Swaps this run's fault model (`FaultSpec::None` turns faults off).
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Installs a [`Collector`] for this run only.
    pub fn collector_arc(mut self, c: Arc<dyn Collector>) -> Self {
        self.collector = Some(c);
        self
    }
}

struct PreparedInner {
    graph: Arc<Graph>,
    plan: Arc<EnginePlan>,
    cfg: SimConfig,
    /// Reset-in-place metrics registry: batched runs reuse its histogram
    /// storage instead of reallocating one registry per run.
    scratch: Mutex<Metrics>,
}

/// A staged, `Arc`-reusable topology: built once by [`Simulation::prepare`],
/// run many times with per-run [`Overrides`]. Cloning is an `Arc` clone, so
/// one `Prepared` can fan out over the rayon pool. See the module docs.
#[derive(Clone)]
pub struct Prepared {
    inner: Arc<PreparedInner>,
}

impl Prepared {
    /// The staged topology.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.inner.graph
    }

    fn effective(&self, ovr: &Overrides) -> SimConfig {
        let mut cfg = self.inner.cfg.clone();
        if let Some(s) = ovr.seed {
            cfg.seed = s;
        }
        if let Some(r) = ovr.max_rounds {
            cfg.max_rounds = Some(r);
        }
        if let Some(f) = &ovr.faults {
            cfg.faults = f.clone();
        }
        if let Some(c) = &ovr.collector {
            cfg.collector = Some(Arc::clone(c));
        }
        cfg
    }

    /// Runs with the staged configuration verbatim (see
    /// [`Simulation::run`]).
    pub fn run<A, F>(&self, make: F) -> Result<RunResult, SimError>
    where
        A: NodeAlgorithm,
        A::Msg: Hash,
        F: Fn(usize) -> A + Sync,
    {
        self.run_with(&Overrides::new(), make)
    }

    /// Runs with this seed, everything else staged — the common
    /// many-seeds × one-topology batch shape.
    pub fn run_seed<A, F>(&self, seed: u64, make: F) -> Result<RunResult, SimError>
    where
        A: NodeAlgorithm,
        A::Msg: Hash,
        F: Fn(usize) -> A + Sync,
    {
        self.run_with(&Overrides::new().seed(seed), make)
    }

    /// Runs with per-run [`Overrides`] applied over the staged
    /// configuration.
    pub fn run_with<A, F>(&self, ovr: &Overrides, make: F) -> Result<RunResult, SimError>
    where
        A: NodeAlgorithm,
        A::Msg: Hash,
        F: Fn(usize) -> A + Sync,
    {
        self.run_with_nodes(ovr, make).map(|(result, _)| result)
    }

    /// Like [`Self::run_with`], but also hands back the final node states.
    pub fn run_with_nodes<A, F>(
        &self,
        ovr: &Overrides,
        make: F,
    ) -> Result<(RunResult, Vec<A>), SimError>
    where
        A: NodeAlgorithm,
        A::Msg: Hash,
        F: Fn(usize) -> A + Sync,
    {
        self.effective(ovr)
            .run_with_nodes_impl(
                &self.inner.graph,
                Some(&self.inner.plan),
                Some(&self.inner.scratch),
                make,
            )
            .map(|(outcome, nodes)| (RunResult::Congest(outcome), nodes))
    }

    /// Runs a [`CliqueAlgorithm`] against the staged input graph (see
    /// [`Simulation::run_clique`]).
    pub fn run_clique<A, F>(
        &self,
        ovr: &Overrides,
        make: F,
    ) -> Result<RunResult<A::Output>, SimError>
    where
        A: CliqueAlgorithm,
        F: Fn(usize) -> A + Sync,
    {
        self.effective(ovr)
            .run_clique_impl(&self.inner.graph, Some(&self.inner.scratch), make)
            .map(RunResult::Clique)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cliquemodel::CliqueContext;
    use crate::node::{Inbox, NodeContext, Outbox, Outgoing};
    use rand_chacha::ChaCha8Rng;

    /// Broadcast once, halt; reject iff a neighbor's id is larger.
    struct Beacon {
        done: bool,
        reject: bool,
    }

    impl NodeAlgorithm for Beacon {
        type Msg = u64;

        fn init(&mut self, ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<u64> {
            vec![Outgoing::Broadcast(ctx.id)]
        }

        fn on_round(
            &mut self,
            ctx: &NodeContext,
            inbox: &Inbox<u64>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<u64> {
            self.reject = inbox.iter().any(|(_, id)| **id > ctx.id);
            self.done = true;
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn decision(&self) -> Decision {
            if self.reject {
                Decision::Reject
            } else {
                Decision::Accept
            }
        }
    }

    fn beacon() -> Beacon {
        Beacon {
            done: false,
            reject: false,
        }
    }

    #[test]
    fn outcome_carries_metrics_and_report() {
        let g = graphlib::generators::cycle(5);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| beacon())
            .unwrap();
        assert_eq!(
            out.metrics.counter("bits.total"),
            Some(out.stats.total_bits)
        );
        assert_eq!(out.metrics.counter("rounds.total"), Some(1));
        let report = out.report("beacon");
        assert_eq!(report.rounds, 1);
        assert!(report.to_json().contains(r#""label": "beacon""#));
        assert!(report.summary_table().contains("total bits"));
    }

    #[test]
    fn reliable_route_folds_transport_tallies() {
        let g = graphlib::generators::path(4);
        let cfg = ReliableConfig::default();
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(cfg.required_bandwidth(64)))
            .max_rounds(cfg.physical_rounds(6))
            .reliable_config(cfg)
            .seed(3)
            .faults(FaultSpec::IndependentLoss(0.3))
            .run(|_| beacon())
            .unwrap();
        assert!(out.faults.retransmissions > 0, "loss should force resends");
        assert_eq!(
            out.metrics.counter("transport.retransmissions"),
            Some(out.faults.retransmissions)
        );
    }

    #[test]
    fn profiled_runs_export_section_histograms() {
        let g = graphlib::generators::cycle(4);
        let prof = Arc::new(Profiler::new());
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .profiler(prof.clone())
            .run(|_| beacon())
            .unwrap();
        // The default (fused) path times the whole round body under one
        // span; the three pre-fusion sections stay empty.
        for key in ["profile.fused_nanos", "profile.compute_nanos"] {
            assert!(out.metrics.hist(key).is_some(), "missing {key}");
        }
        for key in [
            "profile.account_nanos",
            "profile.stage_nanos",
            "profile.deliver_nanos",
        ] {
            assert!(out.metrics.hist(key).is_none(), "unexpected {key}");
        }
        assert!(out.metrics.hist("profile.arq_retransmit_nanos").is_none());
        assert!(!prof.folded_stacks("congest").is_empty());
        // The reference path keeps the original three spans (and records
        // no fused span).
        let legacy_prof = Arc::new(Profiler::new());
        let legacy = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .fused(false)
            .profiler(legacy_prof)
            .run(|_| beacon())
            .unwrap();
        for key in [
            "profile.account_nanos",
            "profile.stage_nanos",
            "profile.deliver_nanos",
            "profile.compute_nanos",
        ] {
            assert!(legacy.metrics.hist(key).is_some(), "missing {key}");
        }
        assert!(legacy.metrics.hist("profile.fused_nanos").is_none());
        // Unprofiled runs carry no profile.* entries.
        let plain = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| beacon())
            .unwrap();
        assert!(plain.metrics.hist("profile.compute_nanos").is_none());
    }

    #[test]
    fn profiled_reliable_run_times_the_arq_scan() {
        let g = graphlib::generators::path(3);
        let cfg = ReliableConfig::default();
        let prof = Arc::new(Profiler::new());
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(cfg.required_bandwidth(64)))
            .max_rounds(cfg.physical_rounds(4))
            .reliable_config(cfg)
            .profiler(prof)
            .run(|_| beacon())
            .unwrap();
        let h = out
            .metrics
            .hist("profile.arq_retransmit_nanos")
            .expect("ARQ scan must be timed under the reliable route");
        assert!(h.count() > 0);
    }

    #[test]
    fn timed_runs_collect_compute_histogram() {
        let g = graphlib::generators::cycle(4);
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .timed(true)
            .run(|_| beacon())
            .unwrap();
        let h = out.metrics.hist("compute.node_nanos").expect("timed hist");
        // 4 init spans + 4 round-1 spans.
        assert_eq!(h.count(), 8);
        // Untimed runs must not carry the non-deterministic histogram.
        let plain = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| beacon())
            .unwrap();
        assert!(plain.metrics.hist("compute.node_nanos").is_none());
    }

    /// Every node reports its input-degree to node 0.
    struct DegreeReport {
        acc: u64,
        done: bool,
    }

    impl CliqueAlgorithm for DegreeReport {
        type Msg = u32;
        type Output = u64;

        fn init(&mut self, ctx: &CliqueContext, _rng: &mut ChaCha8Rng) -> Vec<(u32, u32)> {
            if ctx.index == 0 {
                self.acc = ctx.input_neighbors.len() as u64;
                Vec::new()
            } else {
                vec![(0, ctx.input_neighbors.len() as u32)]
            }
        }

        fn on_round(
            &mut self,
            ctx: &CliqueContext,
            inbox: &[(u32, u32)],
            _rng: &mut ChaCha8Rng,
        ) -> Vec<(u32, u32)> {
            if ctx.index == 0 {
                self.acc += inbox.iter().map(|&(_, d)| d as u64).sum::<u64>();
            }
            self.done = true;
            Vec::new()
        }

        fn halted(&self) -> bool {
            self.done
        }

        fn output(&self) -> u64 {
            self.acc
        }
    }

    #[test]
    fn clique_route_returns_unified_outcome() {
        let g = graphlib::generators::cycle(6);
        let run = Simulation::on(&g)
            .bandwidth_bits(32)
            .run_clique(|_| DegreeReport {
                acc: 0,
                done: false,
            })
            .unwrap()
            .into_clique();
        assert_eq!(run.outputs[0], 2 * g.m() as u64);
        assert_eq!(run.stats.total_bits, 5 * 32);
        // The unified outcome mirrors the clique stats.
        assert_eq!(run.outcome.stats.total_bits, 5 * 32);
        assert!(run.outcome.decisions.is_empty());
        assert_eq!(run.outcome.faults.delivered, 5);
        assert_eq!(run.outcome.metrics.counter("bits.total"), Some(5 * 32));
        assert!(run
            .outcome
            .report("clique")
            .to_json()
            .contains("bits.total"));
    }

    #[test]
    fn unsupported_clique_configs_are_rejected() {
        let g = graphlib::generators::cycle(4);
        let mk = || DegreeReport {
            acc: 0,
            done: false,
        };
        let err = Simulation::on(&g)
            .faults(FaultSpec::IndependentLoss(0.5))
            .run_clique(|_| mk())
            .unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)), "{err}");
        let err = Simulation::on(&g)
            .reliable(true)
            .run_clique(|_| mk())
            .unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)));
        let err = Simulation::on(&g)
            .with_ids(vec![9, 8, 7, 6])
            .run_clique(|_| mk())
            .unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)));
        let err = Simulation::on(&g)
            .bandwidth(Bandwidth::Unbounded)
            .run_clique(|_| mk())
            .unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)));
    }

    #[test]
    fn reliable_under_broadcast_only_is_unsupported() {
        let g = graphlib::generators::path(3);
        let err = Simulation::on(&g)
            .broadcast_only(true)
            .reliable(true)
            .run(|_| beacon())
            .unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)));
    }

    fn gnp(n: usize, p: f64, seed: u64) -> graphlib::Graph {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        graphlib::generators::gnp(n, p, &mut rng)
    }

    #[test]
    fn prepared_runs_match_one_shot_runs() {
        let g = gnp(24, 0.2, 11);
        let prepared = Simulation::on(&g).bandwidth(Bandwidth::Bits(64)).prepare();
        for seed in [0u64, 1, 42] {
            let staged = prepared.run_seed(seed, |_| beacon()).unwrap();
            let fresh = Simulation::on(&g)
                .bandwidth(Bandwidth::Bits(64))
                .seed(seed)
                .run(|_| beacon())
                .unwrap();
            assert_eq!(staged.decisions, fresh.decisions, "seed {seed}");
            assert_eq!(staged.metrics, fresh.metrics, "seed {seed}");
            assert_eq!(
                staged.report("x").to_json(),
                fresh.report("x").to_json(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn prepared_overrides_match_reconfigured_one_shots() {
        let g = gnp(16, 0.3, 7);
        let prepared = Simulation::on(&g).bandwidth(Bandwidth::Bits(64)).prepare();
        let ovr = Overrides::new()
            .seed(9)
            .max_rounds(3)
            .faults(FaultSpec::IndependentLoss(0.4));
        let staged = prepared.run_with(&ovr, |_| beacon()).unwrap();
        let fresh = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .seed(9)
            .max_rounds(3)
            .faults(FaultSpec::IndependentLoss(0.4))
            .run(|_| beacon())
            .unwrap();
        assert_eq!(staged.decisions, fresh.decisions);
        assert_eq!(staged.faults, fresh.faults);
        assert_eq!(staged.metrics, fresh.metrics);
    }

    #[test]
    fn prepared_shares_topology_and_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Clone>(_: &T) {}
        let g = graphlib::generators::cycle(6);
        let prepared = Simulation::on(&g).bandwidth(Bandwidth::Bits(16)).prepare();
        assert_send_sync(&prepared);
        let clone = prepared.clone();
        assert!(Arc::ptr_eq(prepared.graph(), clone.graph()));
    }

    #[test]
    fn on_shared_reuses_the_graph_handle() {
        let g = Arc::new(graphlib::generators::cycle(6));
        let prepared = Simulation::on_shared(Arc::clone(&g))
            .bandwidth(Bandwidth::Bits(64))
            .prepare();
        assert!(Arc::ptr_eq(prepared.graph(), &g));
        let out = prepared.run(|_| beacon()).unwrap();
        assert!(out.completed);
    }

    #[test]
    fn prepared_clique_runs_match_one_shots() {
        let g = graphlib::generators::cycle(6);
        let mk = || DegreeReport {
            acc: 0,
            done: false,
        };
        let prepared = Simulation::on(&g).bandwidth_bits(32).prepare();
        let staged = prepared
            .run_clique(&Overrides::new(), |_| mk())
            .unwrap()
            .into_clique();
        let fresh = Simulation::on(&g)
            .bandwidth_bits(32)
            .run_clique(|_| mk())
            .unwrap()
            .into_clique();
        assert_eq!(staged.outputs, fresh.outputs);
        assert_eq!(staged.outcome.metrics, fresh.outcome.metrics);
    }

    #[test]
    fn run_result_unifies_backends() {
        let g = graphlib::generators::cycle(5);
        let congest = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(64))
            .run(|_| beacon())
            .unwrap();
        assert!(congest.as_clique().is_none());
        let clique = Simulation::on(&g)
            .bandwidth_bits(32)
            .run_clique(|_| DegreeReport {
                acc: 0,
                done: false,
            })
            .unwrap();
        assert!(clique.as_clique().is_some());
        // One report path regardless of backend.
        for json in [congest.report("x").to_json(), clique.report("x").to_json()] {
            assert!(json.contains(r#""label": "x""#));
        }
        // Deref exposes the unified outcome on both variants.
        assert!(congest.completed && clique.completed);
        assert_eq!(clique.decisions.len(), 0);
    }
}
