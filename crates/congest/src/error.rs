//! The unified simulator error type.
//!
//! [`Engine`](crate::Engine) and [`CliqueEngine`](crate::cliquemodel::CliqueEngine)
//! historically surfaced separate error enums, which forced every driver
//! that can route to either backend to pick one and lose the other.
//! [`SimError`] is the shared error path: both backend errors convert in
//! via `From` (so `?` just works), and convert back out via `TryFrom` for
//! callers that know which backend ran.

use crate::cliquemodel::CliqueError;
use crate::engine::CongestError;
use std::fmt;

/// Any error a simulation can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An error from the CONGEST engine.
    Congest(CongestError),
    /// An error from the congested-clique engine.
    Clique(CliqueError),
    /// The builder was configured with options the selected backend does
    /// not support (e.g. fault injection on the clique engine).
    Unsupported(String),
    /// A configuration value is invalid in itself (e.g. a zero-width ARQ
    /// window), caught at validation instead of hanging or panicking
    /// mid-run.
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Congest(e) => write!(f, "{e}"),
            SimError::Clique(e) => write!(f, "{e}"),
            SimError::Unsupported(what) => write!(f, "unsupported configuration: {what}"),
            SimError::Config(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Congest(e) => Some(e),
            SimError::Clique(e) => Some(e),
            SimError::Unsupported(_) | SimError::Config(_) => None,
        }
    }
}

impl From<CongestError> for SimError {
    fn from(e: CongestError) -> Self {
        SimError::Congest(e)
    }
}

impl From<CliqueError> for SimError {
    fn from(e: CliqueError) -> Self {
        SimError::Clique(e)
    }
}

impl TryFrom<SimError> for CongestError {
    type Error = SimError;

    fn try_from(e: SimError) -> Result<Self, SimError> {
        match e {
            SimError::Congest(c) => Ok(c),
            other => Err(other),
        }
    }
}

impl TryFrom<SimError> for CliqueError {
    type Error = SimError;

    fn try_from(e: SimError) -> Result<Self, SimError> {
        match e {
            SimError::Clique(c) => Ok(c),
            other => Err(other),
        }
    }
}

impl SimError {
    /// The CONGEST error inside, if that is what this is.
    pub fn as_congest(&self) -> Option<&CongestError> {
        match self {
            SimError::Congest(e) => Some(e),
            _ => None,
        }
    }

    /// The clique error inside, if that is what this is.
    pub fn as_clique(&self) -> Option<&CliqueError> {
        match self {
            SimError::Clique(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let c = CongestError::InvalidPort {
            node: 1,
            port: 9,
            degree: 2,
        };
        let e: SimError = c.clone().into();
        assert_eq!(e.as_congest(), Some(&c));
        assert_eq!(CongestError::try_from(e.clone()), Ok(c));
        assert!(CliqueError::try_from(e).is_err());

        let q = CliqueError::InvalidDestination { from: 0, to: 7 };
        let e: SimError = q.clone().into();
        assert_eq!(e.as_clique(), Some(&q));
        assert_eq!(CliqueError::try_from(e).unwrap(), q);
    }

    #[test]
    fn display_delegates() {
        let e = SimError::from(CongestError::UnicastForbidden { node: 3, round: 2 });
        assert!(e.to_string().contains("node 3"));
        let u = SimError::Unsupported("faults on clique".into());
        assert!(u.to_string().contains("unsupported"));
        let c = SimError::Config("window must be at least 1".into());
        assert!(c.to_string().contains("invalid configuration"));
    }
}
