//! The node-algorithm interface of the simulator.
//!
//! A distributed algorithm is a per-node state machine. Each node sees only
//! its own identifier, its degree, the identifiers of its neighbors (indexed
//! by *port*), and the messages arriving on its ports.

use crate::message::{BitSize, Payload};
use rand_chacha::ChaCha8Rng;

/// What a node knows about itself and its surroundings.
///
/// Ports number a node's incident edges `0..degree`; port `p` of node `v`
/// leads to `v`'s `p`-th neighbor in the topology's (sorted) adjacency list.
#[derive(Debug, Clone)]
pub struct NodeContext {
    /// Index of this node in the topology (simulation-internal; algorithms
    /// that follow the paper's §4/§5 setting should not base decisions on
    /// it, only on `id`).
    pub index: usize,
    /// The identifier assigned to this node.
    pub id: u64,
    /// Identifiers of the neighbors, `neighbor_ids[p]` = id across port `p`.
    pub neighbor_ids: Vec<u64>,
    /// Number of nodes in the network (`n` is commonly known in CONGEST).
    pub n: usize,
    /// Current round, starting at 1 for the first communication round
    /// (0 during `init`).
    pub round: usize,
}

impl NodeContext {
    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbor_ids.len()
    }
}

/// A message handed to the engine for delivery next round.
///
/// Ports are `u32` — the engine stores one staging slot per directed edge in
/// a `u32`-indexed arena, so a port (bounded by a node's degree, itself
/// bounded by the `u32` CSR of [`graphlib::Graph`]) always fits.
#[derive(Debug, Clone)]
pub enum Outgoing<M> {
    /// Send to a single port.
    Unicast(u32, M),
    /// Send the same message on every port. In CONGEST this still costs the
    /// message size on *each* edge.
    Broadcast(M),
}

/// The messages a node emits in one round.
pub type Outbox<M> = Vec<Outgoing<M>>;

/// The messages a node receives in one round: `(port, payload)` pairs in
/// deterministic port-merge order. This is a *slice* alias — the engine hands
/// each node a window into its shard's arena-slab inbox rather than a
/// per-node `Vec`, so a round allocates nothing per receiver. Broadcast
/// payloads are shared between their receivers rather than cloned per edge —
/// see [`Payload`] for how algorithms read them.
pub type Inbox<M> = [(u32, Payload<M>)];

/// Accept/reject output of a node (Definition 1 semantics: the network
/// rejects — "H found" — iff some node rejects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The node believes the graph is H-free.
    Accept,
    /// The node has detected (evidence of) a copy of H.
    Reject,
}

/// A per-node distributed algorithm.
///
/// The engine drives each node through `init` (round 0, no messages yet)
/// and then `on_round` once per communication round until every node has
/// halted or the round limit is reached.
///
/// Under fault injection (see [`crate::faults`]) the engine may silently
/// drop or corrupt individual deliveries, and a crash-stopped node is
/// frozen: it stops being stepped, its pending outbox is discarded, and
/// its last `decision()` is *not* treated as protocol output (see
/// `RunOutcome::surviving_node_rejects`). Implementations should therefore
/// never rely on a message having arrived to make a *reject* decision —
/// rejection must be backed by positive evidence that survives lost
/// messages, or wrapped in the [`crate::Reliable`] transport.
pub trait NodeAlgorithm: Send {
    /// Message type exchanged by this algorithm.
    type Msg: Clone + Send + Sync + BitSize;

    /// Called once before communication starts; returns the messages to be
    /// delivered in round 1.
    fn init(&mut self, ctx: &NodeContext, rng: &mut ChaCha8Rng) -> Outbox<Self::Msg>;

    /// Called once per round with the messages received in this round;
    /// returns messages to be delivered next round.
    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &Inbox<Self::Msg>,
        rng: &mut ChaCha8Rng,
    ) -> Outbox<Self::Msg>;

    /// Whether this node has halted (it will not be stepped again, and its
    /// pending outbox still gets delivered). The engine stops when all nodes
    /// have halted.
    fn halted(&self) -> bool;

    /// Whether this node is *causally quiescent*: given empty inboxes for
    /// every remaining round, it will never send another message and never
    /// change its [`Self::decision`] — i.e. the rest of the repetition is
    /// pure clock-ticking as far as this node is concerned.
    ///
    /// A clock-driven node (one that emits or decides at a scheduled future
    /// round even without input) must return `false` until that schedule is
    /// exhausted. The default is [`Self::halted`], which is always a sound
    /// answer.
    ///
    /// Only consulted when the engine runs with early termination enabled
    /// (see `Simulation::early_termination`), where an all-quiescent network
    /// with nothing in flight short-circuits the remaining rounds. The
    /// executed-round count (and with it per-round stat/fault series) then
    /// reflects the truncated run; decisions are unchanged.
    fn quiescent(&self) -> bool {
        self.halted()
    }

    /// The node's current output.
    fn decision(&self) -> Decision;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_degree() {
        let ctx = NodeContext {
            index: 0,
            id: 7,
            neighbor_ids: vec![1, 2, 3],
            n: 4,
            round: 0,
        };
        assert_eq!(ctx.degree(), 3);
    }
}
