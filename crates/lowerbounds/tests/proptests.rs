//! Property-based tests of the lower-bound constructions.

use lowerbounds::fooling::{find_tripartite_block, run_on_cycle, IdHashAlgo};
use lowerbounds::{FamilyLayout, HkGraph};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lemma_3_1_characterization_is_set_intersection(
        x in proptest::collection::vec((0usize..6, 0usize..6), 0..8),
        y in proptest::collection::vec((0usize..6, 0usize..6), 0..8)
    ) {
        let expected = x.iter().any(|p| y.contains(p));
        prop_assert_eq!(FamilyLayout::contains_hk(&x, &y), expected);
    }

    #[test]
    fn family_graph_size_is_linear(k in 1usize..4, nc in 1usize..40) {
        let lay = FamilyLayout::new(k, nc);
        // 40 clique vertices + 4n endpoints + 6m triangle vertices.
        prop_assert_eq!(lay.n_vertices(), 40 + 4 * nc + 6 * lay.m_triangles);
        // m = k * ceil(nc^{1/k}) stays sublinear in nc for k >= 2.
        if k >= 2 {
            prop_assert!(lay.m_triangles <= k * (nc + 1));
        }
    }

    #[test]
    fn family_input_edges_present_iff_in_input(
        x in proptest::collection::vec((0usize..5, 0usize..5), 0..6),
        y in proptest::collection::vec((0usize..5, 0usize..5), 0..6)
    ) {
        use lowerbounds::{Role, Side};
        let lay = FamilyLayout::new(2, 5);
        let g = lay.build(&x, &y);
        for i in 0..5 {
            for j in 0..5 {
                let a_edge = g.has_edge(
                    lay.endpoint(Side::Top, Role::A, i),
                    lay.endpoint(Side::Bottom, Role::A, j),
                );
                prop_assert_eq!(a_edge, x.contains(&(i, j)));
                let b_edge = g.has_edge(
                    lay.endpoint(Side::Top, Role::B, i),
                    lay.endpoint(Side::Bottom, Role::B, j),
                );
                prop_assert_eq!(b_edge, y.contains(&(i, j)));
            }
        }
    }

    #[test]
    fn hk_size_formula(k in 1usize..8) {
        let h = HkGraph::build(k);
        prop_assert_eq!(h.graph.n(), HkGraph::expected_size(k));
        // Every vertex within distance 3 of every other (Property 1 style).
        prop_assert_eq!(graphlib::diameter::diameter(&h.graph), Some(3));
    }

    #[test]
    fn block_finder_sound(edges in proptest::collection::vec((0usize..6, 0usize..6, 0usize..6), 0..60)) {
        // Whatever the finder returns must be a genuine K^(3)(2).
        if let Some(block) = find_tripartite_block(&edges, 6) {
            let set: std::collections::HashSet<_> = edges.iter().collect();
            for &a in &block[0] {
                for &b in &block[1] {
                    for &c in &block[2] {
                        prop_assert!(set.contains(&(a, b, c)));
                    }
                }
            }
            prop_assert!(block[0][0] < block[0][1]);
            prop_assert!(block[1][0] < block[1][1]);
            prop_assert!(block[2][0] < block[2][1]);
        }
    }

    #[test]
    fn block_finder_complete_on_planted_blocks(
        a0 in 0usize..5, b0 in 0usize..5, c0 in 0usize..5,
        noise in proptest::collection::vec((0usize..6, 0usize..6, 0usize..6), 0..20)
    ) {
        // Plant a block at {a0, a0+1} x {b0, b0+1} x {c0, c0+1}.
        let mut edges = noise;
        for a in [a0, a0 + 1] {
            for b in [b0, b0 + 1] {
                for c in [c0, c0 + 1] {
                    edges.push((a, b, c));
                }
            }
        }
        prop_assert!(find_tripartite_block(&edges, 6).is_some());
    }

    #[test]
    fn transcripts_have_declared_length(u0 in 0u64..20, u1 in 0u64..20, u2 in 0u64..20, bits in 1usize..5) {
        let algo = IdHashAlgo { bits };
        let ids = [3 * u0, 3 * u1 + 1, 3 * u2 + 2];
        let run = run_on_cycle(&algo, &ids);
        // One round, two messages of `bits` bits per node.
        for t in &run.node_transcripts {
            prop_assert_eq!(t.len(), 2 * bits);
        }
        // Triangles always reject under the A' wrapper (Claim 4.3).
        prop_assert!(run.rejects.iter().all(|&r| r));
    }

    #[test]
    fn template_truth_is_conjunction(n in 2usize..10, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let s = lowerbounds::sample(n, &mut rng);
        prop_assert_eq!(s.has_triangle(), s.x[0] && s.x[1] && s.x[2]);
        // The realized graph contains a triangle iff the flag says so
        // (specials are the only possible triangle).
        prop_assert_eq!(
            graphlib::cliques::count_triangles(&s.graph) > 0,
            s.has_triangle()
        );
    }

    #[test]
    fn clique_count_bound_holds_on_random_graphs(n in 4usize..20, m in 0usize..60, s in 3usize..5) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64((n * 100 + m) as u64);
        let max = n * (n - 1) / 2;
        let g = graphlib::generators::gnm(n, m.min(max), &mut rng);
        let (count, bound, _) = lowerbounds::clique_count_ratio(&g, s);
        prop_assert!(count as f64 <= bound.max(1.0) + 1e-9, "Lemma 1.3");
    }
}
